//! The faulty-evaluation kernel is a pure speed knob: the generic
//! per-gate interpreter, the specialized SoA tape and the differential
//! dirty-frontier kernel must grade every fault to the identical
//! verdict. This battery pins all three to bit-identical
//! order-independent digests across the whole registry, every trace
//! policy, collapse on/off and 1/2/4/8 worker threads — and repeats the
//! claim on generated random circuits.

use proptest::prelude::*;
use seugrade::generators::{random_sequential, RandomCircuitConfig};
use seugrade::prelude::*;

/// Cycle budget by circuit size, mirroring the other cross-engine
/// suites: the scale fixtures dominate debug-build runtime.
fn cycle_budget(num_ffs: usize) -> usize {
    match num_ffs {
        0..=100 => 18,
        101..=1000 => 8,
        _ => 2,
    }
}

/// Every registry circuit, graded under every concrete kernel, every
/// trace policy, both collapse modes and 1/2/4/8 threads, lands on the
/// serial reference digest bit for bit.
#[test]
fn kernels_agree_on_every_registry_circuit() {
    for name in registry::NAMES {
        let circuit = registry::build(name).expect("registered");
        let cycles = cycle_budget(circuit.num_ffs());
        let tb = Testbench::random(circuit.num_inputs(), cycles, 77);
        // Exhaustive everywhere except the 10k-flip-flop scale fixture,
        // where a deterministic sample keeps the kernel × policy ×
        // collapse × thread matrix debug-build sized.
        let faults = if circuit.num_ffs() > 4000 {
            FaultList::sampled(circuit.num_ffs(), cycles, 256, 77)
        } else {
            FaultList::exhaustive(circuit.num_ffs(), cycles)
        };
        let dense = Grader::new(&circuit, &tb);
        let reference =
            StreamAccumulator::digest_of(faults.as_slice(), &dense.run_serial(faults.as_slice()));
        for kernel in Kernel::CONCRETE {
            for policy in [TracePolicy::Dense, TracePolicy::Checkpoint(3), TracePolicy::Checkpoint(64)] {
                for collapse in [Collapse::Early, Collapse::Horizon] {
                    for threads in [1usize, 2, 4, 8] {
                        let plan = CampaignPlan::builder(&circuit, &tb)
                            .faults(faults.clone())
                            .trace_policy(policy)
                            .collapse(collapse)
                            .kernel(kernel)
                            .policy(ShardPolicy::with_threads(threads))
                            .build();
                        let run = Engine::new(&plan).run_streamed(&plan);
                        assert_eq!(
                            run.digest(),
                            reference,
                            "{name}: kernel {} {} collapse {} @ {threads} threads",
                            kernel.label(),
                            policy.label(),
                            collapse.label(),
                        );
                    }
                }
            }
        }
    }
}

/// `Kernel::Auto` grades identically to every concrete kernel — the
/// resolver may pick any of them without changing a verdict.
#[test]
fn auto_kernel_matches_every_concrete_kernel() {
    let circuit = registry::build("b09s").expect("registered");
    let cycles = 24;
    let tb = Testbench::random(circuit.num_inputs(), cycles, 3);
    let auto_plan = CampaignPlan::builder(&circuit, &tb)
        .trace_policy(TracePolicy::Checkpoint(8))
        .threads(2)
        .build();
    assert_eq!(auto_plan.kernel(), Kernel::Auto, "builder default");
    let auto_digest = Engine::new(&auto_plan).run_streamed(&auto_plan).digest();
    for kernel in Kernel::CONCRETE {
        let plan = CampaignPlan::builder(&circuit, &tb)
            .trace_policy(TracePolicy::Checkpoint(8))
            .kernel(kernel)
            .threads(2)
            .build();
        let digest = Engine::new(&plan).run_streamed(&plan).digest();
        assert_eq!(digest, auto_digest, "auto vs {}", kernel.label());
    }
}

/// The kernel is excluded from resume fingerprints: a campaign
/// checkpointed under one kernel is resumable under another, because
/// the knob cannot change a verdict.
#[test]
fn kernel_does_not_perturb_the_resume_fingerprint() {
    let circuit = registry::build("b06s").expect("registered");
    let tb = Testbench::random(circuit.num_inputs(), 16, 9);
    let fingerprints: Vec<Fingerprint> = Kernel::CONCRETE
        .iter()
        .map(|&kernel| {
            let plan = CampaignPlan::builder(&circuit, &tb).kernel(kernel).build();
            Fingerprint::of(&plan, 4, 96)
        })
        .collect();
    for fp in &fingerprints[1..] {
        assert_eq!(*fp, fingerprints[0], "kernel must not fingerprint");
    }
}

fn arb_config() -> impl Strategy<Value = RandomCircuitConfig> {
    (2usize..6, 2usize..14, 10usize..80, 1usize..5, 0u32..9).prop_map(
        |(num_inputs, num_ffs, num_gates, num_outputs, observability_num)| RandomCircuitConfig {
            num_inputs,
            num_ffs,
            num_gates,
            num_outputs,
            observability_num,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generated circuits — arbitrary gate mixes, fanout shapes and
    /// observability — grade to the identical digest under all three
    /// concrete kernels, checkpointed and multi-threaded.
    #[test]
    fn kernels_agree_on_generated_circuits(
        config in arb_config(),
        seed in 0u64..1000,
        k in 1usize..24,
    ) {
        let circuit = random_sequential(&config, seed);
        let cycles = 16usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, seed ^ 0x4B52_4E4C);
        let faults = FaultList::exhaustive(circuit.num_ffs(), cycles);
        let serial = Grader::new(&circuit, &tb).run_serial(faults.as_slice());
        let reference = StreamAccumulator::digest_of(faults.as_slice(), &serial);
        for kernel in Kernel::CONCRETE {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .trace_policy(TracePolicy::Checkpoint(k))
                .kernel(kernel)
                .threads(2)
                .build();
            let run = Engine::new(&plan).run_streamed(&plan);
            prop_assert_eq!(run.digest(), reference, "kernel {}", kernel.label());
        }
    }
}
