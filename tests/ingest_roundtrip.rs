//! Ingestion round-trip and equivalence suite.
//!
//! Proves the five on-disk formats (`docs/FORMATS.md`) agree with each
//! other and with the engine:
//!
//! - every bundled `.bench` fixture survives `.bench` → [`Netlist`] →
//!   SNL `emit` → `parse` with identical structure and behaviour;
//! - the hand-translated BLIF and Verilog twins of the fixtures are
//!   sim-equivalent to the `.bench` originals, and grade to
//!   bit-identical fault verdicts;
//! - every registry circuit survives emit → import through every
//!   emitted format (`.bench`, `.blif`, `.snl`, `.v`) with identical
//!   verdict digests;
//! - lying file extensions resolve to a clear diagnostic, and
//!   extensionless content is classified by the sniffer;
//! - malformed inputs fail with located errors in every frontend;
//! - `repro -- grade`'s campaign path (exhaustive fault space on an
//!   imported netlist) is thread-count invariant.

use seugrade::prelude::*;
use seugrade_netlist::text;

/// All bundled `.bench` fixtures, by name and embedded source.
const BENCH_FIXTURES: [(&str, &str); 3] = [
    ("s27", fixtures::S27_BENCH),
    ("s208a", fixtures::S208A_BENCH),
    ("s344a", fixtures::S344A_BENCH),
];

#[test]
fn bench_to_snl_roundtrip_preserves_structure_and_function() {
    for (name, src) in BENCH_FIXTURES {
        let imported = import::import_str(src, SourceFormat::Bench)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let n = imported.netlist;
        let snl = text::emit(&n);
        let n2 = text::parse(&snl).unwrap_or_else(|e| panic!("{name} re-parse: {e}"));

        assert_eq!(n2.num_cells(), n.num_cells(), "{name}");
        assert_eq!(n2.num_inputs(), n.num_inputs(), "{name}");
        assert_eq!(n2.num_outputs(), n.num_outputs(), "{name}");
        assert_eq!(n2.num_ffs(), n.num_ffs(), "{name}");
        assert_eq!(n2.ff_init_values(), n.ff_init_values(), "{name}");
        assert_eq!(n2.input_names(), n.input_names(), "{name}");
        for ((_, c1), (_, c2)) in n.iter_cells().zip(n2.iter_cells()) {
            assert_eq!(c1.kind(), c2.kind(), "{name}");
            assert_eq!(c1.pins(), c2.pins(), "{name}");
        }
        // Structure agreement is necessary; behaviour agreement closes
        // the loop.
        equiv_check(&n, &n2, 64, 8).unwrap_or_else(|cex| panic!("{name}: {cex}"));
    }
}

#[test]
fn blif_twin_is_equivalent_to_bench_original() {
    let bench = fixtures::s27();
    let blif = fixtures::s27_blif();
    assert_eq!(bench.num_inputs(), blif.num_inputs());
    assert_eq!(bench.num_outputs(), blif.num_outputs());
    assert_eq!(bench.num_ffs(), blif.num_ffs());
    assert_eq!(bench.ff_init_values(), blif.ff_init_values());
    assert_eq!(bench.input_names(), blif.input_names());
    equiv_check(&bench, &blif, 128, 32).expect("s27.bench and s27.blif must agree");
}

#[test]
fn blif_twin_grades_to_identical_verdicts() {
    // Stronger than output equivalence: both fixtures declare their
    // flip-flops in the same order, so the exhaustive `FfIndex × cycle`
    // fault space maps one-to-one and every single verdict must match.
    let bench = fixtures::s27();
    let blif = fixtures::s27_blif();
    let tb = Testbench::random(bench.num_inputs(), 80, 7);
    let run_b = CampaignPlan::builder(&bench, &tb).build().execute();
    let run_l = CampaignPlan::builder(&blif, &tb).build().execute();
    assert_eq!(run_b.outcomes(), run_l.outcomes());
    assert_eq!(run_b.summary(), run_l.summary());
    assert!(run_b.summary().total() > 0);
}

#[test]
fn imported_campaigns_are_thread_count_invariant() {
    // The acceptance check behind `repro -- grade`: per-class counts
    // (in fact, per-fault verdicts) identical at 1 and 4 threads.
    let imported =
        import::import_str(fixtures::S208A_BENCH, SourceFormat::Bench).expect("fixture");
    let circuit = imported.netlist;
    let tb = Testbench::random(circuit.num_inputs(), 48, 42);
    let baseline = CampaignPlan::builder(&circuit, &tb)
        .policy(ShardPolicy::serial())
        .build()
        .execute();
    for threads in [1, 4] {
        let run = CampaignPlan::builder(&circuit, &tb)
            .policy(ShardPolicy::with_threads(threads))
            .build()
            .execute();
        assert_eq!(run.outcomes(), baseline.outcomes(), "{threads} threads");
        assert_eq!(run.summary(), baseline.summary(), "{threads} threads");
    }
}

#[test]
fn every_emitter_round_trips_every_registry_circuit() {
    // The emitter-matrix acceptance criterion: `import → emit → import`
    // must be sim-equivalent for every registered circuit — including
    // the RTL-elaborated Viper, the imported HDL fixtures and the
    // s5378-class generator mesh — through every format the workspace
    // can write. (`tests/format_fuzz.rs` additionally proves the same
    // matrix preserves per-fault verdict digests.)
    for name in registry::NAMES {
        let circuit = registry::build(name).expect("registered");
        let emitted = [
            (SourceFormat::Bench, seugrade_netlist::bench::emit(&circuit)),
            (SourceFormat::Blif, seugrade_netlist::blif::emit(&circuit)),
            (SourceFormat::Snl, text::emit(&circuit)),
            (SourceFormat::Verilog, seugrade_netlist::vlog::emit(&circuit)),
        ];
        for (format, src) in emitted {
            let label = format.label();
            let back = import::import_str(&src, format)
                .unwrap_or_else(|e| panic!("{name} re-import from {label}: {e}"))
                .netlist;
            assert_eq!(back.num_inputs(), circuit.num_inputs(), "{name} {label}");
            assert_eq!(back.num_outputs(), circuit.num_outputs(), "{name} {label}");
            assert_eq!(back.num_ffs(), circuit.num_ffs(), "{name} {label}");
            assert_eq!(back.ff_init_values(), circuit.ff_init_values(), "{name} {label}");
            let cycles = if circuit.num_ffs() > 1000 { 8 } else { 48 };
            equiv_check(&circuit, &back, cycles, 4)
                .unwrap_or_else(|cex| panic!("{name} via {label}: {cex}"));
        }
    }
}

#[test]
fn verilog_twins_grade_to_identical_verdicts() {
    // Same contract as the BLIF twin, for the Verilog frontend: the
    // hand-translated `.v` twins declare their flip-flops in the same
    // order as the `.bench` originals, so the exhaustive
    // `FfIndex × cycle` fault space maps one-to-one.
    for (bench, vlog) in [
        (fixtures::s27(), fixtures::s27v()),
        (fixtures::s208a(), fixtures::s208av()),
        (fixtures::s344a(), fixtures::s344av()),
    ] {
        let name = vlog.name().to_owned();
        equiv_check(&bench, &vlog, 96, 8).unwrap_or_else(|cex| panic!("{name}: {cex}"));
        let tb = Testbench::random(bench.num_inputs(), 48, 11);
        let run_b = CampaignPlan::builder(&bench, &tb).build().execute();
        let run_v = CampaignPlan::builder(&vlog, &tb).build().execute();
        assert_eq!(run_b.outcomes(), run_v.outcomes(), "{name}");
        assert_eq!(run_b.summary(), run_v.summary(), "{name}");
        assert!(run_b.summary().total() > 0, "{name}");
    }
}

#[test]
fn vhdl_fixture_grades_deterministically() {
    // The b14-interface-class VHDL fixture has no twin; its contract is
    // that the imported circuit grades end-to-end with a thread-count
    // invariant verdict digest (the same determinism the serve suite
    // pins for the bench fixtures).
    let circuit = fixtures::b14c();
    let tb = Testbench::random(circuit.num_inputs(), 16, 42);
    let serial = CampaignPlan::builder(&circuit, &tb)
        .policy(ShardPolicy::serial())
        .build()
        .execute();
    assert_eq!(serial.summary().total(), 245 * 16, "exhaustive FfIndex × cycle space");
    let threaded = CampaignPlan::builder(&circuit, &tb)
        .policy(ShardPolicy::with_threads(4))
        .build()
        .execute();
    assert_eq!(serial.outcomes(), threaded.outcomes());
    assert_eq!(serial.summary(), threaded.summary());
}

#[test]
fn fixture_registry_entries_participate_in_the_workspace() {
    for name in ["s27", "s208a", "s344a", "s27v", "s208av", "s344av", "b14c"] {
        let n = registry::build(name).expect("fixtures are registered");
        assert_eq!(n.name(), name);
        assert!(n.num_ffs() > 0);
        assert!(registry::NAMES.contains(&name));
    }
}

#[test]
fn import_path_detects_formats_from_extension() {
    let root = env!("CARGO_MANIFEST_DIR");
    for (file, format, cells, name) in [
        ("fixtures/s27.bench", SourceFormat::Bench, fixtures::s27().num_cells(), "s27"),
        ("fixtures/s27.blif", SourceFormat::Blif, fixtures::s27_blif().num_cells(), "s27"),
        ("fixtures/s27.v", SourceFormat::Verilog, fixtures::s27v().num_cells(), "s27"),
        ("fixtures/b14c.vhd", SourceFormat::Vhdl, fixtures::b14c().num_cells(), "b14c"),
    ] {
        let imported = import::import_path(format!("{root}/{file}"))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(imported.stats.format, format, "{file}");
        assert_eq!(imported.netlist.num_cells(), cells, "{file}");
        // No-name formats pick up the file stem; the HDL formats carry
        // their module/entity name — for the fixtures those coincide.
        assert_eq!(imported.netlist.name(), name, "{file}");
    }
}

#[test]
fn lying_extensions_fail_with_the_extensions_own_diagnostic() {
    // The extension is an explicit claim and it wins over content: a
    // `.bench` file holding Verilog goes to the bench frontend, whose
    // rejection names the file and a line — a clear diagnostic, never a
    // silent fallback to a different grammar.
    let dir = std::env::temp_dir().join(format!("seugrade-lying-ext-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (file, content) in [
        ("lying.bench", fixtures::S27_VLOG),
        ("lying.v", fixtures::S27_BENCH),
        ("lying.vhd", fixtures::S27_BLIF),
        ("lying.blif", fixtures::B14C_VHDL),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, content).expect("write fixture");
        let err = import::import_path(&path)
            .expect_err("the extension's frontend must reject foreign content");
        match err {
            ImportError::Netlist { ref path, ref source } => {
                assert!(path.contains(file), "{file}: diagnostic names the file: {err}");
                assert!(source.line().is_some(), "{file}: diagnostic carries a line: {err}");
            }
            other => panic!("{file}: expected a netlist rejection, got {other}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn extensionless_and_unknown_extension_content_is_sniffed() {
    // With no extension claim (or one the importer does not know), the
    // content sniffer classifies the source — each frontend's opening
    // idiom is distinctive enough to land in the right grammar.
    let dir = std::env::temp_dir().join(format!("seugrade-sniff-ext-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (file, content, format, name) in [
        ("noext_verilog", fixtures::S27_VLOG, SourceFormat::Verilog, "s27"),
        ("noext_vhdl", fixtures::B14C_VHDL, SourceFormat::Vhdl, "b14c"),
        ("netlist.txt", fixtures::S27_BENCH, SourceFormat::Bench, "netlist"),
        ("netlist.dump", fixtures::S27_BLIF, SourceFormat::Blif, "s27"),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, content).expect("write fixture");
        let imported =
            import::import_path(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(imported.stats.format, format, "{file}");
        assert_eq!(imported.netlist.name(), name, "{file}");
        assert!(imported.netlist.num_ffs() > 0, "{file}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_bench_inputs_fail_with_located_errors() {
    // Unknown gate function.
    let err = seugrade_netlist::bench::parse("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap_err();
    assert_eq!(err.line(), Some(3), "{err}");

    // Undefined net.
    let err = seugrade_netlist::bench::parse("INPUT(a)\nOUTPUT(y)\ny = AND(a, nope)\n").unwrap_err();
    assert!(matches!(err, NetlistError::UnknownNet { ref name, .. } if name == "nope"));
    assert_eq!(err.line(), Some(3));

    // Duplicate output declaration.
    let err = seugrade_netlist::bench::parse(
        "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n",
    )
    .unwrap_err();
    assert_eq!(err.line(), Some(3), "{err}");
    assert!(err.to_string().contains("declared twice"), "{err}");

    // Duplicate net definition.
    let err = seugrade_netlist::bench::parse(
        "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n",
    )
    .unwrap_err();
    assert_eq!(err.line(), Some(4), "{err}");
}

#[test]
fn malformed_blif_inputs_fail_with_located_errors() {
    // A cover mixing on-set and off-set rows (general SOP synthesis
    // handles every uniform cover, so polarity mixing is what remains
    // malformed).
    let err = seugrade_netlist::blif::parse(
        ".model m\n.inputs a b c\n.outputs y\n.names a b c y\n1-0 1\n-11 0\n.end\n",
    )
    .unwrap_err();
    assert_eq!(err.line(), Some(4), "{err}");
    assert!(err.to_string().contains("mixes"), "{err}");

    // Undefined net behind a latch.
    let err =
        seugrade_netlist::blif::parse(".model m\n.outputs q\n.latch ghost q 0\n.end\n").unwrap_err();
    assert!(matches!(err, NetlistError::UnknownNet { ref name, .. } if name == "ghost"));

    // Unsupported directive.
    let err = seugrade_netlist::blif::parse(".model m\n.subckt child x=y\n.end\n").unwrap_err();
    assert_eq!(err.line(), Some(2), "{err}");
}

#[test]
fn general_sop_covers_are_sim_equivalent_to_gate_twins() {
    // The BLIF SOP-synthesis satellite: arbitrary two-level covers must
    // behave exactly like hand-built gate equivalents.
    for (label, blif, bench) in [
        (
            "a·c + ¬a·b",
            ".model m\n.inputs a b c\n.outputs y\n.names a b c y\n1-1 1\n01- 1\n.end\n",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nna = NOT(a)\nt0 = AND(a, c)\n\
             t1 = AND(na, b)\ny = OR(t0, t1)\n",
        ),
        (
            "majority(a,b,c)",
            ".model m\n.inputs a b c\n.outputs y\n.names a b c y\n11- 1\n1-1 1\n-11 1\n.end\n",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt0 = AND(a, b)\nt1 = AND(a, c)\n\
             t2 = AND(b, c)\ny = OR(t0, t1, t2)\n",
        ),
        (
            "off-set ¬(a·b + ¬a·¬b)",
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n00 0\n.end\n",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n",
        ),
        (
            "single-literal off-set",
            ".model m\n.inputs a\n.outputs y\n.names a y\n0 0\n.end\n",
            "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n",
        ),
    ] {
        let lhs = import::import_str(blif, SourceFormat::Blif)
            .unwrap_or_else(|e| panic!("{label}: {e}"))
            .netlist;
        let rhs = import::import_str(bench, SourceFormat::Bench)
            .unwrap_or_else(|e| panic!("{label}: {e}"))
            .netlist;
        equiv_check(&lhs, &rhs, 32, 8).unwrap_or_else(|cex| panic!("{label}: {cex}"));
    }
}

#[test]
fn snl_parse_errors_share_the_located_contract() {
    // The fixed satellite: SNL errors carry line numbers through the
    // same accessor the new frontends use.
    let err = text::parse("model m\ninput a\nbogus x\nend\n").unwrap_err();
    assert_eq!(err.line(), Some(3), "{err}");

    let err = text::parse("model m\ninput a\ngate and g a missing\noutput y g\nend\n").unwrap_err();
    assert_eq!(err.line(), Some(3), "{err}");

    // Duplicate output ports are now caught at the parse layer, with a
    // line, instead of surfacing as an unlocated builder error.
    let err =
        text::parse("model m\ninput a\noutput y a\noutput y a\nend\n").unwrap_err();
    assert_eq!(err.line(), Some(4), "{err}");

    // Whole-graph validation errors legitimately carry no line.
    let err = text::parse("model m\ninput a\ngate not g1 g2\ngate not g2 g1\noutput y g1\nend\n")
        .unwrap_err();
    assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    assert_eq!(err.line(), None);
}

#[test]
fn buffer_sweep_preserves_behaviour() {
    // BUF-heavy source: the default import sweeps the buffers; the
    // unswept netlist must stay sim-equivalent.
    let src = "\
INPUT(a)
OUTPUT(y)
b1 = BUF(a)
b2 = BUFF(b1)
q = DFF(b3)
b3 = BUF(nx)
nx = XOR(b2, q)
y = BUF(q)
";
    let swept = import::import_str(src, SourceFormat::Bench).expect("parses");
    let unswept = import::import_str_with(
        src,
        SourceFormat::Bench,
        ImportOptions { sweep_buffers: false },
    )
    .expect("parses");
    assert_eq!(swept.stats.swept_buffers, 4);
    assert_eq!(unswept.stats.swept_buffers, 0);
    assert_eq!(swept.netlist.num_gates() + 4, unswept.netlist.num_gates());
    equiv_check(&swept.netlist, &unswept.netlist, 64, 8).expect("sweep preserves function");
}
