//! Functional-preservation checks for every netlist transform in the
//! workspace: instrumented or hardened circuits must behave exactly like
//! the original when the added machinery is idle.

use seugrade::prelude::*;
use seugrade::instrument::{mask_scan, state_scan, time_mux};

fn golden(circuit: &Netlist, tb: &Testbench) -> GoldenTrace {
    CompiledSim::new(circuit).run_golden(tb)
}

/// Drives an instrumented circuit with control inputs low (or, for
/// time-mux, in golden free-run mode) and compares original outputs.
fn check_transparent(
    circuit: &Netlist,
    inst_netlist: &Netlist,
    tb: &Testbench,
    fixed_controls: &[(usize, bool)],
) {
    let reference = golden(circuit, tb);
    let sim = CompiledSim::new(inst_netlist);
    let mut st = sim.new_state();
    let mut inputs = vec![false; inst_netlist.num_inputs()];
    for t in 0..tb.num_cycles() {
        inputs[..tb.num_inputs()].copy_from_slice(tb.cycle(t));
        for &(idx, v) in fixed_controls {
            inputs[idx] = v;
        }
        sim.set_inputs(&mut st, &inputs);
        sim.eval(&mut st);
        let out = sim.outputs_lane(&st, 0);
        assert_eq!(
            &out[..circuit.num_outputs()],
            reference.output_at(t),
            "{} cycle {t}",
            inst_netlist.name()
        );
        sim.step(&mut st);
    }
}

#[test]
fn instrumented_circuits_are_transparent_when_idle() {
    for name in ["b01s", "b02s", "b03s", "b06s", "b09s", "b13s", "lfsr16", "counter8"] {
        let circuit = registry::build(name).expect("registered");
        let tb = Testbench::random(circuit.num_inputs(), 40, 3);

        let ms = mask_scan::instrument(&circuit);
        check_transparent(&circuit, ms.netlist(), &tb, &[]);

        let ss = state_scan::instrument(&circuit);
        check_transparent(&circuit, ss.netlist(), &tb, &[]);

        let tm = time_mux::instrument(&circuit);
        let p = tm.ports();
        // Golden free-run: golden enabled and selected.
        let controls = [
            (p.ena_golden.unwrap(), true),
            (p.sel_faulty.unwrap(), false),
        ];
        check_transparent(&circuit, tm.netlist(), &tb, &controls);
    }
}

#[test]
fn viper_instrumentation_is_transparent() {
    let circuit = viper::viper();
    let tb = stimuli::viper_program(24, 3);
    let ms = mask_scan::instrument(&circuit);
    check_transparent(&circuit, ms.netlist(), &tb, &[]);
    let tm = time_mux::instrument(&circuit);
    let p = tm.ports();
    let controls = [
        (p.ena_golden.unwrap(), true),
        (p.sel_faulty.unwrap(), false),
    ];
    check_transparent(&circuit, tm.netlist(), &tb, &controls);
}

#[test]
fn hardened_circuits_are_transparent() {
    for name in ["b01s", "b06s", "b13s", "counter8"] {
        let circuit = registry::build(name).expect("registered");
        let tb = Testbench::random(circuit.num_inputs(), 40, 5);
        let reference = golden(&circuit, &tb);

        let t = tmr(&circuit);
        let tt = golden(&t, &tb);
        let d = dwc(&circuit);
        let dd = golden(&d, &tb);
        for cycle in 0..tb.num_cycles() {
            assert_eq!(tt.output_at(cycle), reference.output_at(cycle), "{name} tmr");
            assert_eq!(
                &dd.output_at(cycle)[..circuit.num_outputs()],
                reference.output_at(cycle),
                "{name} dwc"
            );
            assert!(!dd.output_at(cycle)[circuit.num_outputs()], "{name} dwc alarm quiet");
        }
    }
}

#[test]
fn instrumentation_overheads_are_structural() {
    for name in registry::NAMES {
        let circuit = registry::build(name).expect("registered");
        let n = circuit.num_ffs();
        assert_eq!(mask_scan::instrument(&circuit).netlist().num_ffs(), 2 * n, "{name}");
        assert_eq!(state_scan::instrument(&circuit).netlist().num_ffs(), 2 * n, "{name}");
        assert_eq!(time_mux::instrument(&circuit).netlist().num_ffs(), 4 * n, "{name}");
        assert_eq!(tmr(&circuit).num_ffs(), 3 * n, "{name}");
        assert_eq!(dwc(&circuit).num_ffs(), 2 * n, "{name}");
    }
}

#[test]
fn instrumented_netlists_survive_text_roundtrip() {
    let circuit = registry::build("b06s").expect("registered");
    for inst in [
        mask_scan::instrument(&circuit).netlist().clone(),
        state_scan::instrument(&circuit).netlist().clone(),
        time_mux::instrument(&circuit).netlist().clone(),
    ] {
        let text = seugrade_netlist::text::emit(&inst);
        let back = seugrade_netlist::text::parse(&text).expect("parses");
        assert_eq!(back.num_cells(), inst.num_cells());
        assert_eq!(back.num_ffs(), inst.num_ffs());
        let tb = Testbench::random(inst.num_inputs(), 12, 9);
        assert_eq!(
            CompiledSim::new(&inst).run_golden(&tb),
            CompiledSim::new(&back).run_golden(&tb)
        );
    }
}
