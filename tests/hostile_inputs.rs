//! Hostile-input fuzzing: every grammar the workspace reads —
//! `seugrade-campaign-ckpt/v1` checkpoints, ISCAS `.bench`, structural
//! BLIF, structural Verilog, the VHDL subset, and the
//! `seugrade-serve/v1` wire protocol — must reject truncated or
//! mutated input with a structured, line-numbered error. Never a
//! panic, never partial state (a rejected checkpoint resumes nothing;
//! a rejected netlist builds nothing; a rejected request creates no
//! job and leaves the connection open).

use proptest::prelude::*;
use seugrade::prelude::*;
use seugrade_netlist::{bench, blif, vhdl, vlog};

/// A real checkpoint, produced by an interrupted engine run rather than
/// hand-assembled, so the fuzz targets exactly what `grade --checkpoint`
/// writes.
fn golden_checkpoint_text() -> String {
    let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
    let tb = Testbench::random(circuit.num_inputs(), 24, 5);
    let plan = CampaignPlan::builder(&circuit, &tb)
        .policy(ShardPolicy { threads: 1, serial_below: 0 })
        .build();
    let engine = Engine::new(&plan);
    let path = std::env::temp_dir()
        .join(format!("seugrade-hostile-golden-{}.ckpt", std::process::id()));
    let mut opts = ResumeOptions::checkpoint_to(&path);
    opts.limit = Some(3);
    opts.meta = vec![("target".to_owned(), "lfsr8".to_owned())];
    engine.run_streamed_resumable(&plan, &opts).expect("seed checkpoint");
    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    std::fs::remove_file(&path).ok();
    text
}

const BENCH_SRC: &str = "\
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// A realistic, all-ASCII `submit` request line (inline netlist, every
/// optional knob present) — the richest single line the protocol
/// accepts, and therefore the best truncation/mutation target.
mod serve_proto {
    pub fn parse_roundtrip_line() -> String {
        let spec = r#"{"cmd":"submit","job":{"netlist":{"format":"bench","source":"INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"},"vectors":32,"seed":7,"sample":16,"trace_policy":"checkpoint:8","collapse":"on","threads":2,"round":4}}"#;
        // Guard: the exemplar itself must parse, or the fuzz is vacuous.
        seugrade_serve::proto::parse_request(spec).expect("exemplar request parses");
        spec.to_owned()
    }
}

const BLIF_SRC: &str = "\
.model toggle
.inputs en
.outputs q
.latch nq q re clk 0
.names en q nq
01 1
10 1
.end
";

/// A structural-Verilog source exercising every statement form the
/// subset accepts: block and line comments, an `(* init *)` attribute,
/// instance names, a wide gate, a mux and constant/alias assigns.
const VLOG_SRC: &str = "\
// toggle with trimmings
/* block
   comment */
module trimmings (en, ld, q, k);
  input en, ld;
  output q, k;
  wire s, ns, d, m;

  (* init = 1'b1 *) dff (s, d);
  not u0 (ns, s);
  mux (m, en, s, ns);
  and u1 (d, m, ld, en);
  assign q = s;
  assign k = 1'b0;
endmodule
";

/// A VHDL-subset source exercising the whole grammar: library/use
/// clauses, port defaults, signal declarations, operator chains with
/// parentheses, and a clocked process in the `rising_edge` form.
const VHDL_SRC: &str = "\
-- toggle with trimmings
library ieee;
use ieee.std_logic_1164.all;

entity trimmings is
  port (
    clk : in std_logic;
    en  : in std_logic;
    q   : out std_logic
  );
end entity;

architecture rtl of trimmings is
  signal s  : std_logic := '1';
  signal ns : std_logic;
  signal d  : std_logic;
begin
  ns <= not s;
  d  <= (en and ns) or (not en and s);
  process (clk)
  begin
    if rising_edge(clk) then
      s <= d;
    end if;
  end process;
  q <= s;
end architecture rtl;
";

/// Truncating anywhere must yield `Ok` (a shorter-but-valid prefix) or a
/// structured error — never a panic. For checkpoints specifically, *no*
/// strict prefix is valid: the `end` trailer is the last line.
fn lines_in(text: &str) -> usize {
    text.lines().count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_checkpoints_are_rejected_with_a_line_number(cut in 0usize..1000) {
        let full = golden_checkpoint_text();
        let cut = cut % full.len();
        let text = &full[..cut];
        let err = Checkpoint::parse(text).expect_err("no strict prefix is a valid checkpoint");
        let line = err.line().expect("parse-layer rejection carries a line");
        prop_assert!(line <= lines_in(text) + 1, "line {line} out of range: {err}");
    }

    #[test]
    fn mutated_checkpoints_never_panic(pos in 0usize..1000, byte in 32u8..127) {
        let full = golden_checkpoint_text();
        let pos = pos % full.len();
        let mut bytes = full.into_bytes();
        if bytes[pos] != byte {
            bytes[pos] = byte;
            let text = String::from_utf8(bytes).expect("ASCII stays ASCII");
            // A single-byte change is always caught: either a tag/field
            // fails to parse, or the FNV trailer no longer matches the
            // body.
            let err = Checkpoint::parse(&text).expect_err("mutation must be detected");
            prop_assert!(err.line().is_some(), "rejection must name a line: {err}");
        }
    }

    #[test]
    fn deleted_checkpoint_lines_never_resume(drop_line in 0usize..13) {
        let full = golden_checkpoint_text();
        let total = lines_in(&full);
        let drop_line = drop_line % total;
        let text: String = full
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != drop_line)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        prop_assert!(Checkpoint::parse(&text).is_err(), "dropping line {drop_line} must be caught");
    }

    #[test]
    fn truncated_bench_sources_never_panic(cut in 0usize..1000) {
        let cut = cut % BENCH_SRC.len();
        match bench::parse(&BENCH_SRC[..cut]) {
            Ok(_) => {} // a shorter prefix can still be a valid netlist
            Err(e) => {
                if let Some(line) = e.line() {
                    prop_assert!(line <= lines_in(&BENCH_SRC[..cut]) + 1, "{e}");
                }
            }
        }
    }

    #[test]
    fn mutated_bench_sources_never_panic(pos in 0usize..1000, byte in 32u8..127) {
        let pos = pos % BENCH_SRC.len();
        let mut bytes = BENCH_SRC.as_bytes().to_vec();
        bytes[pos] = byte;
        let text = String::from_utf8(bytes).expect("ASCII stays ASCII");
        // Accept or reject — the only failure mode is a panic or a
        // line number past the end of the file.
        if let Err(e) = bench::parse(&text) {
            if let Some(line) = e.line() {
                prop_assert!(line <= lines_in(&text) + 1, "{e}");
            }
        }
    }

    #[test]
    fn truncated_blif_sources_never_panic(cut in 0usize..1000) {
        let cut = cut % BLIF_SRC.len();
        if let Err(e) = blif::parse(&BLIF_SRC[..cut]) {
            if let Some(line) = e.line() {
                prop_assert!(line <= lines_in(&BLIF_SRC[..cut]) + 1, "{e}");
            }
        }
    }

    #[test]
    fn mutated_blif_sources_never_panic(pos in 0usize..1000, byte in 32u8..127) {
        let pos = pos % BLIF_SRC.len();
        let mut bytes = BLIF_SRC.as_bytes().to_vec();
        bytes[pos] = byte;
        let text = String::from_utf8(bytes).expect("ASCII stays ASCII");
        if let Err(e) = blif::parse(&text) {
            if let Some(line) = e.line() {
                prop_assert!(line <= lines_in(&text) + 1, "{e}");
            }
        }
    }

    #[test]
    fn truncated_verilog_sources_never_panic(cut in 0usize..1000) {
        let cut = cut % VLOG_SRC.len();
        if let Err(e) = vlog::parse(&VLOG_SRC[..cut]) {
            let line = e.line().expect("Verilog rejections carry a line");
            prop_assert!(line <= lines_in(&VLOG_SRC[..cut]) + 1, "{e}");
        }
    }

    #[test]
    fn mutated_verilog_sources_never_panic(pos in 0usize..1000, byte in 32u8..127) {
        let pos = pos % VLOG_SRC.len();
        let mut bytes = VLOG_SRC.as_bytes().to_vec();
        bytes[pos] = byte;
        let text = String::from_utf8(bytes).expect("ASCII stays ASCII");
        if let Err(e) = vlog::parse(&text) {
            let line = e.line().expect("Verilog rejections carry a line");
            prop_assert!(line <= lines_in(&text) + 1, "{e}");
        }
    }

    #[test]
    fn garbage_verilog_sources_are_rejected_with_a_line(
        bytes in proptest::collection::vec(32u8..127, 0..200usize)
    ) {
        // Random printable bytes essentially never spell a module; when
        // they are rejected, the diagnostic must stay in range.
        let garbage = String::from_utf8(bytes).expect("ASCII stays ASCII");
        if let Err(e) = vlog::parse(&garbage) {
            let line = e.line().expect("Verilog rejections carry a line");
            prop_assert!(line <= lines_in(&garbage) + 1, "{e}");
        }
    }

    #[test]
    fn truncated_vhdl_sources_never_panic(cut in 0usize..1000) {
        let cut = cut % VHDL_SRC.len();
        if let Err(e) = vhdl::parse(&VHDL_SRC[..cut]) {
            let line = e.line().expect("VHDL rejections carry a line");
            prop_assert!(line <= lines_in(&VHDL_SRC[..cut]) + 1, "{e}");
        }
    }

    #[test]
    fn mutated_vhdl_sources_never_panic(pos in 0usize..1000, byte in 32u8..127) {
        let pos = pos % VHDL_SRC.len();
        let mut bytes = VHDL_SRC.as_bytes().to_vec();
        bytes[pos] = byte;
        let text = String::from_utf8(bytes).expect("ASCII stays ASCII");
        if let Err(e) = vhdl::parse(&text) {
            let line = e.line().expect("VHDL rejections carry a line");
            prop_assert!(line <= lines_in(&text) + 1, "{e}");
        }
    }

    #[test]
    fn garbage_vhdl_sources_are_rejected_with_a_line(
        bytes in proptest::collection::vec(32u8..127, 0..200usize)
    ) {
        let garbage = String::from_utf8(bytes).expect("ASCII stays ASCII");
        if let Err(e) = vhdl::parse(&garbage) {
            let line = e.line().expect("VHDL rejections carry a line");
            prop_assert!(line <= lines_in(&garbage) + 1, "{e}");
        }
    }

    #[test]
    fn vhdl_paren_bombs_are_rejected_not_overflowed(depth in 30usize..400) {
        // Expression nesting past the parser's depth bound must be a
        // structured error, not a stack overflow. (The unit tests push
        // this to 100 000 parentheses; here the property is that the
        // boundary itself is exact.)
        let bomb = format!(
            "entity b is port (a : in bit; y : out bit); end entity;\n\
             architecture rtl of b is begin\n\
             y <= {}a{};\n\
             end architecture;\n",
            "(".repeat(depth),
            ")".repeat(depth),
        );
        let result = vhdl::parse(&bomb);
        if depth > 64 {
            let e = result.expect_err("nesting past the bound must be rejected");
            prop_assert!(e.to_string().contains("nested deeper"), "{e}");
            prop_assert_eq!(e.line(), Some(3));
        } else {
            prop_assert!(result.is_ok(), "nesting within the bound must parse");
        }
    }

    #[test]
    fn truncated_serve_requests_never_panic(cut in 0usize..1000) {
        // A real submit request, cut anywhere: every strict prefix is
        // invalid JSON (or a non-request), so it must parse to a
        // structured error — never a panic, never a request.
        let full = serve_proto::parse_roundtrip_line();
        let cut = cut % full.len();
        let e = seugrade_serve::proto::parse_request(&full[..cut])
            .expect_err("no strict prefix of a request object is valid JSON");
        prop_assert!(!e.msg.is_empty());
    }

    #[test]
    fn mutated_serve_requests_never_panic(pos in 0usize..1000, byte in 32u8..127) {
        let full = serve_proto::parse_roundtrip_line();
        let pos = pos % full.len();
        let mut bytes = full.into_bytes();
        bytes[pos] = byte;
        let text = String::from_utf8(bytes).expect("ASCII stays ASCII");
        // Accept (a one-byte change can still be a valid request) or
        // reject with a message — the only failure mode is a panic.
        if let Err(e) = seugrade_serve::proto::parse_request(&text) {
            prop_assert!(!e.msg.is_empty());
        }
    }

    #[test]
    fn garbage_serve_requests_are_rejected_with_a_message(
        bytes in proptest::collection::vec(32u8..127, 0..200usize)
    ) {
        let garbage = String::from_utf8(bytes).expect("ASCII stays ASCII");
        // Random printable bytes essentially never spell a valid
        // request object; when they do parse, they must be a Request —
        // anything else is a structured error.
        if let Err(e) = seugrade_serve::proto::parse_request(&garbage) {
            prop_assert!(!e.msg.is_empty());
        }
    }

    #[test]
    fn deep_json_bombs_are_rejected_not_overflowed(depth in 30usize..400) {
        // Nesting past the parser's depth bound must be a structured
        // error, not a stack overflow.
        let bomb = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let result = seugrade_serve::json::parse(&bomb);
        if depth > 32 {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn random_garbage_is_never_a_checkpoint(
        bytes in proptest::collection::vec(32u8..127, 0..200usize)
    ) {
        // The schema line is mandatory; arbitrary printable text must be
        // rejected — random bytes cannot spell the schema header *and* a
        // matching checksum trailer.
        let garbage = String::from_utf8(bytes).expect("ASCII stays ASCII");
        if !garbage.starts_with(CKPT_SCHEMA) {
            prop_assert!(Checkpoint::parse(&garbage).is_err());
        }
    }
}

/// Deterministic (non-proptest) spot checks on the rejected-state
/// contract: a failed resume leaves no partial sink behind.
#[test]
fn rejected_checkpoint_resumes_nothing() {
    let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
    let tb = Testbench::random(circuit.num_inputs(), 24, 5);
    let plan = CampaignPlan::builder(&circuit, &tb)
        .policy(ShardPolicy { threads: 1, serial_below: 0 })
        .build();
    let engine = Engine::new(&plan);
    let path = std::env::temp_dir()
        .join(format!("seugrade-hostile-reject-{}.ckpt", std::process::id()));
    std::fs::write(&path, "not a checkpoint at all\n").expect("write garbage");
    let err = engine
        .run_streamed_resumable(&plan, &ResumeOptions::resume_from(&path))
        .expect_err("garbage must not resume");
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, EngineError::Resume(ResumeError::Corrupt { line: 1, .. })), "{err}");
}

/// Live-daemon leg of the protocol contract: garbage lines on a real
/// connection get structured, line-numbered error responses; the
/// connection stays open and a subsequent valid request still works.
#[test]
fn hostile_lines_on_a_live_connection_get_line_numbered_errors() {
    use seugrade_serve::json::Value;
    use seugrade_serve::{Client, ClientError, Server, ServerConfig};

    let spool = std::env::temp_dir()
        .join(format!("seugrade-hostile-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        spool: spool.clone(),
    };
    let server = Server::bind(&config).expect("bind daemon");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Three hostile lines, then a valid one — all on the same connection.
    for (line_no, garbage) in
        [(1, "this is not json"), (2, r#"{"cmd":"warp"}"#), (3, r#"[1,2,3]"#)]
    {
        match client.request_line(garbage) {
            Err(ClientError::Server { line, msg }) => {
                assert_eq!(line, line_no, "server must number request lines 1-based");
                assert!(!msg.is_empty());
            }
            other => panic!("garbage line {line_no} must be a structured error, got {other:?}"),
        }
    }
    let v = client.request_line(r#"{"cmd":"ping"}"#).expect("connection survives garbage");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));

    // A hostile submit is an error, not a job.
    let err = client
        .request_line(r#"{"cmd":"submit","job":{"circuit":"no-such-circuit"}}"#)
        .expect_err("unknown circuit must be rejected");
    assert!(matches!(err, ClientError::Server { line: 5, .. }), "{err:?}");
    assert!(client.list().expect("list").is_empty(), "rejected submits must not create jobs");

    drop(server);
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn hdl_fuzz_exemplars_parse() {
    // Guard: the sources the HDL batteries mutate must themselves be
    // valid (and behaviourally identical), or the fuzzing is vacuous.
    let v = vlog::parse(VLOG_SRC).expect("Verilog exemplar parses");
    let h = vhdl::parse(VHDL_SRC).expect("VHDL exemplar parses");
    assert_eq!(v.num_ffs(), 1);
    assert_eq!(h.num_ffs(), 1);
    assert_eq!(h.ff_init_values(), vec![true]);
}

#[test]
fn unterminated_verilog_block_comment_is_a_structured_error() {
    // A `/*` that swallows the rest of the file — the classic
    // truncation hazard for the Verilog lexer — must be rejected at
    // the line the comment opened on.
    let src = "module m (a, y);\n  input a;\n  output y;\n  /* swallowed\n  buf (y, a);\n";
    let e = vlog::parse(src).expect_err("unterminated comment");
    assert_eq!(e.line(), Some(4), "{e}");
    assert!(e.to_string().contains("comment"), "{e}");
}

#[test]
fn missing_checkpoint_file_is_an_io_error_not_a_panic() {
    let err = Checkpoint::load(std::path::Path::new("/nonexistent/dir/nope.ckpt"))
        .expect_err("missing file");
    assert!(matches!(err, ResumeError::Io { .. }), "{err}");
    assert!(err.line().is_none());
}
