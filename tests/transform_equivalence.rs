//! Equivalence-checker-driven validation of every transform, plus
//! MBU / report-export integration coverage.

use seugrade::prelude::*;
use seugrade::instrument::{mask_scan, state_scan};

/// Transforms whose idle behaviour must equal the original circuit,
/// checked with the random-simulation equivalence checker (control
/// inputs default to low under `equiv_check`'s random benches only for
/// appended inputs — so restrict to transforms whose added inputs being
/// random still cannot corrupt: none. Instead check interface-identical
/// transforms here).
#[test]
fn tmr_is_equivalent_to_original() {
    for name in ["b01s", "b02s", "b06s", "b09s", "counter8", "lfsr16"] {
        let circuit = registry::build(name).expect("registered");
        let hardened = tmr(&circuit);
        assert_eq!(
            equiv_check(&circuit, &hardened, 48, 6),
            Ok(()),
            "{name} TMR must be transparent"
        );
    }
}

#[test]
fn dwc_is_equivalent_on_original_outputs() {
    for name in ["b01s", "b06s", "b13s"] {
        let circuit = registry::build(name).expect("registered");
        let protected = dwc(&circuit);
        // equiv_check compares min(outputs) positions: the alarm is
        // appended last, so the functional outputs are covered.
        assert_eq!(
            equiv_check(&circuit, &protected, 48, 6),
            Ok(()),
            "{name} DWC must be transparent"
        );
    }
}

#[test]
fn pruning_preserves_function() {
    for name in registry::NAMES {
        let circuit = registry::build(name).expect("registered");
        let pruned = circuit.pruned().into_netlist();
        assert_eq!(
            equiv_check(&circuit, &pruned, 32, 4),
            Ok(()),
            "{name} pruning must preserve behaviour"
        );
    }
}

#[test]
fn snl_roundtrip_preserves_function() {
    for name in ["viper", "b03s", "b13s"] {
        let circuit = registry::build(name).expect("registered");
        let text = seugrade_netlist::text::emit(&circuit);
        let back = seugrade_netlist::text::parse(&text).expect("parses");
        assert_eq!(equiv_check(&circuit, &back, 24, 3), Ok(()), "{name}");
    }
}

#[test]
fn equiv_checker_catches_seeded_bug() {
    // Sanity: the checker is not vacuous. Re-emit b06s with one gate
    // kind flipped in the SNL text and require a counterexample.
    let circuit = registry::build("b06s").expect("registered");
    let text = seugrade_netlist::text::emit(&circuit);
    let buggy_text = text.replacen("gate xor", "gate xnor", 1);
    assert_ne!(text, buggy_text, "fixture contains an xor gate");
    let buggy = seugrade_netlist::text::parse(&buggy_text).expect("parses");
    let err = equiv_check(&circuit, &buggy, 48, 8).expect_err("bug must be caught");
    assert!(err.to_string().contains("differs"));
}

#[test]
fn instrumented_circuits_with_live_controls_diverge() {
    // Driving the added control inputs with garbage corrupts the run —
    // shown by co-simulating manually with scan_en held high.
    let circuit = registry::build("counter8").expect("registered");
    let inst = state_scan::instrument(&circuit);
    let p = inst.ports().clone();
    let sim = CompiledSim::new(inst.netlist());
    let mut st = sim.new_state();
    let reference = CompiledSim::new(&circuit)
        .run_golden(&Testbench::constant_low(circuit.num_inputs(), 8));
    let mut inputs = vec![false; inst.netlist().num_inputs()];
    inputs[p.load_state.unwrap()] = true; // keep loading the zero shadow
    let mut diverged = false;
    for t in 0..8 {
        sim.set_inputs(&mut st, &inputs);
        sim.eval(&mut st);
        let out = sim.outputs_lane(&st, 0);
        if &out[..circuit.num_outputs()] != reference.output_at(t) {
            diverged = true;
            break;
        }
        sim.step(&mut st);
    }
    assert!(diverged, "load_state held high must freeze the counter");
    // mask_scan is referenced to keep both transforms under test here.
    let _ = mask_scan::instrument(&circuit);
}

#[test]
fn mbu_pipeline_on_viper_subset() {
    // Double faults on the Viper: adjacent-pair MBUs in the first 40
    // cycles; verify counts and that doubles are at least as harmful as
    // the worse of their constituent singles in aggregate.
    let circuit = viper::viper();
    let tb = stimuli::viper_program(24, 3);
    let grader = Grader::new(&circuit, &tb);

    let singles = MultiFault::adjacent_pairs(circuit.num_ffs(), 4, 1);
    let doubles = MultiFault::adjacent_pairs(circuit.num_ffs(), 4, 2);
    let s1 = GradingSummary::from_outcomes(&grader.run_multi(&singles));
    let s2 = GradingSummary::from_outcomes(&grader.run_multi(&doubles));
    assert_eq!(s1.total(), 215 * 4);
    assert_eq!(s2.total(), 214 * 4);
    assert!(
        s2.percent(FaultClass::Failure) >= s1.percent(FaultClass::Failure) - 1.0,
        "doubles fail at least as often: {s1} vs {s2}"
    );
}

#[test]
fn report_exports_are_consistent() {
    let circuit = registry::build("b09s").expect("registered");
    let tb = Testbench::random(circuit.num_inputs(), 30, 7);
    let grader = Grader::new(&circuit, &tb);
    let faults = FaultList::exhaustive(circuit.num_ffs(), 30);
    let outcomes = grader.run_parallel(faults.as_slice());

    let csv = report::to_csv(faults.as_slice(), &outcomes);
    assert_eq!(csv.lines().count(), faults.len() + 1);

    let hist = report::detection_latency_histogram(faults.as_slice(), &outcomes);
    let failures: usize = hist.iter().sum();
    let summary = GradingSummary::from_outcomes(&outcomes);
    assert_eq!(failures, summary.count(FaultClass::Failure));

    let rows = report::per_ff_breakdown(circuit.num_ffs(), faults.as_slice(), &outcomes);
    let total: usize = rows.iter().map(|r| r.iter().sum::<usize>()).sum();
    assert_eq!(total, faults.len());

    let mean = report::mean_classify_latency(faults.as_slice(), &outcomes, 30);
    assert!(mean >= 0.0 && mean < 30.0, "{mean}");
}
