//! The multi-tenant determinism contract of `seugrade-serve`: a
//! campaign graded through the daemon — any number of co-tenant jobs on
//! one shared worker pool, any cancel/resume interruption, any daemon
//! restart mid-flight — produces a verdict digest **bit-identical** to
//! the same spec graded solo through the engine.

use std::time::Duration;

use seugrade_serve::json::Value;
use seugrade_serve::{reference_run, Client, JobSpec, Server, ServerConfig};

/// An in-process daemon on an ephemeral port with a fresh temp spool.
fn daemon(tag: &str, workers: usize) -> (Server, std::path::PathBuf) {
    let spool = std::env::temp_dir()
        .join(format!("seugrade-serve-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        spool: spool.clone(),
    };
    (Server::bind(&config).expect("bind daemon"), spool)
}

fn small_spec() -> JobSpec {
    let mut spec = JobSpec::registry("s27");
    spec.vectors = 24;
    spec.round = 4;
    spec
}

fn digest_of(snapshot: &Value) -> String {
    snapshot
        .get("digest")
        .and_then(Value::as_str)
        .expect("terminal done snapshot carries a digest")
        .to_owned()
}

#[test]
fn sixteen_concurrent_jobs_reproduce_the_solo_digest() {
    let spec = small_spec();
    let (reference, summary) = reference_run(&spec).expect("solo reference");
    let expected = seugrade_serve::proto::digest_hex(reference);

    let (server, spool) = daemon("sixteen", 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let ids: Vec<String> =
        (0..16).map(|_| client.submit(&spec).expect("submit")).collect();
    for id in &ids {
        let snapshot = client.wait(id, Duration::from_secs(120)).expect("job finishes");
        assert_eq!(
            snapshot.get("state").and_then(Value::as_str),
            Some("done"),
            "{id}: {snapshot:?}"
        );
        assert_eq!(digest_of(&snapshot), expected, "{id} diverged from the solo run");
        // The tallies must match too — the digest is not the only
        // observable the protocol reports.
        assert_eq!(
            snapshot.get("failures").and_then(Value::as_usize),
            Some(summary.count(seugrade::FaultClass::Failure)),
            "{id} failure tally diverged"
        );
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn a_daemon_restart_mid_campaign_resumes_to_the_reference_digest() {
    // Enough chunks (120 cycles at round 2) that the daemon stops with
    // the job mid-flight.
    let mut spec = JobSpec::registry("s27");
    spec.vectors = 120;
    spec.round = 2;
    let (reference, _) = reference_run(&spec).expect("solo reference");
    let expected = seugrade_serve::proto::digest_hex(reference);

    let (mut server, spool) = daemon("restart", 1);
    let addr = server.local_addr();
    let id = {
        let mut client = Client::connect(addr).expect("connect");
        client.submit(&spec).expect("submit")
    };
    // Let at least one round land, then stop the daemon with the job
    // incomplete — a graceful stop drains the round and checkpoints.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    drop(server);
    assert!(
        spool.join(&id).join("job.ckpt").exists()
            || !spool.join(&id).join("result.json").exists(),
        "stopping must leave either a checkpoint or no result, never a torn state"
    );

    // Second daemon life on the same spool: the scan re-enqueues the
    // incomplete job and it resumes from its checkpoint cursor.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        spool: spool.clone(),
    };
    let server = Server::bind(&config).expect("restart daemon");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let snapshot = client.wait(&id, Duration::from_secs(120)).expect("job finishes");
    assert_eq!(snapshot.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(
        digest_of(&snapshot),
        expected,
        "resumed-across-restart digest diverged from the uninterrupted solo run"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn cancel_then_protocol_resume_reproduces_the_reference_digest() {
    let mut spec = JobSpec::registry("s27");
    spec.vectors = 120;
    spec.round = 2;
    let (reference, _) = reference_run(&spec).expect("solo reference");
    let expected = seugrade_serve::proto::digest_hex(reference);

    let (server, spool) = daemon("cancel", 1);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let id = client.submit(&spec).expect("submit");
    std::thread::sleep(Duration::from_millis(30));
    match client.cancel(&id) {
        Ok(_) => {
            // Cooperative: the in-flight round drains first.
            let snapshot =
                client.wait(&id, Duration::from_secs(60)).expect("cancel lands");
            let state = snapshot.get("state").and_then(Value::as_str).map(str::to_owned);
            if state.as_deref() == Some("cancelled") {
                client.resume(&id).expect("resume accepted");
            } // else: the job finished before the cancel drained — fine.
        }
        // The job outran the cancel entirely: a terminal job rejects
        // cancellation with a structured error, which is also fine.
        Err(seugrade_serve::ClientError::Server { .. }) => {}
        Err(e) => panic!("cancel failed unexpectedly: {e}"),
    }
    let snapshot = client.wait(&id, Duration::from_secs(120)).expect("job finishes");
    assert_eq!(snapshot.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(digest_of(&snapshot), expected, "cancel/resume digest diverged");
    drop(server);
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn streamed_events_end_with_the_reference_terminal_event() {
    let spec = small_spec();
    let (reference, _) = reference_run(&spec).expect("solo reference");
    let expected = seugrade_serve::proto::digest_hex(reference);

    let (server, spool) = daemon("stream", 2);
    let mut submitter = Client::connect(server.local_addr()).expect("connect");
    let id = submitter.submit(&spec).expect("submit");
    let mut streamer = Client::connect(server.local_addr()).expect("connect streamer");
    let mut chunks = 0usize;
    let terminal = streamer
        .stream(&id, |ev| {
            if ev.get("event").and_then(Value::as_str) == Some("chunk") {
                chunks += 1;
            }
        })
        .expect("stream ends at the terminal event");
    assert_eq!(terminal.get("event").and_then(Value::as_str), Some("done"));
    assert_eq!(
        terminal.get("digest").and_then(Value::as_str),
        Some(expected.as_str()),
        "terminal event digest diverged"
    );
    // A late subscriber to a terminal job gets the synthesized replay.
    let mut late = Client::connect(server.local_addr()).expect("late subscriber");
    let replay = late.stream(&id, |_| {}).expect("replayed terminal event");
    assert_eq!(replay.get("digest").and_then(Value::as_str), Some(expected.as_str()));
    drop(server);
    let _ = std::fs::remove_dir_all(&spool);
}
