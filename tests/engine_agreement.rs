//! Cross-engine agreement: every fault-grading engine in the workspace
//! must produce identical verdicts — including the sharded
//! `seugrade-engine` runtime at every thread count.

use proptest::prelude::*;
use seugrade::generators::{random_sequential, RandomCircuitConfig};
use seugrade::prelude::*;

/// Serial reference vs bit-parallel vs multi-threaded on every
/// registered benchmark circuit.
#[test]
fn all_engines_agree_on_registry_circuits() {
    for name in registry::NAMES {
        let circuit = registry::build(name).expect("registered");
        // Keep debug-build runtime sane on the big circuits (s5378g has
        // 1536 flip-flops; its serial reference dominates this suite).
        let cycles = match circuit.num_ffs() {
            0..=100 => 30,
            101..=1000 => 12,
            _ => 3,
        };
        let tb = if circuit.num_inputs() == viper::NUM_INPUTS {
            stimuli::viper_program(cycles, 5)
        } else {
            Testbench::random(circuit.num_inputs(), cycles, 5)
        };
        let grader = Grader::new(&circuit, &tb);
        // The s38417-class fixture (10k+ flip-flops) would make even a
        // short exhaustive serial reference dominate the suite; a
        // deterministic sample still crosses every engine pair.
        let faults = if circuit.num_ffs() > 4000 {
            FaultList::sampled(circuit.num_ffs(), tb.num_cycles(), 192, 5)
        } else {
            FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles())
        };
        let serial = grader.run_serial(faults.as_slice());
        let parallel = grader.run_parallel(faults.as_slice());
        let threaded = grader.run_parallel_threaded(faults.as_slice(), 3);
        assert_eq!(serial, parallel, "{name}: serial vs parallel");
        assert_eq!(parallel, threaded, "{name}: parallel vs threaded");
    }
}

/// The compiled simulator agrees with the event-driven simulator on the
/// golden run of every registered circuit.
#[test]
fn compiled_and_event_sim_agree_everywhere() {
    for name in registry::NAMES {
        let circuit = registry::build(name).expect("registered");
        // The event-driven simulator is the slow oracle; give the
        // 10k-flip-flop scale fixture a shorter golden run.
        let cycles = if circuit.num_ffs() > 4000 { 6 } else { 40 };
        let tb = Testbench::random(circuit.num_inputs(), cycles, 9);
        let fast = CompiledSim::new(&circuit).run_golden(&tb);
        let slow = EventSim::new(&circuit).run_golden(&tb);
        assert_eq!(fast, slow, "{name}");
    }
}

/// A fault graded through the event simulator (a third, independent
/// implementation of the semantics) matches the compiled-engine verdict.
#[test]
fn event_sim_oracle_agrees_on_fault_outcomes() {
    let circuit = registry::build("b06s").expect("registered");
    let tb = Testbench::random(circuit.num_inputs(), 20, 13);
    let grader = Grader::new(&circuit, &tb);
    let golden = grader.golden().clone();

    let mut ev = EventSim::new(&circuit);
    for fault in FaultList::exhaustive(circuit.num_ffs(), 20).iter() {
        // Replay golden up to the injection cycle on the event sim.
        ev.reset();
        for u in 0..fault.cycle as usize {
            ev.set_inputs(tb.cycle(u));
            ev.step();
        }
        ev.flip_ff(fault.ff);
        let mut verdict = None;
        for u in fault.cycle as usize..20 {
            ev.set_inputs(tb.cycle(u));
            if ev.outputs() != golden.output_at(u) {
                verdict = Some(FaultOutcome::failure(u as u32));
                break;
            }
            ev.step();
            if ev.state() == golden.state_at(u + 1) {
                verdict = Some(FaultOutcome::silent(u as u32));
                break;
            }
        }
        let expected = grader.classify_serial(fault);
        assert_eq!(verdict.unwrap_or(FaultOutcome::latent()), expected, "{fault}");
    }
}

/// The sharded engine runtime agrees with the serial reference on every
/// registered benchmark circuit, exhaustive and sampled.
#[test]
fn sharded_engine_agrees_on_registry_circuits() {
    for name in registry::NAMES {
        let circuit = registry::build(name).expect("registered");
        let cycles = match circuit.num_ffs() {
            0..=100 => 24,
            101..=1000 => 10,
            _ => 3,
        };
        let tb = Testbench::random(circuit.num_inputs(), cycles, 21);
        let grader = Grader::new(&circuit, &tb);
        // Sampled campaign on the 10k-flip-flop scale fixture: the serial
        // reference is the slow engine here, as in the streamed test below.
        let faults = if circuit.num_ffs() > 4000 {
            FaultList::sampled(circuit.num_ffs(), cycles, 192, 21)
        } else {
            FaultList::exhaustive(circuit.num_ffs(), cycles)
        };
        let serial = grader.run_serial(faults.as_slice());
        let serial_digest = StreamAccumulator::digest_of(faults.as_slice(), &serial);
        let engine = Engine::for_circuit(&circuit, &tb);
        for threads in [1, 4] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .faults(faults.clone())
                .policy(ShardPolicy::with_threads(threads))
                .build();
            let run = engine.run(&plan);
            assert_eq!(run.outcomes(), serial.as_slice(), "{name} @ {threads} threads");
            // The streamed path never materializes the campaign, yet its
            // digest proves the verdicts fault-for-fault identical.
            let streamed = engine.run_streamed(&plan);
            assert_eq!(streamed.digest(), serial_digest, "{name} streamed @ {threads}");
            assert_eq!(streamed.summary(), run.summary(), "{name} streamed @ {threads}");
        }
        // Sampled campaigns shard identically too.
        let sample = FaultList::sampled(circuit.num_ffs(), cycles, 40, 5);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .sampled(40, 5)
            .policy(ShardPolicy::with_threads(3))
            .build();
        let run = engine.run(&plan);
        assert_eq!(run.single(), Some(&sample), "{name}: sample is policy-independent");
        assert_eq!(run.outcomes(), grader.run_serial(sample.as_slice()), "{name}: sampled");
    }
}

/// The streaming core end to end on the s5378-class scale fixture: a
/// checkpointed engine with a streamed fault source agrees with the
/// dense materialized engine and the serial reference at 1/2/4/8
/// threads, while storing an order of magnitude less golden state.
#[test]
fn streamed_checkpoint_campaign_agrees_on_the_scale_fixture() {
    let circuit = registry::build("s5378g").expect("registered");
    let cycles = 3; // debug-build budget; release CI grades 4096 cycles
    let tb = Testbench::random(circuit.num_inputs(), cycles, 42);
    // Sampled subset: the serial reference is the slow engine here.
    let sample = FaultList::sampled(circuit.num_ffs(), cycles, 256, 9);
    let dense = Grader::new(&circuit, &tb);
    let serial = dense.run_serial(sample.as_slice());
    let serial_digest = StreamAccumulator::digest_of(sample.as_slice(), &serial);
    for threads in [1usize, 2, 4, 8] {
        let plan = CampaignPlan::builder(&circuit, &tb)
            .faults(sample.clone())
            .trace_policy(TracePolicy::Checkpoint(64))
            .policy(ShardPolicy::with_threads(threads))
            .build();
        let engine = Engine::new(&plan);
        let streamed = engine.run_streamed(&plan);
        assert_eq!(streamed.digest(), serial_digest, "{threads} threads");
        let run = engine.run(&plan);
        assert_eq!(run.outcomes(), serial.as_slice(), "{threads} threads materialized");
        assert!(
            engine.grader().golden().stored_bits() <= dense.golden().stored_bits(),
            "checkpointed golden must not out-store dense"
        );
    }
}

/// `TracePolicy::Dense` and `Checkpoint(K)` are interchangeable for
/// every engine entry point: serial, bit-parallel, materialized engine
/// and streamed engine all agree for a spread of `K`s.
#[test]
fn trace_policies_agree_across_all_entry_points() {
    let circuit = registry::build("b09s").expect("registered");
    let cycles = 22;
    let tb = Testbench::random(circuit.num_inputs(), cycles, 13);
    let faults = FaultList::exhaustive(circuit.num_ffs(), cycles);
    let dense = Grader::new(&circuit, &tb);
    let reference = dense.run_serial(faults.as_slice());
    let reference_digest = StreamAccumulator::digest_of(faults.as_slice(), &reference);
    for k in [1, 4, 9, 22, 100] {
        let policy = TracePolicy::Checkpoint(k);
        let grader = Grader::with_policy(&circuit, &tb, policy);
        assert_eq!(grader.run_serial(faults.as_slice()), reference, "serial K={k}");
        assert_eq!(grader.run_parallel(faults.as_slice()), reference, "parallel K={k}");
        let plan = CampaignPlan::builder(&circuit, &tb)
            .trace_policy(policy)
            .threads(2)
            .build();
        let engine = Engine::new(&plan);
        assert_eq!(engine.run(&plan).outcomes(), reference.as_slice(), "engine K={k}");
        assert_eq!(
            engine.run_streamed(&plan).digest(),
            reference_digest,
            "streamed K={k}"
        );
    }
}

fn arb_config() -> impl Strategy<Value = RandomCircuitConfig> {
    (2usize..6, 2usize..14, 10usize..80, 1usize..5, 0u32..9).prop_map(
        |(num_inputs, num_ffs, num_gates, num_outputs, observability_num)| RandomCircuitConfig {
            num_inputs,
            num_ffs,
            num_gates,
            num_outputs,
            observability_num,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Generated circuits graded serial vs the sharded engine at 1, 2, 4
    /// and 8 threads: fault-by-fault identical outcomes, fault-by-fault
    /// identical order, whatever the shard schedule.
    #[test]
    fn sharded_engine_matches_serial_on_generated_circuits(
        config in arb_config(),
        seed in 0u64..1000,
        tb_seed in 0u64..1000,
    ) {
        let circuit = random_sequential(&config, seed);
        let cycles = 16usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, tb_seed);
        let grader = Grader::new(&circuit, &tb);
        let faults = FaultList::exhaustive(circuit.num_ffs(), cycles);
        let serial = grader.run_serial(faults.as_slice());
        let engine = Engine::for_circuit(&circuit, &tb);
        for threads in [1usize, 2, 4, 8] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .policy(ShardPolicy::with_threads(threads))
                .build();
            let run = engine.run(&plan);
            prop_assert_eq!(run.outcomes(), serial.as_slice(), "{} threads", threads);
            prop_assert_eq!(run.summary().total(), faults.len());
        }
    }

    /// Random circuits, random checkpoint interval: `Checkpoint(K)`
    /// grades bit-identically to `Dense` through both the serial grader
    /// and the streamed engine.
    #[test]
    fn checkpoint_policy_matches_dense_on_generated_circuits(
        config in arb_config(),
        seed in 0u64..1000,
        k in 1usize..40,
    ) {
        let circuit = random_sequential(&config, seed);
        let cycles = 16usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, seed ^ 0xC0FFEE);
        let faults = FaultList::exhaustive(circuit.num_ffs(), cycles);
        let dense = Grader::new(&circuit, &tb);
        let reference = dense.run_serial(faults.as_slice());
        let cp = Grader::with_policy(&circuit, &tb, TracePolicy::Checkpoint(k));
        prop_assert_eq!(&cp.run_serial(faults.as_slice()), &reference, "serial K={}", k);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .trace_policy(TracePolicy::Checkpoint(k))
            .threads(2)
            .build();
        let streamed = plan.execute_streamed();
        prop_assert_eq!(
            streamed.digest(),
            StreamAccumulator::digest_of(faults.as_slice(), &reference),
            "streamed K={}", k
        );
    }

    /// Random checkpoint interval, shuffled fault order, adversarial
    /// window-cache capacities (disabled, one entry, effectively
    /// unbounded): the streamed engine reproduces the serial no-cache
    /// digest regardless — the cache only ever changes how often golden
    /// spans are replayed, never a verdict.
    #[test]
    fn window_cache_never_changes_verdicts(
        config in arb_config(),
        seed in 0u64..1000,
        k in 1usize..40,
        shuffle_seed in 0u64..1000,
    ) {
        let circuit = random_sequential(&config, seed);
        let cycles = 16usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, seed ^ 0xCAC4E);
        let mut faults: Vec<Fault> =
            FaultList::exhaustive(circuit.num_ffs(), cycles).iter().collect();
        // Deterministic Fisher–Yates: chunk order over the wire is
        // whatever the shuffle says, not cycle-major.
        let mut rng = SplitMix64::new(shuffle_seed);
        for i in (1..faults.len()).rev() {
            #[allow(clippy::cast_possible_truncation)]
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            faults.swap(i, j);
        }
        let dense = Grader::new(&circuit, &tb);
        let serial = dense.run_serial(&faults);
        let reference = StreamAccumulator::digest_of(&faults, &serial);
        let list = FaultList::from_faults(faults, circuit.num_ffs(), cycles);
        for cache in [0usize, 1, 1024] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .faults(list.clone())
                .trace_policy(TracePolicy::Checkpoint(k))
                .window_cache(cache)
                .threads(2)
                .build();
            prop_assert_eq!(
                plan.execute_streamed().digest(),
                reference,
                "cache {} K={}", cache, k
            );
        }
    }

    /// Streamed and materialized fault sources agree at 1/2/4/8 threads
    /// on generated circuits (summary and fault-for-fault digest).
    #[test]
    fn streamed_matches_materialized_on_generated_circuits(
        config in arb_config(),
        seed in 0u64..1000,
    ) {
        let circuit = random_sequential(&config, seed);
        let cycles = 14usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, seed ^ 0x57EA);
        let engine = Engine::for_circuit(&circuit, &tb);
        let reference = engine.run(&CampaignPlan::builder(&circuit, &tb).build());
        let ref_digest = StreamAccumulator::digest_of(
            reference.single().expect("exhaustive").as_slice(),
            reference.outcomes(),
        );
        for threads in [1usize, 2, 4, 8] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .policy(ShardPolicy::with_threads(threads))
                .build();
            let streamed = engine.run_streamed(&plan);
            prop_assert_eq!(streamed.summary(), reference.summary(), "{} threads", threads);
            prop_assert_eq!(streamed.digest(), ref_digest, "{} threads", threads);
        }
    }

    /// Multi-bit campaigns shard identically to the serial MBU engine.
    #[test]
    fn sharded_mbu_matches_serial_on_generated_circuits(
        config in arb_config(),
        seed in 0u64..500,
    ) {
        let circuit = random_sequential(&config, seed);
        let cycles = 12usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, seed ^ 0x5EED);
        let grader = Grader::new(&circuit, &tb);
        let k = 2.min(circuit.num_ffs());
        let faults = MultiFault::adjacent_pairs(circuit.num_ffs(), cycles, k);
        let serial = grader.run_multi(&faults);
        for threads in [2usize, 8] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .multi(faults.clone())
                .policy(ShardPolicy::with_threads(threads))
                .build();
            let run = plan.execute();
            prop_assert_eq!(run.outcomes(), serial.as_slice(), "{} threads", threads);
        }
    }
}

/// Cycle-major chunk order keeps the per-worker window cache hot: the
/// K-aligned seed span changes only every `K` injection cycles, so a
/// full exhaustive walk misses exactly once per distinct span and hits
/// everywhere else.
#[test]
fn cycle_major_walk_mostly_hits_the_window_cache() {
    let circuit = registry::build("b03s").expect("registered");
    let cycles = 48;
    let k = 16;
    let tb = Testbench::random(circuit.num_inputs(), cycles, 77);
    let grader = Grader::with_policy(&circuit, &tb, TracePolicy::Checkpoint(k));
    let faults = FaultList::exhaustive(circuit.num_ffs(), cycles);
    // Pin the tape kernel: this test audits the *window*-cache contract
    // of the span-seeded path; the differential kernel seeds from the
    // bit-packed golden cache instead and never touches this counter.
    let mut scratch = grader
        .new_scratch(Collapse::Early, DEFAULT_WINDOW_CACHE_SPANS)
        .with_kernel(Kernel::Tape);
    let mut out = vec![FaultOutcome::latent(); grader.chunk_lanes()];
    for cycle_group in faults.as_slice().chunks(circuit.num_ffs()) {
        for chunk in cycle_group.chunks(grader.chunk_lanes()) {
            grader.grade_chunk(&mut scratch, chunk, &mut out[..chunk.len()]);
        }
    }
    // b03s fits one chunk per cycle: 48 seed lookups over 3 spans.
    assert_eq!(scratch.cache().misses(), (cycles / k) as u64);
    assert_eq!(scratch.cache().hits(), (cycles - cycles / k) as u64);
    assert!(scratch.cache().hits() > scratch.cache().misses());
    // Each span is replayed once, so total replay work equals one golden
    // pass over the bench — not one per chunk.
    assert_eq!(scratch.cache().replayed_cycles(), cycles as u64);
}

/// The sampled streaming path reconstructs each golden span exactly
/// once: sparse same-cycle chunks seed from the cache instead of
/// re-replaying the span per chunk (the old per-chunk reconstruction
/// tax this suite pins shut).
#[test]
fn sampled_checkpoint_grading_reconstructs_each_span_once() {
    let circuit = registry::build("s344a").expect("registered");
    let cycles = 60;
    let k = 10;
    let tb = Testbench::random(circuit.num_inputs(), cycles, 23);
    let grader = Grader::with_policy(&circuit, &tb, TracePolicy::Checkpoint(k));
    let sample = FaultList::sampled(circuit.num_ffs(), cycles, 120, 3);
    // Group the sample cycle-major, exactly like ChunkPlan::ordered cuts
    // a sorted streamed campaign.
    let mut by_cycle: Vec<Vec<Fault>> = vec![Vec::new(); cycles];
    for f in sample.iter() {
        by_cycle[f.cycle as usize].push(f);
    }
    // Tape kernel for the same reason as above: the window-cache
    // counters are the property under test.
    let mut scratch = grader
        .new_scratch(Collapse::Early, DEFAULT_WINDOW_CACHE_SPANS)
        .with_kernel(Kernel::Tape);
    let mut lookups = 0u64;
    let mut spans = std::collections::HashSet::new();
    for group in by_cycle.iter().filter(|g| !g.is_empty()) {
        for chunk in group.chunks(grader.chunk_lanes()) {
            let mut out = vec![FaultOutcome::latent(); chunk.len()];
            grader.grade_chunk(&mut scratch, chunk, &mut out);
            lookups += 1;
            spans.insert(chunk[0].cycle as usize / k);
        }
    }
    // One reconstruction per distinct K-aligned span — every other seed
    // lookup is a cache hit.
    assert_eq!(scratch.cache().misses(), spans.len() as u64);
    assert_eq!(scratch.cache().hits(), lookups - spans.len() as u64);
    assert_eq!(scratch.cache().replayed_cycles(), (spans.len() * k) as u64);
}

/// Lane independence: grading the same fault in different lanes of the
/// bit-parallel engine yields the same outcome.
#[test]
fn parallel_outcomes_are_order_independent() {
    let circuit = registry::build("b03s").expect("registered");
    let tb = Testbench::random(circuit.num_inputs(), 25, 17);
    let grader = Grader::new(&circuit, &tb);
    let faults = FaultList::exhaustive(circuit.num_ffs(), 25);
    let forward = grader.run_parallel(faults.as_slice());
    let mut reversed: Vec<Fault> = faults.as_slice().to_vec();
    reversed.reverse();
    let backward = grader.run_parallel(&reversed);
    for (i, f) in faults.iter().enumerate() {
        let j = reversed.iter().position(|&g| g == f).expect("same fault");
        assert_eq!(forward[i], backward[j], "{f}");
    }
}
