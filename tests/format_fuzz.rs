//! Differential format fuzzing: random netlists through the full
//! emit × import matrix.
//!
//! A generator builds arbitrary valid netlists — every gate kind,
//! hostile identifiers that are illegal in at least one format, random
//! flip-flop feedback — and each one is emitted to every text format
//! the workspace can write (`snl`, `bench`, `blif`, structural
//! Verilog), then re-imported. Three properties must hold for every
//! `(netlist, format)` pair:
//!
//! 1. the content sniffer identifies the emitted source without any
//!    extension hint;
//! 2. the re-import is sequentially equivalent to the original
//!    ([`equiv_check`]);
//! 3. a fault-grading campaign over a shared testbench produces
//!    bit-identical per-fault verdicts and verdict digests — the round
//!    trip must preserve the fault space (flip-flop order and count),
//!    not just the output function.
//!
//! VHDL is import-only (no emitter), so it is exercised by the fixture
//! suites (`ingest_roundtrip`, registry) rather than this matrix.

use proptest::prelude::*;
use seugrade::prelude::*;
use seugrade_netlist::import::import_str;
use seugrade_netlist::{bench, blif, text, vlog};

/// Identifier stems drawn by the generator. Each is hostile to at
/// least one emitter (keywords, spaces, leading dots, the `esc_`
/// escape prefix itself) so every round trip exercises the shared
/// legalization pass; the numeric suffix added per port keeps them
/// unique within a netlist.
const NAME_STEMS: [&str; 8] = [
    "a", "module", "entity", "w x", ".y", "esc_q", "G#", "INPUT",
];

fn stem(rng: &mut SplitMix64) -> &'static str {
    NAME_STEMS[(rng.next_u64() % NAME_STEMS.len() as u64) as usize]
}

fn pick(rng: &mut SplitMix64, pool: &[SigId]) -> SigId {
    pool[(rng.next_u64() % pool.len() as u64) as usize]
}

/// Builds a random — but always valid — netlist from a seed.
///
/// The shape is deliberately unconstrained beyond validity: gates may
/// be dangling, outputs may observe inputs or constants directly,
/// several outputs may share one driver, and flip-flops may feed back
/// on themselves. Combinational loops cannot occur because gates only
/// ever reference already-created signals.
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = SplitMix64::new(seed);
    let mut b = NetlistBuilder::new(format!("fuzz{seed}"));
    let mut pool: Vec<SigId> = Vec::new();

    let num_inputs = 1 + (rng.next_u64() % 6) as usize;
    for i in 0..num_inputs {
        pool.push(b.input(format!("{}{i}", stem(&mut rng))));
    }
    pool.push(b.constant(false));
    pool.push(b.constant(true));

    let ffs: Vec<SigId> = (0..1 + (rng.next_u64() % 5) as usize)
        .map(|_| b.dff(rng.next_bool()))
        .collect();
    pool.extend(&ffs);

    const KINDS: [GateKind; 9] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux,
    ];
    for _ in 0..5 + (rng.next_u64() % 32) as usize {
        let kind = KINDS[(rng.next_u64() % KINDS.len() as u64) as usize];
        let arity = match kind {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::Mux => 3,
            _ => 2 + (rng.next_u64() % 3) as usize,
        };
        let pins: Vec<SigId> = (0..arity).map(|_| pick(&mut rng, &pool)).collect();
        pool.push(b.gate(kind, &pins));
    }

    for &ff in &ffs {
        let d = pick(&mut rng, &pool);
        b.connect_dff(ff, d).expect("generated flip-flop exists");
    }

    for o in 0..1 + (rng.next_u64() % 4) as usize {
        let sig = pick(&mut rng, &pool);
        b.output(format!("{}_o{o}", stem(&mut rng)), sig);
    }

    b.finish().expect("generated netlist is valid by construction")
}

/// The emit side of the matrix: every format the workspace can write.
fn emit_matrix(n: &Netlist) -> Vec<(SourceFormat, String)> {
    vec![
        (SourceFormat::Snl, text::emit(n)),
        (SourceFormat::Bench, bench::emit(n)),
        (SourceFormat::Blif, blif::emit(n)),
        (SourceFormat::Verilog, vlog::emit(n)),
    ]
}

/// The verdict digest of an exhaustive campaign over `tb`.
fn graded_digest(circuit: &Netlist, tb: &Testbench) -> (u64, Vec<FaultOutcome>) {
    let run = CampaignPlan::builder(circuit, tb).build().execute();
    let (faults, outcomes) = run
        .into_single()
        .expect("default campaign plan is single-fault");
    (
        StreamAccumulator::digest_of(faults.as_slice(), &outcomes),
        outcomes,
    )
}

/// Drives one netlist through the whole matrix and asserts the three
/// properties (sniff, equivalence, identical verdicts).
fn assert_round_trips(original: &Netlist, cycles: usize) {
    let tb = Testbench::random(original.num_inputs(), cycles, 0xF0F0 ^ cycles as u64);
    let (want_digest, want_outcomes) = graded_digest(original, &tb);
    for (format, src) in emit_matrix(original) {
        let label = format.label();
        assert_eq!(
            SourceFormat::sniff(&src),
            format,
            "emitted {label} source must sniff as {label}:\n{src}"
        );
        let back = import_str(&src, format)
            .unwrap_or_else(|e| panic!("re-import of emitted {label} failed: {e}\n{src}"))
            .netlist;
        assert_eq!(back.num_inputs(), original.num_inputs(), "{label} inputs");
        assert_eq!(back.num_outputs(), original.num_outputs(), "{label} outputs");
        assert_eq!(back.num_ffs(), original.num_ffs(), "{label} flip-flops");
        assert_eq!(
            back.ff_init_values(),
            original.ff_init_values(),
            "{label} power-on values"
        );
        if let Err(cex) = equiv_check(original, &back, cycles, 3) {
            panic!("{label} round trip broke equivalence: {cex}\n{src}");
        }
        let (digest, outcomes) = graded_digest(&back, &tb);
        assert_eq!(
            outcomes, want_outcomes,
            "{label} round trip changed a fault verdict\n{src}"
        );
        assert_eq!(digest, want_digest, "{label} verdict digest diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: any valid netlist survives emit → import
    /// through every format with identical behaviour and identical
    /// fault verdicts.
    #[test]
    fn random_netlists_round_trip_through_every_format(seed in 0u64..1_000_000) {
        let original = random_netlist(seed);
        assert_round_trips(&original, 24);
    }
}

#[test]
fn every_gate_kind_and_hostile_name_round_trips() {
    // A deterministic companion to the property: one netlist that is
    // guaranteed to contain every gate kind, both constants, a shared
    // output driver, an output observing an input, a self-feeding
    // flip-flop and a name that is hostile in every format.
    let mut b = NetlistBuilder::new("kinds");
    let a = b.input("module"); // Verilog keyword
    let c = b.input("entity"); // VHDL keyword
    let s = b.input(".w x#"); // illegal in snl, bench, blif and Verilog
    let k0 = b.constant(false);
    let k1 = b.constant(true);
    let ff0 = b.dff(true);
    let ff1 = b.dff(false);
    let g_and = b.gate(GateKind::And, &[a, c, s]);
    let g_or = b.gate(GateKind::Or, &[g_and, k0]);
    let g_nand = b.nand2(g_or, ff0);
    let g_nor = b.nor2(g_nand, k1);
    let g_xor = b.gate(GateKind::Xor, &[g_nor, a, c]);
    let g_xnor = b.xnor2(g_xor, s);
    let g_not = b.not(g_xnor);
    let g_buf = b.buf(g_not);
    let g_mux = b.mux(s, g_buf, ff1);
    b.connect_dff(ff0, ff0).expect("self feedback is valid");
    b.connect_dff(ff1, g_mux).expect("flip-flop exists");
    b.output("esc_out", g_mux); // collides with the escape prefix
    b.output("also mux", g_mux); // shared driver, hostile name
    b.output("module", a); // output named like a keyword, observes an input
    let original = b.finish().expect("hand-built netlist is valid");
    assert_round_trips(&original, 48);
}

#[test]
fn registry_circuits_round_trip_through_every_format() {
    // The acceptance criterion verbatim: every registry circuit —
    // including the HDL-imported ones — survives the full matrix with
    // bit-identical verdict digests. Large entries get fewer cycles so
    // the exhaustive FfIndex × cycle campaign stays test-sized.
    for name in registry::NAMES {
        let original = registry::build(name).expect("registry name");
        if original.num_ffs() > 4096 {
            // The s38417-class scale fixture shares its generator (and
            // thus its emitter coverage) with s5378g; running the
            // exhaustive matrix campaign on 10k flip-flops buys no new
            // format coverage for its debug-build cost.
            continue;
        }
        let cycles = if original.num_ffs() > 100 { 4 } else { 24 };
        assert_round_trips(&original, cycles);
    }
}
