//! Early fault collapse is a pure work optimisation: retiring a lane
//! the cycle it reconverges or first fails must never change a verdict.
//! This battery pins collapse-on vs collapse-off to bit-identical
//! digests across every registry circuit, trace policy, thread count
//! and modelled emulation technique — and proves the work *is* saved
//! by counting simulation steps.

use seugrade::prelude::*;

/// Cycle budget by circuit size, mirroring the other cross-engine
/// suites: the s5378-class fixtures dominate debug-build runtime.
fn cycle_budget(num_ffs: usize) -> usize {
    match num_ffs {
        0..=100 => 18,
        101..=1000 => 8,
        _ => 2,
    }
}

/// Collapse on vs off yields the identical order-independent verdict
/// digest for every registry circuit, under dense and `Checkpoint(K)`
/// for a spread of `K`, at 1/2/4/8 worker threads.
#[test]
fn collapse_modes_agree_on_every_registry_circuit() {
    for name in registry::NAMES {
        let circuit = registry::build(name).expect("registered");
        let cycles = cycle_budget(circuit.num_ffs());
        let tb = Testbench::random(circuit.num_inputs(), cycles, 31);
        // Exhaustive everywhere except the 10k-flip-flop scale fixture,
        // where a deterministic sample keeps the 5 × 2 × 4 plan matrix
        // (and its serial reference) debug-build sized.
        let faults = if circuit.num_ffs() > 4000 {
            FaultList::sampled(circuit.num_ffs(), cycles, 256, 31)
        } else {
            FaultList::exhaustive(circuit.num_ffs(), cycles)
        };
        let dense = Grader::new(&circuit, &tb);
        let reference =
            StreamAccumulator::digest_of(faults.as_slice(), &dense.run_serial(faults.as_slice()));
        let policies = [
            TracePolicy::Dense,
            TracePolicy::Checkpoint(1),
            TracePolicy::Checkpoint(3),
            TracePolicy::Checkpoint(64),
            TracePolicy::Checkpoint(100),
        ];
        for policy in policies {
            for collapse in [Collapse::Early, Collapse::Horizon] {
                for threads in [1usize, 2, 4, 8] {
                    let plan = CampaignPlan::builder(&circuit, &tb)
                        .faults(faults.clone())
                        .trace_policy(policy)
                        .collapse(collapse)
                        .policy(ShardPolicy::with_threads(threads))
                        .build();
                    let run = Engine::new(&plan).run_streamed(&plan);
                    assert_eq!(
                        run.digest(),
                        reference,
                        "{name}: {} collapse {} @ {threads} threads",
                        policy.label(),
                        collapse.label(),
                    );
                }
            }
        }
    }
}

/// Every modelled emulation technique reports the identical campaign
/// whether the software oracle graded with early collapse or walked
/// every fault to the horizon — same summary, same cycle-accurate
/// timing, under dense and checkpointed traces.
#[test]
fn every_technique_reports_identically_under_both_collapse_modes() {
    let circuit = registry::build("b13s").expect("registered");
    let cycles = 20;
    let tb = Testbench::random(circuit.num_inputs(), cycles, 47);
    let mut campaigns = Vec::new();
    for policy in [TracePolicy::Dense, TracePolicy::Checkpoint(3)] {
        for collapse in [Collapse::Early, Collapse::Horizon] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .trace_policy(policy)
                .collapse(collapse)
                .threads(2)
                .build();
            let run = Engine::new(&plan).run(&plan);
            let (faults, outcomes) = run.into_single().expect("exhaustive");
            campaigns.push(AutonomousCampaign::from_graded(
                &circuit,
                &tb,
                faults,
                outcomes,
                TimingConfig::default(),
            ));
        }
    }
    for tech in Technique::ALL {
        let reports: Vec<EmulationReport> = campaigns.iter().map(|c| c.run(tech)).collect();
        for r in &reports[1..] {
            assert_eq!(r.summary, reports[0].summary, "{tech}: summary");
            assert_eq!(r.timing, reports[0].timing, "{tech}: timing");
        }
    }
}

/// A lane retired at cycle `c` is never re-simulated after `c`: under
/// early collapse the per-chunk simulation-step counter stops at the
/// chunk's last decision cycle, while the horizon mode walks every
/// chunk to the end of the bench. Verdicts stay identical either way.
#[test]
fn retired_lanes_are_never_resimulated() {
    let circuit = registry::build("b01s").expect("registered");
    let cycles = 40;
    let tb = Testbench::random(circuit.num_inputs(), cycles, 11);
    let faults = FaultList::exhaustive(circuit.num_ffs(), cycles);
    for policy in [TracePolicy::Dense, TracePolicy::Checkpoint(8)] {
        let grader = Grader::with_policy(&circuit, &tb, policy);
        let serial: Vec<FaultOutcome> =
            faults.iter().map(|f| grader.classify_serial(f)).collect();
        let lanes = grader.chunk_lanes();
        let mut chunks: Vec<Vec<Fault>> = Vec::new();
        for cycle_group in faults.as_slice().chunks(circuit.num_ffs()) {
            for chunk in cycle_group.chunks(lanes) {
                chunks.push(chunk.to_vec());
            }
        }

        let mut early = grader.new_scratch(Collapse::Early, DEFAULT_WINDOW_CACHE_SPANS);
        let mut horizon = grader.new_scratch(Collapse::Horizon, DEFAULT_WINDOW_CACHE_SPANS);
        let mut expected_early = 0u64;
        let mut expected_horizon = 0u64;
        let mut cursor = 0;
        for chunk in &chunks {
            let mut out_e = vec![FaultOutcome::latent(); chunk.len()];
            let mut out_h = vec![FaultOutcome::latent(); chunk.len()];
            grader.grade_chunk(&mut early, chunk, &mut out_e);
            grader.grade_chunk(&mut horizon, chunk, &mut out_h);
            let want = &serial[cursor..cursor + chunk.len()];
            assert_eq!(out_e, want, "{}: early verdicts", policy.label());
            assert_eq!(out_h, want, "{}: horizon verdicts", policy.label());
            cursor += chunk.len();

            // The chunk's walk may stop the cycle its last lane decides;
            // a latent lane pins it to the horizon.
            let t = u64::from(chunk[0].cycle);
            let last_decision = want
                .iter()
                .map(|o| u64::from(o.classify_cycle(cycles)))
                .max()
                .expect("non-empty chunk");
            expected_early += last_decision - t + 1;
            expected_horizon += cycles as u64 - t;
        }
        assert_eq!(
            early.sim_steps(),
            expected_early,
            "{}: early collapse must stop at each chunk's last decision",
            policy.label()
        );
        assert_eq!(
            horizon.sim_steps(),
            expected_horizon,
            "{}: horizon mode walks every chunk to the end",
            policy.label()
        );
        assert!(early.sim_steps() < horizon.sim_steps(), "{}", policy.label());
    }
}
