//! The instrumented netlists, driven cycle by cycle like the FPGA
//! controller would, must classify exactly like the software oracle.
//! This is the evidence that the three netlist transforms implement the
//! paper's techniques.

use seugrade::prelude::*;
use seugrade_emulation::gate_level::{run_mask_scan, run_state_scan, run_time_mux};

fn oracle(circuit: &Netlist, tb: &Testbench) -> Vec<FaultOutcome> {
    let grader = Grader::new(circuit, tb);
    let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
    grader.run_parallel(faults.as_slice())
}

#[test]
fn mask_scan_gate_level_matches_oracle() {
    for (name, cycles) in [("b01s", 20), ("b06s", 16), ("b02s", 24)] {
        let circuit = registry::build(name).expect("registered");
        let tb = Testbench::random(circuit.num_inputs(), cycles, 31);
        let oracle = oracle(&circuit, &tb);
        let hw = run_mask_scan(&circuit, &tb);
        for (k, (h, o)) in hw.iter().zip(&oracle).enumerate() {
            assert_eq!(*h, o.detect_cycle, "{name} fault #{k}");
        }
    }
}

#[test]
fn state_scan_gate_level_matches_oracle() {
    for (name, cycles) in [("b01s", 18), ("b06s", 14)] {
        let circuit = registry::build(name).expect("registered");
        let tb = Testbench::random(circuit.num_inputs(), cycles, 37);
        let oracle = oracle(&circuit, &tb);
        let hw = run_state_scan(&circuit, &tb);
        for (k, (h, o)) in hw.iter().zip(&oracle).enumerate() {
            assert!(h.agrees_with(o), "{name} fault #{k}: {h:?} vs {o:?}");
        }
    }
}

#[test]
fn time_mux_gate_level_matches_oracle_with_cycles() {
    for (name, cycles) in [("b01s", 18), ("b02s", 20), ("b06s", 14)] {
        let circuit = registry::build(name).expect("registered");
        let tb = Testbench::random(circuit.num_inputs(), cycles, 41);
        let oracle = oracle(&circuit, &tb);
        let hw = run_time_mux(&circuit, &tb);
        for (k, (h, o)) in hw.iter().zip(&oracle).enumerate() {
            assert!(h.agrees_with(o), "{name} fault #{k}: {h:?} vs {o:?}");
        }
    }
}

/// A mid-size control circuit (53 flip-flops) through the full
/// time-multiplexed hardware schedule.
#[test]
fn time_mux_gate_level_on_b13s() {
    let circuit = registry::build("b13s").expect("registered");
    let tb = Testbench::random(circuit.num_inputs(), 10, 43);
    let oracle = oracle(&circuit, &tb);
    let hw = run_time_mux(&circuit, &tb);
    let mut failures = 0;
    for (k, (h, o)) in hw.iter().zip(&oracle).enumerate() {
        assert!(h.agrees_with(o), "fault #{k}: {h:?} vs {o:?}");
        if o.class == FaultClass::Failure {
            failures += 1;
        }
    }
    assert!(failures > 0, "test bench should expose some failures");
}

/// Generated circuits keep the transforms honest beyond the hand-written
/// benchmarks.
#[test]
fn gate_level_on_generated_circuits() {
    use seugrade::generators::{random_sequential, RandomCircuitConfig};
    for seed in [1, 2, 3] {
        let cfg = RandomCircuitConfig {
            num_ffs: 8,
            num_gates: 50,
            num_outputs: 3,
            observability_num: 3,
            ..Default::default()
        };
        let circuit = random_sequential(&cfg, seed);
        let tb = Testbench::random(circuit.num_inputs(), 15, seed);
        let oracle = oracle(&circuit, &tb);
        let tm = run_time_mux(&circuit, &tb);
        let ss = run_state_scan(&circuit, &tb);
        let ms = run_mask_scan(&circuit, &tb);
        for (k, o) in oracle.iter().enumerate() {
            assert!(tm[k].agrees_with(o), "tm seed {seed} fault #{k}");
            assert!(ss[k].agrees_with(o), "ss seed {seed} fault #{k}");
            assert_eq!(ms[k], o.detect_cycle, "ms seed {seed} fault #{k}");
        }
    }
}
