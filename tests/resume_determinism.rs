//! Interruption/resume determinism: a campaign interrupted at any chunk
//! boundary and resumed from its checkpoint must land on the *same*
//! verdict digest and class counts as an uninterrupted run — at every
//! thread count and trace policy.
//!
//! The engine makes this possible with two invariants: completed chunks
//! are always an exact prefix of the cycle-major chunk queue (so a plain
//! cursor identifies the folded faults), and verdict sinks merge
//! commutatively (so the fold order across invocations cannot show).

use seugrade::prelude::*;

/// A unique temp path per (test, parameter) so parallel tests never
/// share checkpoint files.
fn ckpt_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("seugrade-resume-{tag}-{}.ckpt", std::process::id()))
}

fn fixture() -> (Netlist, Testbench) {
    let circuit = generators::lfsr(12, &[11, 9, 7, 4]);
    let tb = Testbench::random(circuit.num_inputs(), 40, 9);
    (circuit, tb)
}

fn plan<'a>(
    circuit: &'a Netlist,
    tb: &'a Testbench,
    threads: usize,
    policy: TracePolicy,
) -> CampaignPlan<'a> {
    CampaignPlan::builder(circuit, tb)
        .policy(ShardPolicy { threads, serial_below: 0 })
        .trace_policy(policy)
        .build()
}

/// Interrupt after `k` chunks (via the deterministic chunk limit), then
/// resume to completion; the combined run must equal the uninterrupted
/// reference bit for bit.
fn interrupted_run_matches(threads: usize, policy: TracePolicy, k: usize, tag: &str) {
    let (circuit, tb) = fixture();
    let reference = {
        let p = plan(&circuit, &tb, threads, policy);
        Engine::new(&p).run_streamed(&p)
    };

    let path = ckpt_path(tag);
    let p = plan(&circuit, &tb, threads, policy);
    let engine = Engine::new(&p);
    let mut first = ResumeOptions::checkpoint_to(&path);
    first.every = 2;
    first.limit = Some(k);
    let partial = engine.run_streamed_resumable(&p, &first).expect("first leg");
    assert_eq!(partial.chunks_done, k.min(partial.chunks_total), "limit honoured");
    assert_eq!(partial.interrupted, partial.chunks_done < partial.chunks_total);

    let mut second = ResumeOptions::resume_from(&path);
    second.every = 3;
    let resumed = engine.run_streamed_resumable(&p, &second).expect("second leg");
    std::fs::remove_file(&path).ok();

    assert!(resumed.is_complete(), "second leg finishes the campaign");
    assert_eq!(resumed.resumed_from, partial.chunks_done);
    assert_eq!(resumed.sink.digest(), reference.digest(), "digest must survive interruption");
    assert_eq!(resumed.sink.summary(), reference.summary());
    assert_eq!(resumed.sink.failure_map(), reference.failure_map());
}

#[test]
fn interrupted_before_any_chunk() {
    // k = 0: the first leg grades nothing but still writes a resumable
    // checkpoint.
    for threads in [1, 4] {
        interrupted_run_matches(threads, TracePolicy::Dense, 0, &format!("k0-t{threads}"));
    }
}

#[test]
fn interrupted_after_one_chunk() {
    for threads in [1, 2, 4, 8] {
        interrupted_run_matches(threads, TracePolicy::Dense, 1, &format!("k1-t{threads}"));
    }
}

#[test]
fn interrupted_mid_campaign() {
    let (circuit, tb) = fixture();
    let p = plan(&circuit, &tb, 1, TracePolicy::Dense);
    let total = Engine::new(&p)
        .run_streamed_resumable(&p, &ResumeOptions::default())
        .expect("counting run")
        .chunks_total;
    let mid = total / 2;
    assert!(mid > 0, "fixture must span several chunks");
    for threads in [1, 2, 4, 8] {
        interrupted_run_matches(threads, TracePolicy::Dense, mid, &format!("kmid-t{threads}"));
    }
}

#[test]
fn interrupted_at_last_chunk() {
    let (circuit, tb) = fixture();
    let p = plan(&circuit, &tb, 1, TracePolicy::Dense);
    let total = Engine::new(&p)
        .run_streamed_resumable(&p, &ResumeOptions::default())
        .expect("counting run")
        .chunks_total;
    for threads in [1, 4] {
        // k = total - 1: one chunk left; and k = total: the "interrupted"
        // leg already finished, resume is a no-op that must not re-grade.
        interrupted_run_matches(threads, TracePolicy::Dense, total - 1, &format!("klast-t{threads}"));
        interrupted_run_matches(threads, TracePolicy::Dense, total, &format!("kdone-t{threads}"));
    }
}

#[test]
fn checkpoint_trace_policy_resumes_identically() {
    let (circuit, tb) = fixture();
    let reference = {
        let p = plan(&circuit, &tb, 1, TracePolicy::Dense);
        Engine::new(&p).run_streamed(&p)
    };
    for threads in [1, 2, 4, 8] {
        let tag = format!("ckpt64-t{threads}");
        interrupted_run_matches(threads, TracePolicy::Checkpoint(64), 3, &tag);
        // Dense and Checkpoint(64) agree with each other too.
        let p = plan(&circuit, &tb, threads, TracePolicy::Checkpoint(64));
        let run = Engine::new(&p).run_streamed(&p);
        assert_eq!(run.digest(), reference.digest(), "trace policy must not change verdicts");
    }
}

#[test]
fn multi_leg_resume_chain_matches() {
    // Interrupt *repeatedly*: 2 chunks per leg until done, each leg a
    // fresh resume from the previous leg's checkpoint.
    let (circuit, tb) = fixture();
    let reference = {
        let p = plan(&circuit, &tb, 2, TracePolicy::Dense);
        Engine::new(&p).run_streamed(&p)
    };
    let path = ckpt_path("chain");
    let p = plan(&circuit, &tb, 2, TracePolicy::Dense);
    let engine = Engine::new(&p);

    let mut opts = ResumeOptions::checkpoint_to(&path);
    opts.every = 1;
    opts.limit = Some(2);
    let mut run = engine.run_streamed_resumable(&p, &opts).expect("leg 0");
    let mut legs = 1usize;
    while !run.is_complete() {
        let mut next = ResumeOptions::resume_from(&path);
        next.every = 1;
        next.limit = Some(2);
        run = engine.run_streamed_resumable(&p, &next).expect("resume leg");
        legs += 1;
        assert!(legs < 1000, "resume chain must terminate");
    }
    std::fs::remove_file(&path).ok();
    assert!(legs > 3, "fixture must need several legs, took {legs}");
    assert_eq!(run.sink.digest(), reference.digest());
    assert_eq!(run.sink.summary(), reference.summary());
}

#[test]
fn cancellation_drains_and_checkpoint_resumes() {
    // A cancel token tripped before the run starts: zero chunks complete,
    // the checkpoint is written, and a resume finishes the whole thing.
    let (circuit, tb) = fixture();
    let reference = {
        let p = plan(&circuit, &tb, 4, TracePolicy::Dense);
        Engine::new(&p).run_streamed(&p)
    };
    let path = ckpt_path("cancel");
    let p = plan(&circuit, &tb, 4, TracePolicy::Dense);
    let engine = Engine::new(&p);

    let token = CancelToken::new();
    token.cancel();
    let mut opts = ResumeOptions::checkpoint_to(&path);
    opts.cancel = Some(token);
    let stopped = engine.run_streamed_resumable(&p, &opts).expect("cancelled leg");
    assert!(stopped.interrupted);
    assert_eq!(stopped.chunks_done, 0);

    let resumed = engine
        .run_streamed_resumable(&p, &ResumeOptions::resume_from(&path))
        .expect("resume after cancel");
    std::fs::remove_file(&path).ok();
    assert!(resumed.is_complete());
    assert_eq!(resumed.sink.digest(), reference.digest());
}

#[test]
fn mismatched_checkpoint_is_rejected_per_field() {
    // A checkpoint from one campaign must not resume another: vary the
    // circuit, the bench and the trace policy; every mismatch must be a
    // structured error, never a panic or a silent wrong digest.
    let (circuit, tb) = fixture();
    let path = ckpt_path("mismatch");
    let p = plan(&circuit, &tb, 1, TracePolicy::Dense);
    let engine = Engine::new(&p);
    let mut opts = ResumeOptions::checkpoint_to(&path);
    opts.limit = Some(1);
    engine.run_streamed_resumable(&p, &opts).expect("seed checkpoint");

    // Different circuit, same dimensions.
    let other = generators::counter(12);
    let p2 = CampaignPlan::builder(&other, &tb)
        .policy(ShardPolicy { threads: 1, serial_below: 0 })
        .build();
    let err = Engine::new(&p2)
        .run_streamed_resumable(&p2, &ResumeOptions::resume_from(&path))
        .expect_err("foreign circuit must be rejected");
    assert!(matches!(err, EngineError::Resume(ResumeError::Mismatch { .. })), "{err}");

    // Different bench (the fixture has no inputs, so vary the length —
    // the stimuli digest itself is covered by the engine's unit tests).
    let tb2 = Testbench::random(circuit.num_inputs(), 44, 1234);
    let p3 = plan(&circuit, &tb2, 1, TracePolicy::Dense);
    let err = Engine::new(&p3)
        .run_streamed_resumable(&p3, &ResumeOptions::resume_from(&path))
        .expect_err("foreign bench must be rejected");
    assert!(matches!(err, EngineError::Resume(ResumeError::Mismatch { .. })), "{err}");

    // Different trace policy.
    let p4 = plan(&circuit, &tb, 1, TracePolicy::Checkpoint(8));
    let err = Engine::new(&p4)
        .run_streamed_resumable(&p4, &ResumeOptions::resume_from(&path))
        .expect_err("foreign trace policy must be rejected");
    assert!(matches!(err, EngineError::Resume(ResumeError::Mismatch { field: "trace policy", .. })), "{err}");

    std::fs::remove_file(&path).ok();
}

/// A sink that panics mid-chunk a configured number of times, then
/// behaves like the standard accumulator — the workload-level way to
/// inject worker panics into the streamed path.
mod panicky {
    use std::collections::HashSet;
    use std::sync::Mutex;

    use seugrade::prelude::*;

    /// What the sink injects: nothing, one panic per listed cycle (a
    /// fired cycle is removed so the pool's retry of that chunk
    /// succeeds), or a panic on every observe (budget exhaustion).
    #[derive(Debug, Default)]
    pub enum Injection {
        #[default]
        Off,
        Once(HashSet<u32>),
        Always,
    }

    pub static INJECTION: Mutex<Injection> = Mutex::new(Injection::Off);

    /// Serializes the tests that program [`PANIC_CYCLES`] — they run in
    /// one process and must not see each other's injections.
    pub static INJECTION_LOCK: Mutex<()> = Mutex::new(());

    #[derive(Clone, Debug, Default)]
    pub struct PanickySink(pub StreamAccumulator);

    impl VerdictSink for PanickySink {
        fn observe(&mut self, fault: Fault, outcome: FaultOutcome) {
            // Panic *after* folding some state, so containment must also
            // discard the chunk-local partial fold.
            self.0.observe(fault, outcome);
            let fire = {
                let mut mode = INJECTION.lock().unwrap_or_else(|e| e.into_inner());
                match &mut *mode {
                    Injection::Off => false,
                    Injection::Once(set) => set.remove(&fault.cycle),
                    Injection::Always => true,
                }
            };
            if fire {
                panic!("injected fault-grading panic");
            }
        }

        fn merge(&mut self, other: Self) {
            self.0.merge(other.0);
        }
    }

    impl PersistentSink for PanickySink {
        fn save_lines(&self, out: &mut Vec<String>) {
            self.0.save_lines(out);
        }

        fn restore_lines(lines: &[String], base_line: usize) -> Result<Self, ResumeError> {
            StreamAccumulator::restore_lines(lines, base_line).map(PanickySink)
        }
    }
}

#[test]
fn injected_worker_panics_are_retried_to_the_reference_digest() {
    use panicky::{Injection, PanickySink, INJECTION, INJECTION_LOCK};
    let _guard = INJECTION_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let (circuit, tb) = fixture();
    let reference = {
        let p = plan(&circuit, &tb, 4, TracePolicy::Dense);
        Engine::new(&p).run_streamed(&p)
    };
    let p = plan(&circuit, &tb, 4, TracePolicy::Dense);
    let engine = Engine::new(&p);
    // Chunks at cycles 3, 17 and 31 panic on their first attempt only:
    // each is requeued, retried on a rebuilt scratch, and succeeds
    // within the default retry budget — so the campaign completes.
    *INJECTION.lock().unwrap_or_else(|e| e.into_inner()) =
        Injection::Once([3u32, 17, 31].into_iter().collect());
    let run = engine
        .run_streamed_resumable_with::<PanickySink>(&p, &ResumeOptions::default())
        .expect("retries must absorb the injected panics");
    let mut mode = INJECTION.lock().unwrap_or_else(|e| e.into_inner());
    match std::mem::take(&mut *mode) {
        Injection::Once(leftover) => {
            assert!(leftover.is_empty(), "all injections fired, left {leftover:?}");
        }
        other => panic!("injection mode clobbered: {other:?}"),
    }
    drop(mode);
    assert!(run.is_complete());
    assert_eq!(run.sink.0.digest(), reference.digest(), "retried chunks must not double-fold");
    assert_eq!(run.sink.0.summary(), reference.summary());
}

#[test]
fn exhausted_retry_budget_is_a_structured_error() {
    use panicky::{Injection, PanickySink, INJECTION, INJECTION_LOCK};
    let _guard = INJECTION_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let (circuit, tb) = fixture();
    let p = plan(&circuit, &tb, 2, TracePolicy::Dense);
    let engine = Engine::new(&p);
    // Every observe panics: the first chunk burns through its whole
    // retry budget and must surface WorkerPanic instead of hanging or
    // aborting the process.
    *INJECTION.lock().unwrap_or_else(|e| e.into_inner()) = Injection::Always;
    let err = engine
        .run_streamed_resumable_with::<PanickySink>(&p, &ResumeOptions::default())
        .expect_err("budget exhaustion must surface");
    *INJECTION.lock().unwrap_or_else(|e| e.into_inner()) = Injection::Off;
    match err {
        EngineError::WorkerPanic { attempts, message, .. } => {
            assert!(attempts >= 1);
            assert!(message.contains("injected"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

#[test]
fn collapse_and_cache_settings_resume_across_each_other() {
    // Early collapse and the window cache are work optimisations outside
    // the resume fingerprint: a campaign interrupted under one
    // (collapse, cache, threads) configuration must resume under a
    // *different* one to the exact uninterrupted digest.
    let (circuit, tb) = fixture();
    let reference = {
        let p = plan(&circuit, &tb, 1, TracePolicy::Checkpoint(8));
        Engine::new(&p).run_streamed(&p)
    };
    let legs = [
        // (first collapse, first cache, resume collapse, resume cache)
        (Collapse::Early, DEFAULT_WINDOW_CACHE_SPANS, Collapse::Horizon, 0),
        (Collapse::Horizon, 0, Collapse::Early, 64),
        (Collapse::Early, 1, Collapse::Early, 0),
    ];
    for (i, (c1, w1, c2, w2)) in legs.into_iter().enumerate() {
        let path = ckpt_path(&format!("collapse-leg{i}"));
        let first_plan = CampaignPlan::builder(&circuit, &tb)
            .policy(ShardPolicy { threads: 2, serial_below: 0 })
            .trace_policy(TracePolicy::Checkpoint(8))
            .collapse(c1)
            .window_cache(w1)
            .build();
        let mut first = ResumeOptions::checkpoint_to(&path);
        first.every = 1;
        first.limit = Some(3);
        Engine::new(&first_plan)
            .run_streamed_resumable(&first_plan, &first)
            .expect("first leg");

        let second_plan = CampaignPlan::builder(&circuit, &tb)
            .policy(ShardPolicy { threads: 8, serial_below: 0 })
            .trace_policy(TracePolicy::Checkpoint(8))
            .collapse(c2)
            .window_cache(w2)
            .build();
        let resumed = Engine::new(&second_plan)
            .run_streamed_resumable(&second_plan, &ResumeOptions::resume_from(&path))
            .expect("resume leg under different collapse/cache settings");
        std::fs::remove_file(&path).ok();
        assert!(resumed.is_complete());
        assert_eq!(
            resumed.sink.digest(),
            reference.digest(),
            "leg {i}: {}+cache {w1} resumed as {}+cache {w2}",
            c1.label(),
            c2.label(),
        );
        assert_eq!(resumed.sink.summary(), reference.summary());
    }
}

#[test]
fn sampled_campaign_resumes_identically() {
    let (circuit, tb) = fixture();
    let build = |threads| {
        CampaignPlan::builder(&circuit, &tb)
            .sampled(200, 7)
            .policy(ShardPolicy { threads, serial_below: 0 })
            .build()
    };
    let reference = {
        let p = build(1);
        Engine::new(&p).run_streamed(&p)
    };
    for threads in [1, 4] {
        let path = ckpt_path(&format!("sampled-t{threads}"));
        let p = build(threads);
        let engine = Engine::new(&p);
        let mut opts = ResumeOptions::checkpoint_to(&path);
        opts.every = 2;
        opts.limit = Some(3);
        engine.run_streamed_resumable(&p, &opts).expect("sampled first leg");
        let resumed = engine
            .run_streamed_resumable(&p, &ResumeOptions::resume_from(&path))
            .expect("sampled resume");
        std::fs::remove_file(&path).ok();
        assert!(resumed.is_complete());
        assert_eq!(resumed.sink.digest(), reference.digest());
        assert_eq!(resumed.sink.summary(), reference.summary());
    }
}
