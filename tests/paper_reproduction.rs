//! End-to-end checks that the reproduction tracks the paper's published
//! results in *shape*: interface dimensions exactly, orderings exactly,
//! magnitudes within bands.

use seugrade::experiments::{classification_for, figure1, table1_for, table2_for};
use seugrade::paper;
use seugrade::prelude::*;

fn paper_campaign() -> AutonomousCampaign {
    AutonomousCampaign::new(&viper::viper(), &stimuli::paper_testbench())
}

#[test]
fn b14_interface_is_exact() {
    let v = viper::viper();
    assert_eq!(v.num_inputs(), paper::B14_INPUTS);
    assert_eq!(v.num_outputs(), paper::B14_OUTPUTS);
    assert_eq!(v.num_ffs(), paper::B14_FFS);
    assert_eq!(
        v.num_ffs() * paper::B14_CYCLES,
        paper::B14_FAULTS,
        "34,400 single faults"
    );
}

#[test]
fn classification_tracks_paper_regime() {
    let campaign = paper_campaign();
    let c = classification_for(&campaign);
    let (pf, pl, ps) = paper::CLASSIFICATION_PCT;
    assert!(
        (c.percent(FaultClass::Failure) - pf).abs() < 8.0,
        "failure {:.1} vs paper {pf}",
        c.percent(FaultClass::Failure)
    );
    assert!(
        (c.percent(FaultClass::Latent) - pl).abs() < 8.0,
        "latent {:.1} vs paper {pl}",
        c.percent(FaultClass::Latent)
    );
    assert!(
        (c.percent(FaultClass::Silent) - ps).abs() < 8.0,
        "silent {:.1} vs paper {ps}",
        c.percent(FaultClass::Silent)
    );
}

#[test]
fn table2_ordering_and_magnitudes() {
    let campaign = paper_campaign();
    let t2 = table2_for(&campaign);
    let mask = t2.row(Technique::MaskScan);
    let state = t2.row(Technique::StateScan);
    let tmux = t2.row(Technique::TimeMux);
    // Paper ordering on b14: time-mux < mask-scan < state-scan.
    assert!(tmux.us_per_fault < mask.us_per_fault);
    assert!(mask.us_per_fault < state.us_per_fault);
    // Within 3x of the published numbers.
    for (measured, published) in [
        (mask.us_per_fault, 4.1),
        (state.us_per_fault, 11.2),
        (tmux.us_per_fault, 0.58),
    ] {
        let ratio = measured / published;
        assert!(
            (0.33..3.0).contains(&ratio),
            "measured {measured:.2} vs paper {published} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn table1_overheads_track_paper() {
    let t1 = table1_for(&viper::viper(), &stimuli::paper_testbench());
    let original = &t1.rows[0];
    let mask = &t1.rows[1];
    let state = &t1.rows[2];
    let tmux = &t1.rows[3];

    // Flip-flop overheads are structural and exact: 2x, 2x, 4x.
    assert_eq!(original.ffs, 215);
    assert_eq!(mask.ffs, 430);
    assert_eq!(state.ffs, 430);
    assert_eq!(tmux.ffs, 860);

    // Original LUT count within 25 % of Leonardo Spectrum's 1,172.
    let ratio = original.luts as f64 / 1_172.0;
    assert!((0.75..1.25).contains(&ratio), "viper maps to {} LUTs", original.luts);

    // LUT overhead ordering: time-mux is by far the heaviest.
    assert!(tmux.lut_overhead_pct.unwrap() > 2.0 * mask.lut_overhead_pct.unwrap());
    // Scan techniques sit in the paper's ~40-70 % band.
    for row in [mask, state] {
        let ovh = row.lut_overhead_pct.unwrap();
        assert!((20.0..90.0).contains(&ovh), "{}: {ovh:.0}%", row.name);
    }

    // RAM columns reproduce the paper's numbers almost exactly.
    assert!((mask.fpga_kbits.unwrap() - 13.4).abs() < 0.2);
    assert!((mask.board_kbits.unwrap() - 33.0).abs() < 1.0);
    let state_ratio = state.board_kbits.unwrap() / 7_289.0;
    assert!((0.95..1.05).contains(&state_ratio), "{}", state.board_kbits.unwrap());
    assert!((tmux.board_kbits.unwrap() - 67.0).abs() < 1.0);
    assert!((tmux.fpga_kbits.unwrap() - 5.1).abs() < 0.5);
}

#[test]
fn figure1_instrument_structure() {
    let f = figure1();
    assert_eq!(f.dffs, 4, "golden + faulty + mask + state");
    assert_eq!(f.xors, 2, "inject flip + comparator");
    assert!(f.muxes >= 5, "selection and enable muxes");
}

#[test]
fn autonomous_systems_beat_2005_baselines() {
    let campaign = paper_campaign();
    for technique in Technique::ALL {
        let report = campaign.run(technique);
        assert!(
            report.timing.us_per_fault() < paper::HOST_EMULATION_US_PER_FAULT,
            "{technique} {:.2} us/fault",
            report.timing.us_per_fault()
        );
        assert!(
            report.timing.us_per_fault() < paper::FAULT_SIM_US_PER_FAULT / 100.0,
            "orders of magnitude vs simulation"
        );
    }
}

#[test]
fn all_techniques_grade_identically() {
    // The summary is shared; the mask-scan failure *set* equals the
    // oracle failure set by construction of the campaign, but verify the
    // counts flow through every report identically.
    let campaign = paper_campaign();
    let summaries: Vec<GradingSummary> = Technique::ALL
        .iter()
        .map(|&t| campaign.run(t).summary)
        .collect();
    assert_eq!(summaries[0], summaries[1]);
    assert_eq!(summaries[1], summaries[2]);
}
