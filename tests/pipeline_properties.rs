//! Property-based tests over generated circuits: the invariants that the
//! whole pipeline must satisfy regardless of circuit shape.

use proptest::prelude::*;
use seugrade::generators::{random_sequential, RandomCircuitConfig};
use seugrade::prelude::*;

fn arb_config() -> impl Strategy<Value = RandomCircuitConfig> {
    (2usize..6, 2usize..14, 10usize..80, 1usize..5, 0u32..9).prop_map(
        |(num_inputs, num_ffs, num_gates, num_outputs, observability_num)| RandomCircuitConfig {
            num_inputs,
            num_ffs,
            num_gates,
            num_outputs,
            observability_num,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial and bit-parallel engines agree on arbitrary circuits.
    #[test]
    fn engines_agree(config in arb_config(), seed in 0u64..1000, tb_seed in 0u64..1000) {
        let circuit = random_sequential(&config, seed);
        let cycles = 18usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, tb_seed);
        let grader = Grader::new(&circuit, &tb);
        let faults = FaultList::exhaustive(circuit.num_ffs(), cycles);
        let serial = grader.run_serial(faults.as_slice());
        let parallel = grader.run_parallel(faults.as_slice());
        prop_assert_eq!(serial, parallel);
    }

    /// Outcome invariants: detection/convergence never precede injection,
    /// never exceed the bench, and carry the right class.
    #[test]
    fn outcome_invariants(config in arb_config(), seed in 0u64..1000) {
        let circuit = random_sequential(&config, seed);
        let cycles = 20usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, seed ^ 0xABCD);
        let grader = Grader::new(&circuit, &tb);
        let faults = FaultList::exhaustive(circuit.num_ffs(), cycles);
        for (fault, outcome) in faults.iter().zip(grader.run_parallel(faults.as_slice())) {
            match outcome.class {
                FaultClass::Failure => {
                    let u = outcome.detect_cycle.expect("failure has detect cycle");
                    prop_assert!(u >= fault.cycle);
                    prop_assert!((u as usize) < cycles);
                    prop_assert!(outcome.converge_cycle.is_none());
                }
                FaultClass::Silent => {
                    let u = outcome.converge_cycle.expect("silent has converge cycle");
                    prop_assert!(u >= fault.cycle);
                    prop_assert!((u as usize) < cycles);
                    prop_assert!(outcome.detect_cycle.is_none());
                }
                FaultClass::Latent => {
                    prop_assert!(outcome.detect_cycle.is_none());
                    prop_assert!(outcome.converge_cycle.is_none());
                }
            }
        }
    }

    /// Campaign timing lower bounds: every technique pays at least its
    /// structural cost per fault.
    #[test]
    fn timing_lower_bounds(config in arb_config(), seed in 0u64..1000) {
        let circuit = random_sequential(&config, seed);
        let cycles = 16usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, seed ^ 0x1234);
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        let n_faults = campaign.faults().len() as u64;

        let mask = campaign.run(Technique::MaskScan).timing;
        // Mask-scan replays at least (injection cycle + 1) per fault.
        let min_mask: u64 = campaign
            .faults()
            .iter()
            .map(|f| u64::from(f.cycle) + 1)
            .sum();
        prop_assert!(mask.run_cycles >= min_mask);

        let state = campaign.run(Technique::StateScan).timing;
        prop_assert!(state.scan_cycles == n_faults * circuit.num_ffs() as u64);

        let tmux = campaign.run(Technique::TimeMux).timing;
        // Two emulation clocks per emulated bench cycle, at least one
        // cycle emulated per fault.
        prop_assert!(tmux.run_cycles >= 2 * n_faults);
        prop_assert!(tmux.inject_cycles == n_faults);
    }

    /// TMR makes every single fault non-failing on arbitrary circuits.
    #[test]
    fn tmr_always_eliminates_failures(config in arb_config(), seed in 0u64..500) {
        let circuit = random_sequential(&config, seed);
        let cycles = 12usize;
        let tb = Testbench::random(circuit.num_inputs(), cycles, seed ^ 0x77);
        let hardened = tmr(&circuit);
        let grader = Grader::new(&hardened, &tb);
        let faults = FaultList::exhaustive(hardened.num_ffs(), cycles);
        let outcomes = grader.run_parallel(faults.as_slice());
        let summary = GradingSummary::from_outcomes(&outcomes);
        prop_assert_eq!(summary.count(FaultClass::Failure), 0);
        // And the fault heals: no latents either (voters resynchronize).
        prop_assert_eq!(summary.count(FaultClass::Latent), 0);
    }

    /// SNL text round-trips preserve netlist structure on arbitrary
    /// circuits.
    #[test]
    fn snl_roundtrip(config in arb_config(), seed in 0u64..1000) {
        let circuit = random_sequential(&config, seed);
        let text = seugrade_netlist::text::emit(&circuit);
        let back = seugrade_netlist::text::parse(&text).expect("parses");
        prop_assert_eq!(back.num_cells(), circuit.num_cells());
        prop_assert_eq!(back.num_ffs(), circuit.num_ffs());
        prop_assert_eq!(back.ff_init_values(), circuit.ff_init_values());
        // Functional equivalence on a short random bench.
        let tb = Testbench::random(circuit.num_inputs(), 10, seed);
        let a = CompiledSim::new(&circuit).run_golden(&tb);
        let b = CompiledSim::new(&back).run_golden(&tb);
        prop_assert_eq!(a, b);
    }

    /// LUT mapping is sound: every mapped netlist has enough LUTs to
    /// cover its outputs and respects the input bound.
    #[test]
    fn lut_mapping_bounds(config in arb_config(), seed in 0u64..1000) {
        let circuit = random_sequential(&config, seed);
        let cfg = MapperConfig::virtex_e();
        let mapping = map_luts(&circuit, &cfg);
        for lut in mapping.luts() {
            prop_assert!(lut.num_inputs() <= cfg.lut_inputs);
            prop_assert!(lut.num_inputs() >= 1);
        }
        // A LUT network can never be larger than the 2-input gate count
        // after decomposition, nor smaller than literals/k.
        prop_assert!(mapping.num_luts() <= circuit.num_gates().max(1) * 2);
    }
}
