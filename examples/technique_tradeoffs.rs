//! Explore the paper's central trade-off: which autonomous technique
//! wins as a function of test-bench length vs flip-flop count (§III's
//! crossover observation), including the hardware price of each.
//!
//! ```text
//! cargo run --release --example technique_tradeoffs
//! ```

use seugrade::experiments::crossover_for;
use seugrade::prelude::*;
use seugrade::instrument::{mask_scan, state_scan, time_mux};

fn main() {
    // A mid-size circuit with buried state so all three classes occur.
    let circuit = registry::build("b09s").expect("registered circuit");
    println!(
        "{} — {} flip-flops\n",
        circuit.name(),
        circuit.num_ffs()
    );

    // Time: sweep the bench length past the flip-flop count.
    let sweep = crossover_for(&circuit, &[8, 16, 32, 64, 128, 256], 21);
    println!("{}", sweep.render());

    // Hardware: instrument once, map each variant.
    let cfg = MapperConfig::virtex_e();
    let base = map_luts(&circuit, &cfg);
    println!("hardware cost (4-input LUTs):");
    println!(
        "  {:<12} {:>5} LUTs  {:>4} FFs",
        "original",
        base.num_luts(),
        circuit.num_ffs()
    );
    let variants = [
        ("mask-scan", mask_scan::instrument(&circuit)),
        ("state-scan", state_scan::instrument(&circuit)),
        ("time-mux", time_mux::instrument(&circuit)),
    ];
    for (name, inst) in &variants {
        let m = map_luts(inst.netlist(), &cfg);
        println!(
            "  {:<12} {:>5} LUTs  {:>4} FFs",
            name,
            m.num_luts(),
            inst.netlist().num_ffs()
        );
    }

    println!(
        "\npaper's rule of thumb: time-mux always wins on time; between the\n\
         scan techniques, state-scan wins once bench cycles exceed the\n\
         flip-flop count — at the cost of {}x flip-flops and bulk state RAM.",
        2
    );
}
