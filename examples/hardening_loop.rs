//! The full design-hardening loop the paper's introduction motivates:
//! grade a circuit, find its weak flip-flops, apply TMR, and show the
//! failure rate collapse — then price the protection in LUTs/FFs.
//!
//! ```text
//! cargo run --release --example hardening_loop
//! ```

use seugrade::prelude::*;

fn grade(circuit: &Netlist, tb: &Testbench) -> (GradingSummary, Vec<FaultOutcome>) {
    let grader = Grader::new(circuit, tb);
    let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
    let outcomes = grader.run_parallel(faults.as_slice());
    (GradingSummary::from_outcomes(&outcomes), outcomes)
}

fn main() {
    let circuit = registry::build("b13s").expect("registered circuit");
    let tb = Testbench::random(circuit.num_inputs(), 160, 11);

    // 1. Baseline grading.
    let (summary, outcomes) = grade(&circuit, &tb);
    println!("unhardened {}: {summary}", circuit.name());

    // 2. Weak-area map: failures per flip-flop.
    let grader = Grader::new(&circuit, &tb);
    let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
    let map = grader.failure_map(faults.as_slice(), &outcomes);
    let mut ranked: Vec<(usize, usize)> = map.iter().copied().enumerate().collect();
    ranked.sort_by_key(|&(_, fails)| std::cmp::Reverse(fails));
    println!("\nmost vulnerable flip-flops:");
    for &(ff, fails) in ranked.iter().take(5) {
        let sig = circuit.ff_signal(FfIndex::new(ff));
        println!(
            "  {:<12} {fails:>4} failing faults",
            circuit.signal_label(sig)
        );
    }

    // 3. Harden with TMR and regrade.
    let hardened = tmr(&circuit);
    let (h_summary, _) = grade(&hardened, &tb);
    println!(
        "\nTMR-hardened {}: {h_summary}",
        hardened.name()
    );
    assert_eq!(h_summary.count(FaultClass::Failure), 0, "TMR corrects all single SEUs");

    // 4. Detection-only alternative: duplication with comparison.
    let detected = dwc(&circuit);
    let (d_summary, _) = grade(&detected, &tb);
    println!("DWC-protected {}: {d_summary}", detected.name());
    println!("  (DWC failures are *detected* corruptions: the alarm output fires)");

    // 5. Price the protection.
    let cfg = MapperConfig::virtex_e();
    for n in [&circuit, &hardened, &detected] {
        let m = map_luts(n, &cfg);
        println!(
            "  {:<12} {:>5} LUTs  {:>4} FFs",
            n.name(),
            m.num_luts(),
            n.num_ffs()
        );
    }
}
