//! Import an external benchmark netlist and grade it — the programmatic
//! twin of `repro -- grade fixtures/s27.bench`.
//!
//! ```text
//! cargo run --release --example import_netlist
//! ```
//!
//! Shows the full ingestion path: parse ISCAS `.bench` text, inspect the
//! import stats, prove the bundled BLIF twin equivalent, then run the
//! exhaustive SEU campaign through the sharded engine at two thread
//! counts and watch the verdicts agree bit for bit.

use seugrade::prelude::*;

fn main() {
    // The bundled fixture sources are embedded in `seugrade-circuits`;
    // on disk the same files live under `fixtures/` (see
    // docs/FORMATS.md for the grammars).
    let imported = import::import_str(fixtures::S27_BENCH, SourceFormat::Bench)
        .expect("bundled fixture parses");
    println!("{}", imported.stats);
    let circuit = imported.netlist.renamed("s27");
    println!("{circuit}");

    // The BLIF twin of the same circuit is sim-equivalent.
    let twin = import::import_str(fixtures::S27_BLIF, SourceFormat::Blif)
        .expect("bundled fixture parses")
        .netlist;
    equiv_check(&circuit, &twin, 64, 16).expect(".bench and BLIF twins agree");
    println!("s27.bench == s27.blif under 16 random benches\n");

    // Grade the exhaustive fault space: every flip-flop × every cycle.
    let tb = Testbench::random(circuit.num_inputs(), 100, 42);
    let mut last: Option<GradingSummary> = None;
    for threads in [1, 4] {
        let plan = CampaignPlan::builder(&circuit, &tb)
            .policy(ShardPolicy::with_threads(threads))
            .build();
        let run = plan.execute();
        println!("{} threads: {}", threads, run.summary());
        if let Some(prev) = &last {
            assert_eq!(prev, run.summary(), "engine determinism");
        }
        last = Some(run.summary().clone());
    }
    println!("\nper-class counts identical at 1 and 4 threads, as guaranteed");
}
