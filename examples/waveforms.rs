//! Dump a golden run and a faulty run of a circuit as VCD waveforms for
//! inspection in GTKWave or any VCD viewer.
//!
//! ```text
//! cargo run --release --example waveforms
//! # -> target/golden.vcd, target/faulty.vcd
//! ```

use std::fs;

use seugrade::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = registry::build("b06s").expect("registered circuit");
    let tb = Testbench::random(circuit.num_inputs(), 64, 3);

    // Golden waveform.
    let vcd = seugrade_sim::vcd::dump_golden(&circuit, &tb);
    fs::create_dir_all("target")?;
    fs::write("target/golden.vcd", &vcd)?;
    println!(
        "wrote target/golden.vcd ({} bytes, {} signals)",
        vcd.len(),
        circuit.num_inputs() + circuit.num_outputs() + circuit.num_ffs()
    );

    // Pick an interesting fault (first failure) and print its story.
    let grader = Grader::new(&circuit, &tb);
    let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
    let outcomes = grader.run_parallel(faults.as_slice());
    if let Some((fault, outcome)) = faults
        .iter()
        .zip(&outcomes)
        .find(|(_, o)| o.class == FaultClass::Failure)
    {
        println!(
            "first failing fault: {fault} -> detected at cycle {}",
            outcome.detect_cycle.expect("failure has a detection cycle")
        );
        // Faulty waveform: golden + faulty + per-output diff scopes.
        let vcd = seugrade_sim::vcd::dump_fault(&circuit, &tb, fault.ff, fault.cycle as usize);
        fs::write("target/faulty.vcd", &vcd)?;
        println!("wrote target/faulty.vcd ({} bytes)", vcd.len());
    }
    let silent = outcomes
        .iter()
        .filter(|o| o.class == FaultClass::Silent)
        .count();
    println!(
        "{silent}/{} faults are silent — their effect vanished before any output saw it",
        outcomes.len()
    );
    Ok(())
}
