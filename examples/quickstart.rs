//! Quickstart: grade a small circuit with all three autonomous
//! techniques.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use seugrade::prelude::*;

fn main() {
    // 1. A circuit under test: a 16-bit LFSR from the generator library.
    //    (Any `Netlist` works — build your own with `NetlistBuilder` or
    //    `RtlBuilder`, or parse the SNL text format.)
    let circuit = registry::build("lfsr16").expect("registered circuit");
    println!("circuit: {circuit}");

    // 2. A test bench: the LFSR free-runs, so 200 empty input vectors.
    let tb = Testbench::constant_low(circuit.num_inputs(), 200);

    // 3. Grade the exhaustive SEU fault list (every flip-flop x every
    //    cycle) once; the campaign is shared by all technique reports.
    let campaign = AutonomousCampaign::new(&circuit, &tb);
    println!(
        "graded {} faults: {}\n",
        campaign.faults().len(),
        campaign.summary()
    );

    // 4. Compare the three DATE'05 techniques on time and memory.
    for technique in Technique::ALL {
        let report = campaign.run(technique);
        println!("{report}");
        println!(
            "    cycles/fault {:.1}, RAM {:.1} kbit board / {:.1} kbit FPGA",
            report.timing.cycles_per_fault(),
            report.ram.board_kbits(),
            report.ram.fpga_kbits(),
        );
    }
}
