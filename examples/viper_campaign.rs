//! The paper's full experiment: the Viper (b14-like) processor, 160
//! instruction vectors, all 34,400 single faults — graded through the
//! sharded `seugrade-engine` runtime, then reproducing Table 2 and the
//! classification split of §III.
//!
//! ```text
//! cargo run --release --example viper_campaign
//! ```

use seugrade::experiments::{classification_for, table2_for};
use seugrade::prelude::*;

fn main() {
    let circuit = viper::viper();
    println!(
        "circuit: {} ({} inputs, {} outputs, {} flip-flops — matching ITC'99 b14)",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_ffs()
    );

    let tb = stimuli::paper_testbench();
    println!(
        "test bench: {} weighted Viper instructions (seed {})\n",
        tb.num_cycles(),
        stimuli::PAPER_SEED
    );

    // Grade the exhaustive fault list once with the sharded engine; the
    // verdicts are bit-identical to the serial oracle at any thread count.
    let plan = CampaignPlan::builder(&circuit, &tb)
        .policy(ShardPolicy::auto())
        .build();
    let counter = ProgressCounter::new();
    let run = Engine::new(&plan).run_with_progress(&plan, |e| counter.observe(&e));
    println!(
        "engine: {} ({} faults observed via progress events)\n",
        run.stats(),
        counter.faults_done()
    );

    // Hand the graded outcomes to the emulation models without re-grading.
    let (faults, outcomes) = run.into_single().expect("exhaustive plan");
    let campaign =
        AutonomousCampaign::from_graded(&circuit, &tb, faults, outcomes, TimingConfig::default());

    println!("{}", classification_for(&campaign).render());
    println!("{}", table2_for(&campaign).render());

    // The headline claim: per-fault time vs the 2005 baselines.
    let tmux = campaign.run(Technique::TimeMux);
    println!(
        "time-multiplexed: {:.2} us/fault vs 1300 us/fault fault simulation\n\
         => {:.0}x faster (paper reports ~2000x against its own baseline)",
        tmux.timing.us_per_fault(),
        1300.0 / tmux.timing.us_per_fault()
    );
}
