//! The paper's full experiment: the Viper (b14-like) processor, 160
//! instruction vectors, all 34,400 single faults — reproducing Table 2
//! and the classification split of §III.
//!
//! ```text
//! cargo run --release --example viper_campaign
//! ```

use seugrade::experiments::{classification_for, table2_for};
use seugrade::prelude::*;

fn main() {
    let circuit = viper::viper();
    println!(
        "circuit: {} ({} inputs, {} outputs, {} flip-flops — matching ITC'99 b14)",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_ffs()
    );

    let tb = stimuli::paper_testbench();
    println!(
        "test bench: {} weighted Viper instructions (seed {})\n",
        tb.num_cycles(),
        stimuli::PAPER_SEED
    );

    let campaign = AutonomousCampaign::new(&circuit, &tb);

    println!("{}", classification_for(&campaign).render());
    println!("{}", table2_for(&campaign).render());

    // The headline claim: per-fault time vs the 2005 baselines.
    let tmux = campaign.run(Technique::TimeMux);
    println!(
        "time-multiplexed: {:.2} us/fault vs 1300 us/fault fault simulation\n\
         => {:.0}x faster (paper reports ~2000x against its own baseline)",
        tmux.timing.us_per_fault(),
        1300.0 / tmux.timing.us_per_fault()
    );
}
