//! Build your own circuit with the RTL DSL and push it through the
//! grading pipeline: a 16-bit accumulating checksum unit.
//!
//! ```text
//! cargo run --release --example custom_circuit
//! ```

use seugrade::prelude::*;

/// A small bus-checksum peripheral: accumulates XOR-rotated data words,
/// exposes the running checksum, and flags a magic match.
fn checksum_unit() -> Netlist {
    let mut r = RtlBuilder::new("checksum16");
    let data = r.input_word("data", 16);
    let enable = r.input_bit("enable");

    let acc = r.register("acc", 16, 0xFFFF);
    // next = rotate_left(acc, 1) ^ data
    let rot = {
        let q = acc.q();
        let mut bits = vec![q.msb()];
        bits.extend_from_slice(&q.bits()[..15]);
        Word::from_bits(bits)
    };
    let next = r.xor(&rot, &data);
    r.connect_enabled(&acc, enable, &next);

    let magic = r.eq_const(&acc.q(), 0xBEEF);
    let magic_r = r.register_bit("magic_seen", false);
    let set = r.bit_builder().or2(magic, magic_r.q().bit(0));
    r.connect(&magic_r, &Word::from(set));

    r.output_word("checksum", &acc.q());
    r.output_bit("magic", magic_r.q().bit(0));
    r.finish().expect("checksum unit elaborates")
}

fn main() {
    let circuit = checksum_unit();
    println!("{circuit}");
    println!("{}", circuit.stats());

    // Map it to 4-input LUTs (the paper's Virtex-E target).
    let mapping = map_luts(&circuit, &MapperConfig::virtex_e());
    println!(
        "technology mapping: {} LUTs, depth {}\n",
        mapping.num_luts(),
        mapping.depth()
    );

    // Grade it: 17 flip-flops x 120 cycles.
    let tb = Testbench::random(circuit.num_inputs(), 120, 7);
    let campaign = AutonomousCampaign::new(&circuit, &tb);
    println!("{}", campaign.summary());
    for technique in Technique::ALL {
        let report = campaign.run(technique);
        println!(
            "  {:<16} {:>8.2} us/fault",
            report.technique.label(),
            report.timing.us_per_fault()
        );
    }

    // Export the netlist for inspection.
    let snl = seugrade_netlist::text::emit(&circuit);
    println!("\nSNL netlist ({} lines) — first 5:", snl.lines().count());
    for line in snl.lines().take(5) {
        println!("  {line}");
    }
}
