//! Offline stand-in for the [proptest](https://docs.rs/proptest) crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of proptest's API used by the workspace's property tests:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` and
//! `prop_flat_map`, integer-range and tuple strategies,
//! [`Just`](strategy::Just), [`any`](arbitrary::any) and
//! [`collection::vec`].
//!
//! Semantics: each property runs `ProptestConfig::cases` times with a
//! **deterministic** SplitMix64 stream derived from the case index, so
//! every run (local or CI) explores the same inputs and failures are
//! always reproducible. There is no shrinking — the first failing case
//! panics with the ordinary assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic pseudo-random source feeding the strategies.
pub mod rng {
    /// SplitMix64: tiny, fast, and good enough to drive test generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream that depends only on `seed` (we use the case index).
        #[must_use]
        pub fn deterministic(seed: u64) -> Self {
            // Offset by a fixed golden-ratio constant so seed 0 is not a
            // degenerate all-zeros stream.
            Self {
                state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x1234_5678_9abc_def0,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "empty range handed to TestRng::below");
            self.next_u64() % bound
        }
    }
}

/// The `Strategy` trait and its combinators.
pub mod strategy {
    use crate::rng::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking:
    /// a strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a follow-up strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (compatibility shim).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.inner.new_value(rng);
            (self.f)(intermediate).new_value(rng)
        }
    }

    /// Reference-counted type-erased strategy (compatibility shim).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.new_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // i128 holds every i64/u64 value, so the span is exact
                    // even for cross-zero signed ranges; two's-complement
                    // wrapping_add maps the offset back into the range.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi as i128 - lo as i128 + 1;
                    if span > u64::MAX as i128 {
                        // Full-width range (e.g. 0..=u64::MAX): every bit
                        // pattern is valid, no modulo needed.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// `any::<T>()` and the `Arbitrary` trait.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`, like `proptest::arbitrary::any`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Uniform strategy over every value of a primitive type.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(core::marker::PhantomData)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// An inclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<E::Value>` with a length drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and whose length is
    /// drawn from `size` — mirrors `proptest::collection::vec`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runner configuration and the RNG re-export used by the macros.
pub mod test_runner {
    pub use crate::rng::TestRng;

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many cases each property is exercised with.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes
/// an ordinary `#[test]` run for `ProptestConfig::cases` deterministic
/// cases. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::deterministic(case);
                $(let $arg = ($strategy).new_value(&mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod range_strategy_tests {
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    #[test]
    fn cross_zero_signed_ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(0);
        for _ in 0..1000 {
            let v = (-10i32..10).new_value(&mut rng);
            assert!((-10..10).contains(&v));
            let v = (i64::MIN..i64::MAX).new_value(&mut rng);
            assert!(v < i64::MAX);
            let v = (-5i8..=5).new_value(&mut rng);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_panic() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1000 {
            let _ = (0u64..=u64::MAX).new_value(&mut rng);
            let _ = (i64::MIN..=i64::MAX).new_value(&mut rng);
            let _ = (u8::MIN..=u8::MAX).new_value(&mut rng);
        }
    }
}
