//! Offline stand-in for the [criterion](https://docs.rs/criterion) crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of criterion's API used by the `seugrade-bench` benches:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`] and [`Throughput`].
//!
//! It is a *real* (if statistically naive) harness: every
//! `bench_function` runs a short warm-up, then a fixed measurement loop,
//! and prints the mean wall-clock time per iteration (plus throughput
//! when configured). There is no outlier analysis, no HTML report and no
//! CLI filtering. Swap in the genuine crate by editing
//! `[workspace.dependencies]` in the root `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after warm-up).
const DEFAULT_SAMPLES: usize = 12;
/// Warm-up iterations before measurement starts.
const WARMUP_ITERS: usize = 3;
/// Soft wall-clock budget per benchmark; measurement stops early once
/// exceeded so expensive benches stay tractable.
const TIME_BUDGET: Duration = Duration::from_millis(1500);

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().label, None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work one iteration represents.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stand-in uses a fixed loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().label, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Per-benchmark measurement handle passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, criterion-style: warm-up, then a bounded measurement
    /// loop. The return value of `f` is passed through [`black_box`].
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < DEFAULT_SAMPLES as u64 {
            black_box(f());
            iters += 1;
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Identifies one benchmark, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `name` with parameter `param` (`name/param`).
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{param}", name.into()),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// How much work one iteration performs, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many abstract elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

fn run_one<F>(group: &str, label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let full = if group.is_empty() {
        label.to_owned()
    } else {
        format!("{group}/{label}")
    };
    if b.iters == 0 {
        println!("{full:<44} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let mut line = format!("{full:<44} {:>12.3} ns/iter", per_iter * 1e9);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            line.push_str(&format!("  ({:.3} Melem/s)", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter;
            line.push_str(&format!("  ({:.3} MiB/s)", rate / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

/// Builds a benchmark-group function from a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Builds the `main` function running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
