//! `seugrade-repro` — root package of the seugrade workspace.
//!
//! This crate exists to host the workspace-wide integration tests
//! (`tests/`) and the runnable examples (`examples/`); the actual library
//! lives in the [`seugrade`] facade crate and the `seugrade-*` member
//! crates. It re-exports the facade so examples can use one import path.
//!
//! # Examples
//!
//! Run any of these with `cargo run --release --example <name>`:
//!
//! - `quickstart` — grade a small circuit with all three autonomous
//!   techniques;
//! - `viper_campaign` — the paper's full experiment (Viper, 160 vectors,
//!   34,400 faults);
//! - `technique_tradeoffs` — the §III crossover between mask-scan,
//!   state-scan and time-mux;
//! - `custom_circuit` — build a circuit with the RTL DSL and grade it;
//! - `hardening_loop` — grade, apply TMR to weak flip-flops, re-grade;
//! - `waveforms` — dump golden vs faulty VCD traces.
#![warn(missing_docs)]

pub use seugrade::*;
