//! `seugrade-repro` — root package of the seugrade workspace.
//!
//! This crate exists to host the workspace-wide integration tests
//! (`tests/`) and the runnable examples (`examples/`); the actual library
//! lives in the [`seugrade`] facade crate and the `seugrade-*` member
//! crates. It re-exports the facade so examples can use one import path.

pub use seugrade::*;
