//! Fixture-backed benchmark circuits, parsed from the bundled netlist
//! files under the repository's `fixtures/` directory.
//!
//! The sources are embedded at compile time (`include_str!`), so these
//! builders work regardless of the process working directory, and the
//! fixture files cannot drift from the circuits the test suites grade:
//! every function here is also a [`registry`](crate::registry) entry,
//! which puts the fixtures through the workspace's engine-agreement and
//! gate-level-conformance suites.
//!
//! Formats and provenance are documented in `fixtures/README.md` and
//! `docs/FORMATS.md`.

use seugrade_netlist::import::{import_str, SourceFormat};
use seugrade_netlist::Netlist;

/// The ISCAS'89 s27 netlist, `.bench` source.
pub const S27_BENCH: &str = include_str!("../../../fixtures/s27.bench");

/// The hand-translated BLIF twin of [`S27_BENCH`].
pub const S27_BLIF: &str = include_str!("../../../fixtures/s27.blif");

/// The s208-class counter/comparator fixture, `.bench` source.
pub const S208A_BENCH: &str = include_str!("../../../fixtures/s208a.bench");

/// The s344-class loadable-LFSR fixture, `.bench` source.
pub const S344A_BENCH: &str = include_str!("../../../fixtures/s344a.bench");

/// The structural-Verilog twin of [`S27_BENCH`].
pub const S27_VLOG: &str = include_str!("../../../fixtures/s27.v");

/// The structural-Verilog twin of [`S208A_BENCH`].
pub const S208A_VLOG: &str = include_str!("../../../fixtures/s208a.v");

/// The structural-Verilog twin of [`S344A_BENCH`].
pub const S344A_VLOG: &str = include_str!("../../../fixtures/s344a.v");

/// The b14-interface-class VHDL fixture (32 in, 54 out, 245 FFs).
pub const B14C_VHDL: &str = include_str!("../../../fixtures/b14c.vhd");

fn build(src: &str, format: SourceFormat, name: &str) -> Netlist {
    import_str(src, format)
        .unwrap_or_else(|e| panic!("bundled fixture {name} failed to import: {e}"))
        .netlist
        .renamed(name)
}

/// ISCAS'89 s27: 4 inputs, 1 output, 3 flip-flops.
#[must_use]
pub fn s27() -> Netlist {
    build(S27_BENCH, SourceFormat::Bench, "s27")
}

/// The BLIF twin of [`s27`] (same ports, same logic, same init values).
#[must_use]
pub fn s27_blif() -> Netlist {
    build(S27_BLIF, SourceFormat::Blif, "s27")
}

/// s208-class fixture: 10 inputs, 1 output, 8 flip-flops.
#[must_use]
pub fn s208a() -> Netlist {
    build(S208A_BENCH, SourceFormat::Bench, "s208a")
}

/// s344-class fixture: 9 inputs, 11 outputs, 15 flip-flops.
#[must_use]
pub fn s344a() -> Netlist {
    build(S344A_BENCH, SourceFormat::Bench, "s344a")
}

/// The Verilog twin of [`s27`] (same ports, same logic, same init
/// values), registered as `s27v`.
#[must_use]
pub fn s27v() -> Netlist {
    build(S27_VLOG, SourceFormat::Verilog, "s27v")
}

/// The Verilog twin of [`s208a`], registered as `s208av`.
#[must_use]
pub fn s208av() -> Netlist {
    build(S208A_VLOG, SourceFormat::Verilog, "s208av")
}

/// The Verilog twin of [`s344a`], registered as `s344av`.
#[must_use]
pub fn s344av() -> Netlist {
    build(S344A_VLOG, SourceFormat::Verilog, "s344av")
}

/// b14-interface-class VHDL fixture: 32 inputs, 54 outputs, 245
/// flip-flops, in the interface shape of ITC'99 b14.
#[must_use]
pub fn b14c() -> Netlist {
    build(B14C_VHDL, SourceFormat::Vhdl, "b14c")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_has_the_iscas_interface() {
        let n = s27();
        assert_eq!(n.num_inputs(), 4);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_ffs(), 3);
        assert_eq!(n.ff_init_values(), vec![false; 3]);
    }

    #[test]
    fn blif_twin_matches_interface() {
        let a = s27();
        let b = s27_blif();
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.num_outputs(), b.num_outputs());
        assert_eq!(a.num_ffs(), b.num_ffs());
        assert_eq!(a.ff_init_values(), b.ff_init_values());
        assert_eq!(a.input_names(), b.input_names());
    }

    #[test]
    fn class_fixtures_have_the_documented_shapes() {
        let n = s208a();
        assert_eq!(
            (n.num_inputs(), n.num_outputs(), n.num_ffs()),
            (10, 1, 8),
            "s208a"
        );
        let n = s344a();
        assert_eq!(
            (n.num_inputs(), n.num_outputs(), n.num_ffs()),
            (9, 11, 15),
            "s344a"
        );
        // The pragma in s344a.bench sets S0's power-on value.
        assert!(n.ff_init_values()[0]);
        assert!(!n.ff_init_values()[1]);
    }

    #[test]
    fn verilog_twins_match_their_bench_interfaces() {
        for (bench, vlog) in [
            (s27(), s27v()),
            (s208a(), s208av()),
            (s344a(), s344av()),
        ] {
            assert_eq!(bench.num_inputs(), vlog.num_inputs(), "{}", vlog.name());
            assert_eq!(bench.num_outputs(), vlog.num_outputs(), "{}", vlog.name());
            assert_eq!(bench.num_ffs(), vlog.num_ffs(), "{}", vlog.name());
            assert_eq!(bench.ff_init_values(), vlog.ff_init_values(), "{}", vlog.name());
            assert_eq!(bench.input_names(), vlog.input_names(), "{}", vlog.name());
        }
    }

    #[test]
    fn b14c_has_the_itc99_b14_interface() {
        let n = b14c();
        assert_eq!(
            (n.num_inputs(), n.num_outputs(), n.num_ffs()),
            (32, 54, 245),
            "b14c"
        );
        // Three banks carry a non-zero power-on bit.
        assert_eq!(n.ff_init_values().iter().filter(|&&v| v).count(), 3);
    }
}
