//! Small ITC'99-*style* benchmark circuits.
//!
//! These reproduce the *interface shape* (input/output/flip-flop counts)
//! of the smaller ITC'99 RT-level benchmarks and their general character
//! (serial FSMs, arbiters, counters-with-protocol), but are re-designed
//! from scratch — the original VHDL is not used. They exist to give the
//! fault-grading pipeline a spread of circuit sizes below the 215-FF
//! Viper, and to keep gate-level emulation cross-checks fast.

use seugrade_netlist::{GateKind, Netlist};
use seugrade_rtl::{RtlBuilder, Word};

/// b01-style: serial comparator FSM.
/// 2 inputs (`line1`, `line2`), 2 outputs (`outp`, `overflw`), 5 flip-flops.
#[must_use]
pub fn b01_style() -> Netlist {
    let mut r = RtlBuilder::new("b01s");
    let line1 = r.input_bit("line1");
    let line2 = r.input_bit("line2");
    // 3-bit state + 2 output registers = 5 FFs.
    let st = r.register("st", 3, 0);
    let outp = r.register_bit("outp", false);
    let overflw = r.register_bit("overflw", false);

    // Serial add of the two lines with state as running context:
    // next state = state + line1 + line2 (mod 8); outp = parity of state,
    // overflow pulse when the counter wraps.
    let l1w = r.zext(&Word::from(line1), 3);
    let l2w = r.zext(&Word::from(line2), 3);
    let (s1, c1) = r.add(&st.q(), &l1w);
    let (s2, c2) = r.add(&s1, &l2w);
    let wrap = r.bit_builder().or2(c1, c2);
    r.connect(&st, &s2);
    let parity = r.reduce_xor(&st.q());
    r.connect(&outp, &Word::from(parity));
    r.connect(&overflw, &Word::from(wrap));

    r.output_bit("outp", outp.q().bit(0));
    r.output_bit("overflw", overflw.q().bit(0));
    r.finish().expect("b01s is valid")
}

/// b02-style: serial BCD-like recognizer.
/// 1 input (`linea`), 1 output (`u`), 4 flip-flops.
#[must_use]
pub fn b02_style() -> Netlist {
    let mut r = RtlBuilder::new("b02s");
    let linea = r.input_bit("linea");
    let st = r.register("st", 3, 0);
    let u = r.register_bit("u", false);

    // Shift the serial bit through a 3-bit window; recognize pattern 101.
    let q = st.q();
    let next = Word::from_bits(vec![linea, q.bit(0), q.bit(1)]);
    r.connect(&st, &next);
    let n1 = r.bit_builder().not(q.bit(1));
    let hit = {
        let b = r.bit_builder();
        b.gate(GateKind::And, &[q.bit(0), n1, q.bit(2)])
    };
    r.connect(&u, &Word::from(hit));
    r.output_bit("u", u.q().bit(0));
    r.finish().expect("b02s is valid")
}

/// b03-style: 4-request round-robin-ish arbiter.
/// 4 inputs, 4 outputs, 30 flip-flops.
#[must_use]
pub fn b03_style() -> Netlist {
    let mut r = RtlBuilder::new("b03s");
    let reqs: Vec<_> = (0..4).map(|i| r.input_bit(format!("req{i}"))).collect();
    // 4 request latches + 4 grant registers + 2-bit rotate pointer +
    // 4x4-bit per-client credit counters + 4-bit history = 30 FFs.
    let latched = r.register("lat", 4, 0);
    let grants = r.register("grant", 4, 0);
    let ptr = r.register("ptr", 2, 0);
    let credits: Vec<_> = (0..4).map(|i| r.register(&format!("cr{i}"), 4, 0xF)).collect();
    let hist = r.register("hist", 4, 0);

    // Latch requests.
    let req_word = Word::from_bits(reqs.clone());
    let lat_or = r.or(&latched.q(), &req_word);
    // Clear a latched request when granted.
    let ngrant = r.not(&grants.q());
    let lat_next = r.and(&lat_or, &ngrant);
    r.connect(&latched, &lat_next);

    // Priority pointer rotates every cycle.
    let (pnext, _) = r.inc(&ptr.q());
    r.connect(&ptr, &pnext);

    // Grant the first pending request at or after the pointer with
    // non-zero credit (simple rotate-priority network).
    let ptr_hot = r.decode(&ptr.q());
    let mut grant_bits = Vec::with_capacity(4);
    for i in 0..4 {
        // client i is granted if latched[i] & credit[i]!=0 and it wins
        // priority: pointer == i, or pointer == i-1 and client i-1 idle...
        // Simplified rotate priority: weight = (i - ptr) mod 4; grant the
        // minimal-weight pending client. Elaborate as: grant[i] = pending[i]
        // & NOT (any pending with smaller weight). Build with muxes over
        // ptr_hot.
        let nz = r.reduce_or(&credits[i].q());
        let pend = r.bit_builder().and2(latched.q().bit(i), nz);
        grant_bits.push(pend);
        let _ = &ptr_hot;
    }
    // Resolve priority: for each rotation p, mask lower-priority pendings.
    let mut resolved = Vec::with_capacity(4);
    for i in 0..4 {
        let mut terms = Vec::new();
        for (p, &hot) in ptr_hot.iter().enumerate() {
            // under rotation p, client order is p, p+1, p+2, p+3.
            let my_rank = (4 + i - p) % 4;
            let mut win = grant_bits[i];
            for j in 0..4 {
                if (4 + j - p) % 4 < my_rank {
                    let nj = r.bit_builder().not(grant_bits[j]);
                    win = r.bit_builder().and2(win, nj);
                }
            }
            let term = r.bit_builder().and2(hot, win);
            terms.push(term);
        }
        resolved.push(r.bit_builder().gate(GateKind::Or, &terms));
    }
    let grant_word = Word::from_bits(resolved.clone());
    r.connect(&grants, &grant_word);

    // Credits decrement on grant, reload at zero.
    for (i, cr) in credits.iter().enumerate() {
        let one = r.constant_word(4, 1);
        let (dec, _) = r.sub(&cr.q(), &one);
        let zero = r.is_zero(&cr.q());
        let reload = r.constant_word(4, 0xF);
        let next = r.mux_word(zero, &dec, &reload);
        r.connect_enabled(cr, resolved[i], &next);
    }
    // History remembers last grant vector.
    r.connect(&hist, &grants.q());

    for i in 0..4 {
        r.output_bit(format!("gnt{i}"), grants.q().bit(i));
    }
    r.finish().expect("b03s is valid")
}

/// b06-style: interrupt controller.
/// 2 inputs, 6 outputs, 9 flip-flops.
#[must_use]
pub fn b06_style() -> Netlist {
    let mut r = RtlBuilder::new("b06s");
    let cont_eql = r.input_bit("cont_eql");
    let cpt_dbl = r.input_bit("cpt_dbl");
    let st = r.register("st", 3, 0);
    let cc_mux = r.register("ccm", 2, 1);
    let enable = r.register_bit("en", false);
    let ackout = r.register_bit("ack", false);
    let out_r = r.register("outr", 2, 0);

    // FSM: idle -> armed -> fire -> cooldown, driven by the two inputs.
    let q = st.q();
    let is0 = r.eq_const(&q, 0);
    let is1 = r.eq_const(&q, 1);
    let is2 = r.eq_const(&q, 2);
    let is3 = r.eq_const(&q, 3);
    let go1 = r.bit_builder().and2(is0, cont_eql);
    let go2 = r.bit_builder().and2(is1, cpt_dbl);
    let back = {
        let b = r.bit_builder();
        let n = b.not(cont_eql);
        b.and2(is1, n)
    };
    let c0 = r.constant_word(3, 0);
    let c1 = r.constant_word(3, 1);
    let c2 = r.constant_word(3, 2);
    let c3 = r.constant_word(3, 3);
    // next = mux cascade
    let mut next = q.clone();
    next = r.mux_word(go1, &next, &c1);
    next = r.mux_word(go2, &next, &c2);
    next = r.mux_word(back, &next, &c0);
    next = r.mux_word(is2, &next, &c3);
    next = r.mux_word(is3, &next, &c0);
    r.connect(&st, &next);

    let fire = is2;
    r.connect(&enable, &Word::from(fire));
    r.connect(&ackout, &Word::from(go2));
    let (ccn, _) = r.inc(&cc_mux.q());
    r.connect_enabled(&cc_mux, fire, &ccn);
    let o0 = r.bit_builder().xor2(fire, cc_mux.q().bit(0));
    let o1 = r.bit_builder().or2(go1, cc_mux.q().bit(1));
    r.connect(&out_r, &Word::from_bits(vec![o0, o1]));

    r.output_bit("cc_mux0", cc_mux.q().bit(0));
    r.output_bit("cc_mux1", cc_mux.q().bit(1));
    r.output_bit("uscite0", out_r.q().bit(0));
    r.output_bit("uscite1", out_r.q().bit(1));
    r.output_bit("enable_count", enable.q().bit(0));
    r.output_bit("ackout", ackout.q().bit(0));
    r.finish().expect("b06s is valid")
}

/// b09-style: serial-to-serial converter.
/// 1 input, 1 output, 28 flip-flops.
#[must_use]
pub fn b09_style() -> Netlist {
    let mut r = RtlBuilder::new("b09s");
    let x = r.input_bit("x");
    // 8-bit input shift reg + 8-bit output shift reg + 8-bit compare
    // register + 3-bit bit counter + 1 output latch = 28 FFs.
    let inreg = r.register("in", 8, 0);
    let outreg = r.register("out", 8, 0xA5);
    let cmp = r.register("cmp", 8, 0x5A);
    let cnt = r.register("cnt", 3, 0);
    let d_out = r.register_bit("d", false);

    // Shift input bit in.
    let iq = inreg.q();
    let in_next = Word::from_bits(
        std::iter::once(x)
            .chain(iq.bits()[..7].iter().copied())
            .collect(),
    );
    r.connect(&inreg, &in_next);

    let (cnt_next, _) = r.inc(&cnt.q());
    r.connect(&cnt, &cnt_next);
    let full = r.eq_const(&cnt.q(), 7);

    // On full: compare input register to cmp; if equal, reload out shift
    // register from cmp, else from input; cmp accumulates xor history.
    let equal = r.eq(&inreg.q(), &cmp.q());
    let reload = r.mux_word(equal, &inreg.q(), &cmp.q());
    let oq = outreg.q();
    let shifted = Word::from_bits(
        oq.bits()[1..]
            .iter()
            .copied()
            .chain(std::iter::once(oq.bit(0)))
            .collect(),
    );
    let out_next = r.mux_word(full, &shifted, &reload);
    r.connect(&outreg, &out_next);

    let cx = r.xor(&cmp.q(), &inreg.q());
    r.connect_enabled(&cmp, full, &cx);

    r.connect(&d_out, &Word::from(oq.bit(0)));
    r.output_bit("d", d_out.q().bit(0));
    r.finish().expect("b09s is valid")
}

/// b13-style: weather-station interface.
/// 10 inputs, 10 outputs, 53 flip-flops.
#[must_use]
pub fn b13_style() -> Netlist {
    let mut r = RtlBuilder::new("b13s");
    let data_in = r.input_word("data_in", 8);
    let eoc = r.input_bit("eoc");
    let dsr = r.input_bit("dsr");

    // 8-bit data latch + 8-bit shift-out + 8-bit checksum + 10-bit timer
    // + 4-bit state one-hot + 8-bit mux reg + 4-bit bit counter +
    // out regs (canale 4? keep: 1 soc + 1 load + 1 tx) = 53.
    let latch = r.register("latch", 8, 0);
    let shout = r.register("shout", 8, 0);
    let csum = r.register("csum", 8, 0);
    let timer = r.register("timer", 10, 0);
    let st = r.register("st", 4, 1);
    let muxr = r.register("muxr", 8, 0);
    let bitcnt = r.register("bitcnt", 4, 0);
    let soc = r.register_bit("soc", false);
    let load_r = r.register_bit("load", false);
    let tx = r.register_bit("tx", false);

    let s0 = st.q().bit(0);
    let s1 = st.q().bit(1);
    let s2 = st.q().bit(2);
    let s3 = st.q().bit(3);

    // Timer free-runs; the low 5 bits saturating kicks the FSM from idle
    // every 32 cycles (a full 10-bit rollover would be slower than the
    // test benches used here).
    let (tnext, _) = r.inc(&timer.q());
    r.connect(&timer, &tnext);
    let low5 = timer.q().slice(0, 5);
    let trip = r.eq_const(&low5, 0x1F);

    // FSM one-hot: idle -> sample (wait eoc) -> shift (8 bits) -> done.
    let go_sample = r.bit_builder().and2(s0, trip);
    let sampled = r.bit_builder().and2(s1, eoc);
    let bits_done = r.eq_const(&bitcnt.q(), 8);
    let shift_end = r.bit_builder().and2(s2, bits_done);
    let done_back = r.bit_builder().and2(s3, dsr);
    let stay0 = {
        let b = r.bit_builder();
        let n = b.not(trip);
        b.and2(s0, n)
    };
    let stay1 = {
        let b = r.bit_builder();
        let n = b.not(eoc);
        b.and2(s1, n)
    };
    let stay2 = {
        let b = r.bit_builder();
        let n = b.not(bits_done);
        b.and2(s2, n)
    };
    let stay3 = {
        let b = r.bit_builder();
        let n = b.not(dsr);
        b.and2(s3, n)
    };
    let n0 = r.bit_builder().or2(stay0, done_back);
    let n1 = r.bit_builder().or2(stay1, go_sample);
    let n2 = r.bit_builder().or2(stay2, sampled);
    let n3 = r.bit_builder().or2(stay3, shift_end);
    r.connect(&st, &Word::from_bits(vec![n0, n1, n2, n3]));

    // Latch data on sample; checksum accumulates.
    r.connect_enabled(&latch, sampled, &data_in);
    let cs = r.xor(&csum.q(), &data_in);
    r.connect_enabled(&csum, sampled, &cs);
    r.connect_enabled(&muxr, sampled, &data_in);

    // Shift out during s2.
    let sq = shout.q();
    let shifted = Word::from_bits(
        sq.bits()[1..]
            .iter()
            .copied()
            .chain(std::iter::once(r.constant(false)))
            .collect(),
    );
    let reload = r.mux_word(sampled, &shifted, &latch.q());
    let sh_en = r.bit_builder().or2(s2, sampled);
    r.connect_enabled(&shout, sh_en, &reload);
    let (bc_next, _) = r.inc(&bitcnt.q());
    let zero4 = r.constant_word(4, 0);
    let bc_val = r.mux_word(sampled, &bc_next, &zero4);
    let bc_en = r.bit_builder().or2(s2, sampled);
    r.connect_enabled(&bitcnt, bc_en, &bc_val);

    r.connect(&soc, &Word::from(go_sample));
    r.connect(&load_r, &Word::from(sampled));
    r.connect(&tx, &Word::from(sq.bit(0)));

    r.output_bit("soc", soc.q().bit(0));
    r.output_bit("load_dato", load_r.q().bit(0));
    r.output_bit("tx", tx.q().bit(0));
    r.output_bit("canale0", muxr.q().bit(0));
    r.output_bit("canale1", muxr.q().bit(1));
    r.output_bit("canale2", muxr.q().bit(2));
    r.output_bit("canale3", muxr.q().bit(3));
    r.output_bit("csum0", csum.q().bit(0));
    r.output_bit("csum1", csum.q().bit(1));
    r.output_bit("mux_en", s2);
    r.finish().expect("b13s is valid")
}

#[cfg(test)]
mod tests {
    use seugrade_sim::{CompiledSim, EventSim, Testbench};

    use super::*;

    #[test]
    fn interface_shapes() {
        let cases: [(Netlist, usize, usize, usize); 5] = [
            (b01_style(), 2, 2, 5),
            (b02_style(), 1, 1, 4),
            (b03_style(), 4, 4, 30),
            (b06_style(), 2, 6, 9),
            (b09_style(), 1, 1, 28),
        ];
        for (n, inputs, outputs, ffs) in cases {
            assert_eq!(n.num_inputs(), inputs, "{} inputs", n.name());
            assert_eq!(n.num_outputs(), outputs, "{} outputs", n.name());
            assert_eq!(n.num_ffs(), ffs, "{} ffs", n.name());
        }
        let b13 = b13_style();
        assert_eq!(b13.num_inputs(), 10);
        assert_eq!(b13.num_outputs(), 10);
        assert_eq!(b13.num_ffs(), 53);
    }

    #[test]
    fn circuits_have_output_activity() {
        for n in [b01_style(), b02_style(), b03_style(), b06_style(), b09_style(), b13_style()] {
            let sim = CompiledSim::new(&n);
            let tb = Testbench::random(n.num_inputs(), 200, 42);
            let trace = sim.run_golden(&tb);
            let changes = (1..trace.num_cycles())
                .filter(|&t| trace.output_at(t) != trace.output_at(t - 1))
                .count();
            assert!(changes > 3, "{} is output-dead ({changes} changes)", n.name());
        }
    }

    #[test]
    fn engines_agree_on_all_small_circuits() {
        for n in [b01_style(), b02_style(), b03_style(), b06_style(), b09_style(), b13_style()] {
            let tb = Testbench::random(n.num_inputs(), 60, 7);
            let fast = CompiledSim::new(&n).run_golden(&tb);
            let slow = EventSim::new(&n).run_golden(&tb);
            assert_eq!(fast, slow, "{} engine divergence", n.name());
        }
    }

    #[test]
    fn b02_recognizes_101() {
        let n = b02_style();
        let sim = CompiledSim::new(&n);
        // Feed 1,0,1 then observe u two cycles later (window + out reg).
        let seq = [true, false, true, false, false, false];
        let tb = Testbench::new(seq.iter().map(|&b| vec![b]).collect());
        let trace = sim.run_golden(&tb);
        let fired = (0..trace.num_cycles()).any(|t| trace.output_at(t)[0]);
        assert!(fired, "pattern 101 not recognized");
    }

    #[test]
    fn b03_grants_are_mutually_exclusive() {
        let n = b03_style();
        let sim = CompiledSim::new(&n);
        let tb = Testbench::random(4, 100, 9);
        let trace = sim.run_golden(&tb);
        for t in 0..trace.num_cycles() {
            let grants = trace.output_at(t).iter().filter(|&&g| g).count();
            assert!(grants <= 1, "multiple grants at cycle {t}");
        }
    }
}
