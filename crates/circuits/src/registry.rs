//! Name → circuit lookup for examples and the benchmark harness.

use seugrade_netlist::Netlist;

use crate::{fixtures, generators, small, viper};

/// Names accepted by [`build`], in display order.
///
/// The `s27`/`s208a`/`s344a` entries are backed by the on-disk
/// benchmark fixtures under `fixtures/` (see [`fixtures`]), imported
/// through the `seugrade-netlist` ingestion layer — so the
/// external-format path is exercised by every registry-driven suite.
/// The `*v` entries are their structural-Verilog twins and `b14c` is
/// the b14-interface-class VHDL fixture (32 in, 54 out, 245 FFs), so
/// both HDL frontends ride the same suites. `s5378g` is the
/// generator-produced s5378-class scale fixture
/// ([`generators::s5378_class`], 1536 flip-flops): the workload the
/// streaming campaign core (`TracePolicy::Checkpoint`, streamed fault
/// sources) exists for. `s38417g` ([`generators::s38417_class`],
/// 10,240 flip-flops) is its order-of-magnitude-larger sibling for
/// scale benchmarking.
pub const NAMES: [&str; 19] = [
    "viper",
    "b01s",
    "b02s",
    "b03s",
    "b06s",
    "b09s",
    "b13s",
    "b14c",
    "s27",
    "s27v",
    "s208a",
    "s208av",
    "s344a",
    "s344av",
    "s5378g",
    "s38417g",
    "lfsr16",
    "counter8",
    "shreg32",
];

/// Builds a registered circuit by name, or `None` for unknown names.
///
/// # Example
///
/// ```
/// let n = seugrade_circuits::registry::build("counter8").expect("known");
/// assert_eq!(n.num_ffs(), 8);
/// assert!(seugrade_circuits::registry::build("nope").is_none());
/// ```
#[must_use]
pub fn build(name: &str) -> Option<Netlist> {
    match name {
        "viper" => Some(viper::viper()),
        "b01s" => Some(small::b01_style()),
        "b02s" => Some(small::b02_style()),
        "b03s" => Some(small::b03_style()),
        "b06s" => Some(small::b06_style()),
        "b09s" => Some(small::b09_style()),
        "b13s" => Some(small::b13_style()),
        "b14c" => Some(fixtures::b14c()),
        "s27" => Some(fixtures::s27()),
        "s27v" => Some(fixtures::s27v()),
        "s208a" => Some(fixtures::s208a()),
        "s208av" => Some(fixtures::s208av()),
        "s344a" => Some(fixtures::s344a()),
        "s344av" => Some(fixtures::s344av()),
        "s5378g" => Some(generators::s5378_class()),
        "s38417g" => Some(generators::s38417_class()),
        "lfsr16" => Some(generators::lfsr(16, &[15, 13, 12, 10])),
        "counter8" => Some(generators::counter(8)),
        "shreg32" => Some(generators::shift_register(32)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_build() {
        for name in NAMES {
            let n = build(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(n.name().is_empty(), false);
            assert!(n.num_ffs() > 0, "{name} has no flip-flops");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build("definitely-not-a-circuit").is_none());
    }

    #[test]
    fn names_are_unique() {
        let set: std::collections::HashSet<&str> = NAMES.iter().copied().collect();
        assert_eq!(set.len(), NAMES.len());
    }
}
