//! Parametric circuit generators.
//!
//! Used by the crossover experiment (X1) — which needs circuits with a
//! controlled flip-flop count — by property tests, and by the scalability
//! benches.

use seugrade_netlist::{GateKind, Netlist, NetlistBuilder, SigId};
use seugrade_sim::SplitMix64;

/// Fibonacci LFSR over `width` bits with XOR feedback from `taps`
/// (bit positions). All bits are outputs; no inputs.
///
/// # Panics
///
/// Panics if `width == 0`, `taps` is empty, or a tap is out of range.
#[must_use]
pub fn lfsr(width: usize, taps: &[usize]) -> Netlist {
    assert!(width > 0 && !taps.is_empty());
    assert!(taps.iter().all(|&t| t < width), "tap out of range");
    let mut b = NetlistBuilder::new(format!("lfsr{width}"));
    // Non-zero seed: initialize the low bit to 1.
    let ffs: Vec<SigId> = (0..width).map(|i| b.dff(i == 0)).collect();
    let tap_sigs: Vec<SigId> = taps.iter().map(|&t| ffs[t]).collect();
    let feedback = if tap_sigs.len() == 1 {
        b.buf(tap_sigs[0])
    } else {
        b.gate(GateKind::Xor, &tap_sigs)
    };
    b.connect_dff(ffs[0], feedback).expect("ff0 connects");
    for i in 1..width {
        b.connect_dff(ffs[i], ffs[i - 1]).expect("shift connects");
    }
    for (i, &q) in ffs.iter().enumerate() {
        b.output(format!("q{i}"), q);
    }
    b.finish().expect("lfsr is valid")
}

/// Binary up-counter of `width` bits; all bits are outputs, no inputs.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn counter(width: usize) -> Netlist {
    assert!(width > 0);
    let mut b = NetlistBuilder::new(format!("counter{width}"));
    let ffs: Vec<SigId> = (0..width).map(|_| b.dff(false)).collect();
    // bit i toggles when all lower bits are 1.
    let mut carry = b.constant(true);
    for &q in &ffs {
        let next = b.xor2(q, carry);
        carry = b.and2(q, carry);
        b.connect_dff(q, next).expect("counter connects");
    }
    for (i, &q) in ffs.iter().enumerate() {
        b.output(format!("c{i}"), q);
    }
    b.finish().expect("counter is valid")
}

/// Serial-in shift register of `width` bits; 1 input, last bit is output.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn shift_register(width: usize) -> Netlist {
    assert!(width > 0);
    let mut b = NetlistBuilder::new(format!("shreg{width}"));
    let din = b.input("din");
    let ffs: Vec<SigId> = (0..width).map(|_| b.dff(false)).collect();
    b.connect_dff(ffs[0], din).expect("head connects");
    for i in 1..width {
        b.connect_dff(ffs[i], ffs[i - 1]).expect("chain connects");
    }
    b.output("dout", ffs[width - 1]);
    b.finish().expect("shift register is valid")
}

/// Cross-coupled register-bank mesh — the parametric generator behind
/// the [`s5378_class`] scale fixture.
///
/// `banks` register banks of `width` bits each, cross-coupled in a ring
/// (each bank's head mixes a neighbour tap with a data input) and
/// observed through one parity output per bank. Bank `i`'s behaviour
/// rotates with `i % 3`:
///
/// - **decay** — an AND-masked shift chain (each stage gated by a
///   pseudo-random neighbour bit) observed only near its tail: injected
///   flips are usually squashed in flight before any tap sees them
///   (silent-prone);
/// - **LFSR** — persistent XOR feedback observed through eight spread
///   parity taps: flips recirculate until the output exposes them
///   (failure-prone);
/// - **hold** — bits advance only while the neighbour bank's enable bit
///   is high, the tail bit is sticky (`q ∨ q_prev`), and only the two
///   head bits are observed: flips injected behind the observation
///   point linger to the end of the bench (latent-prone).
///
/// The mix exists precisely so exhaustive campaigns on large meshes
/// exercise every grading class and every detection-latency regime —
/// the workload the streaming campaign core is benchmarked on.
///
/// # Panics
///
/// Panics if `banks < 2` or `width < 8`.
#[must_use]
pub fn banked_mesh(banks: usize, width: usize) -> Netlist {
    assert!(banks >= 2, "a mesh needs at least two banks");
    assert!(width >= 8, "a bank needs at least eight bits (parity taps)");
    let num_inputs = banks.min(8);
    let mut b = NetlistBuilder::new(format!("mesh{banks}x{width}"));
    let din: Vec<SigId> = (0..num_inputs).map(|i| b.input(format!("din{i}"))).collect();
    // All flip-flops first so banks can cross-reference freely; LFSR
    // banks power up with a seeded head bit.
    let ffs: Vec<Vec<SigId>> = (0..banks)
        .map(|i| (0..width).map(|j| b.dff(i % 3 == 1 && j == 0)).collect())
        .collect();
    for i in 0..banks {
        let q = &ffs[i];
        let neighbour = &ffs[(i + banks - 1) % banks];
        // Decay banks read the neighbour's middle so a hold bank's
        // sticky tail stays unobservable through the ring.
        let tap = neighbour[if i % 3 == 0 { width / 2 } else { width - 1 }];
        let head = b.xor2(tap, din[i % num_inputs]);
        let parity = match i % 3 {
            0 => {
                b.connect_dff(q[0], head).expect("decay head connects");
                for j in 1..width {
                    let mask = neighbour[(5 * j + 1) % width];
                    let d = b.and2(q[j - 1], mask);
                    b.connect_dff(q[j], d).expect("decay chain connects");
                }
                // Observed at the tail only: a flip must survive the
                // masks all the way down to be seen.
                fold_parity(&mut b, &q[width - 8..])
            }
            1 => {
                let fb1 = b.xor2(q[width - 1], q[width / 2]);
                let fb = b.xor2(fb1, head);
                b.connect_dff(q[0], fb).expect("lfsr head connects");
                for j in 1..width {
                    b.connect_dff(q[j], q[j - 1]).expect("lfsr chain connects");
                }
                let step = width / 8;
                let taps: Vec<SigId> = (0..8).map(|k| q[k * step]).collect();
                fold_parity(&mut b, &taps)
            }
            _ => {
                let en = neighbour[width / 3];
                let d0 = b.mux(en, q[0], head);
                b.connect_dff(q[0], d0).expect("hold head connects");
                for j in 1..width - 1 {
                    let dj = b.mux(en, q[j], q[j - 1]);
                    b.connect_dff(q[j], dj).expect("hold chain connects");
                }
                let sticky = b.or2(q[width - 1], q[width - 2]);
                b.connect_dff(q[width - 1], sticky).expect("sticky tail connects");
                // Only the head is observed; everything deeper drifts
                // out of sight.
                fold_parity(&mut b, &q[..2])
            }
        };
        b.output(format!("par{i}"), parity);
    }
    b.finish().expect("banked mesh is valid")
}

/// XOR-folds a non-empty tap list into one parity signal.
fn fold_parity(b: &mut NetlistBuilder, taps: &[SigId]) -> SigId {
    let mut parity = taps[0];
    for &t in &taps[1..] {
        parity = b.xor2(parity, t);
    }
    parity
}

/// The s5378-class scale fixture: a 24 × 64 [`banked_mesh`] — 1536
/// flip-flops, the size regime of the larger ISCAS'89 sequential
/// benchmarks (s5378 and up) that dense golden traces priced out of the
/// workspace before the streaming campaign core existed.
///
/// Registered as `s5378g`; graded in CI under
/// `TracePolicy::Checkpoint(64)` and benchmarked by
/// `repro -- bench` over a 4096-cycle bench (see `BENCH_grade.json`).
#[must_use]
pub fn s5378_class() -> Netlist {
    banked_mesh(24, 64).renamed("s5378g")
}

/// The s38417-class scale fixture: a 160 × 64 [`banked_mesh`] — 10,240
/// flip-flops, the size regime of the largest ISCAS'89 sequential
/// benchmarks (s38417/s38584). One order of magnitude above
/// [`s5378_class`], it is the fixture that keeps the streamed grading
/// path honest about per-fault cost scaling with circuit size.
///
/// Registered as `s38417g`; `repro -- bench` grades one sampled scale
/// row on it (see `BENCH_grade.json`).
#[must_use]
pub fn s38417_class() -> Netlist {
    banked_mesh(160, 64).renamed("s38417g")
}

/// Configuration for [`random_sequential`].
#[derive(Clone, Debug)]
pub struct RandomCircuitConfig {
    /// Primary inputs.
    pub num_inputs: usize,
    /// Flip-flops.
    pub num_ffs: usize,
    /// Combinational gates.
    pub num_gates: usize,
    /// Primary outputs in addition to the flip-flop observation taps.
    pub num_outputs: usize,
    /// Fraction (numerator/8) of flip-flops directly observable at
    /// outputs; lower values produce more latent faults.
    pub observability_num: u32,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            num_inputs: 4,
            num_ffs: 16,
            num_gates: 80,
            num_outputs: 6,
            observability_num: 4,
        }
    }
}

/// Seeded random sequential circuit: acyclic random gate network over
/// inputs and flip-flop outputs, random next-state taps, and a mix of
/// directly-observed and buried flip-flops.
///
/// Deterministic for a given `(config, seed)`; used heavily by property
/// tests to cross-validate the fault-simulation engines and the emulation
/// models.
///
/// # Panics
///
/// Panics if `num_ffs == 0` or `num_outputs == 0`.
#[must_use]
pub fn random_sequential(config: &RandomCircuitConfig, seed: u64) -> Netlist {
    assert!(config.num_ffs > 0 && config.num_outputs > 0);
    let mut rng = SplitMix64::new(seed);
    let mut b = NetlistBuilder::new(format!("rand{seed}"));
    let mut pool: Vec<SigId> = Vec::new();
    for i in 0..config.num_inputs {
        pool.push(b.input(format!("i{i}")));
    }
    let ffs: Vec<SigId> = (0..config.num_ffs).map(|_| b.dff(rng.next_bool())).collect();
    pool.extend(&ffs);

    for _ in 0..config.num_gates {
        use GateKind::*;
        let kind = [And, Or, Nand, Nor, Xor, Xnor, Not, Mux][rng.index(8)];
        let pick = pool[rng.index(pool.len())];
        let g = match kind {
            Not => b.not(pick),
            Mux => {
                let d0 = pool[rng.index(pool.len())];
                let d1 = pool[rng.index(pool.len())];
                b.mux(pick, d0, d1)
            }
            _ => {
                let other = pool[rng.index(pool.len())];
                b.gate(kind, &[pick, other])
            }
        };
        pool.push(g);
    }

    // Next-state: prefer late (deep) signals so flip-flops actually
    // depend on the logic.
    for &q in &ffs {
        let lo = pool.len() / 2;
        let d = pool[lo + rng.index(pool.len() - lo)];
        b.connect_dff(q, d).expect("random dff connects");
    }

    // Outputs: some random logic taps plus a subset of flip-flops.
    for i in 0..config.num_outputs {
        let sig = pool[rng.index(pool.len())];
        b.output(format!("o{i}"), sig);
    }
    for (i, &q) in ffs.iter().enumerate() {
        if rng.next_bool_ratio(config.observability_num, 8) {
            b.output(format!("ff_obs{i}"), q);
        }
    }
    b.finish().expect("random sequential circuit is valid")
}

#[cfg(test)]
mod tests {
    use seugrade_sim::{CompiledSim, EventSim, Testbench};

    use super::*;

    #[test]
    fn lfsr_cycles_through_states() {
        // x^4 + x^3 + 1 (maximal for 4 bits with taps 3,2 counting from 0).
        let n = lfsr(4, &[3, 2]);
        assert_eq!(n.num_ffs(), 4);
        let sim = CompiledSim::new(&n);
        let trace = sim.run_golden(&Testbench::constant_low(0, 15));
        let mut seen = std::collections::HashSet::new();
        for t in 0..15 {
            seen.insert(trace.output_at(t).to_vec());
        }
        assert_eq!(seen.len(), 15, "maximal-length LFSR revisited a state");
    }

    #[test]
    fn counter_counts() {
        let n = counter(6);
        let sim = CompiledSim::new(&n);
        let trace = sim.run_golden(&Testbench::constant_low(0, 70));
        for t in 0..70 {
            let v: u64 = trace
                .output_at(t)
                .iter()
                .enumerate()
                .fold(0, |a, (i, &bit)| a | (u64::from(bit) << i));
            assert_eq!(v, (t as u64) % 64);
        }
    }

    #[test]
    fn shift_register_delays() {
        let n = shift_register(5);
        let sim = CompiledSim::new(&n);
        let tb = Testbench::new(
            (0..12).map(|t| vec![t % 3 == 0]).collect(),
        );
        let trace = sim.run_golden(&tb);
        for t in 5..12 {
            assert_eq!(trace.output_at(t)[0], (t - 5) % 3 == 0, "cycle {t}");
        }
    }

    #[test]
    fn banked_mesh_shape_and_determinism() {
        let a = banked_mesh(3, 8);
        assert_eq!(a.num_ffs(), 24);
        assert_eq!(a.num_inputs(), 3);
        assert_eq!(a.num_outputs(), 3);
        let b = banked_mesh(3, 8);
        assert_eq!(seugrade_netlist::text::emit(&a), seugrade_netlist::text::emit(&b));
    }

    #[test]
    fn banked_mesh_cross_checks_engines() {
        let n = banked_mesh(3, 8);
        let tb = Testbench::random(n.num_inputs(), 40, 17);
        let fast = CompiledSim::new(&n).run_golden(&tb);
        let slow = EventSim::new(&n).run_golden(&tb);
        assert_eq!(fast, slow);
    }

    #[test]
    fn s5378_class_is_streaming_scale() {
        let n = s5378_class();
        assert_eq!(n.name(), "s5378g");
        assert!(n.num_ffs() >= 1500, "{} flip-flops", n.num_ffs());
        assert_eq!(n.num_inputs(), 8);
        assert_eq!(n.num_outputs(), 24);
        // Building it is cheap; a golden run over a short bench works.
        let tb = Testbench::random(n.num_inputs(), 4, 1);
        let trace = CompiledSim::new(&n).run_golden(&tb);
        assert_eq!(trace.num_cycles(), 4);
    }

    #[test]
    fn s38417_class_is_benchmark_scale() {
        let n = s38417_class();
        assert_eq!(n.name(), "s38417g");
        assert!(n.num_ffs() >= 10_000, "{} flip-flops", n.num_ffs());
        assert_eq!(n.num_inputs(), 8);
        assert_eq!(n.num_outputs(), 160);
        let tb = Testbench::random(n.num_inputs(), 2, 1);
        let trace = CompiledSim::new(&n).run_golden(&tb);
        assert_eq!(trace.num_cycles(), 2);
    }

    #[test]
    fn random_circuits_are_deterministic_and_valid() {
        let cfg = RandomCircuitConfig::default();
        let a = random_sequential(&cfg, 11);
        let b = random_sequential(&cfg, 11);
        assert_eq!(seugrade_netlist::text::emit(&a), seugrade_netlist::text::emit(&b));
        assert_eq!(a.num_ffs(), cfg.num_ffs);
    }

    #[test]
    fn random_circuits_cross_check_engines() {
        let cfg = RandomCircuitConfig { num_gates: 40, ..Default::default() };
        for seed in 0..10 {
            let n = random_sequential(&cfg, seed);
            let tb = Testbench::random(n.num_inputs(), 30, seed);
            let fast = CompiledSim::new(&n).run_golden(&tb);
            let slow = EventSim::new(&n).run_golden(&tb);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn observability_knob_changes_output_count() {
        let lo = random_sequential(
            &RandomCircuitConfig { observability_num: 0, ..Default::default() },
            5,
        );
        let hi = random_sequential(
            &RandomCircuitConfig { observability_num: 8, ..Default::default() },
            5,
        );
        assert!(hi.num_outputs() > lo.num_outputs());
    }
}
