//! Parametric circuit generators.
//!
//! Used by the crossover experiment (X1) — which needs circuits with a
//! controlled flip-flop count — by property tests, and by the scalability
//! benches.

use seugrade_netlist::{GateKind, Netlist, NetlistBuilder, SigId};
use seugrade_sim::SplitMix64;

/// Fibonacci LFSR over `width` bits with XOR feedback from `taps`
/// (bit positions). All bits are outputs; no inputs.
///
/// # Panics
///
/// Panics if `width == 0`, `taps` is empty, or a tap is out of range.
#[must_use]
pub fn lfsr(width: usize, taps: &[usize]) -> Netlist {
    assert!(width > 0 && !taps.is_empty());
    assert!(taps.iter().all(|&t| t < width), "tap out of range");
    let mut b = NetlistBuilder::new(format!("lfsr{width}"));
    // Non-zero seed: initialize the low bit to 1.
    let ffs: Vec<SigId> = (0..width).map(|i| b.dff(i == 0)).collect();
    let tap_sigs: Vec<SigId> = taps.iter().map(|&t| ffs[t]).collect();
    let feedback = if tap_sigs.len() == 1 {
        b.buf(tap_sigs[0])
    } else {
        b.gate(GateKind::Xor, &tap_sigs)
    };
    b.connect_dff(ffs[0], feedback).expect("ff0 connects");
    for i in 1..width {
        b.connect_dff(ffs[i], ffs[i - 1]).expect("shift connects");
    }
    for (i, &q) in ffs.iter().enumerate() {
        b.output(format!("q{i}"), q);
    }
    b.finish().expect("lfsr is valid")
}

/// Binary up-counter of `width` bits; all bits are outputs, no inputs.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn counter(width: usize) -> Netlist {
    assert!(width > 0);
    let mut b = NetlistBuilder::new(format!("counter{width}"));
    let ffs: Vec<SigId> = (0..width).map(|_| b.dff(false)).collect();
    // bit i toggles when all lower bits are 1.
    let mut carry = b.constant(true);
    for &q in &ffs {
        let next = b.xor2(q, carry);
        carry = b.and2(q, carry);
        b.connect_dff(q, next).expect("counter connects");
    }
    for (i, &q) in ffs.iter().enumerate() {
        b.output(format!("c{i}"), q);
    }
    b.finish().expect("counter is valid")
}

/// Serial-in shift register of `width` bits; 1 input, last bit is output.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn shift_register(width: usize) -> Netlist {
    assert!(width > 0);
    let mut b = NetlistBuilder::new(format!("shreg{width}"));
    let din = b.input("din");
    let ffs: Vec<SigId> = (0..width).map(|_| b.dff(false)).collect();
    b.connect_dff(ffs[0], din).expect("head connects");
    for i in 1..width {
        b.connect_dff(ffs[i], ffs[i - 1]).expect("chain connects");
    }
    b.output("dout", ffs[width - 1]);
    b.finish().expect("shift register is valid")
}

/// Configuration for [`random_sequential`].
#[derive(Clone, Debug)]
pub struct RandomCircuitConfig {
    /// Primary inputs.
    pub num_inputs: usize,
    /// Flip-flops.
    pub num_ffs: usize,
    /// Combinational gates.
    pub num_gates: usize,
    /// Primary outputs in addition to the flip-flop observation taps.
    pub num_outputs: usize,
    /// Fraction (numerator/8) of flip-flops directly observable at
    /// outputs; lower values produce more latent faults.
    pub observability_num: u32,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            num_inputs: 4,
            num_ffs: 16,
            num_gates: 80,
            num_outputs: 6,
            observability_num: 4,
        }
    }
}

/// Seeded random sequential circuit: acyclic random gate network over
/// inputs and flip-flop outputs, random next-state taps, and a mix of
/// directly-observed and buried flip-flops.
///
/// Deterministic for a given `(config, seed)`; used heavily by property
/// tests to cross-validate the fault-simulation engines and the emulation
/// models.
///
/// # Panics
///
/// Panics if `num_ffs == 0` or `num_outputs == 0`.
#[must_use]
pub fn random_sequential(config: &RandomCircuitConfig, seed: u64) -> Netlist {
    assert!(config.num_ffs > 0 && config.num_outputs > 0);
    let mut rng = SplitMix64::new(seed);
    let mut b = NetlistBuilder::new(format!("rand{seed}"));
    let mut pool: Vec<SigId> = Vec::new();
    for i in 0..config.num_inputs {
        pool.push(b.input(format!("i{i}")));
    }
    let ffs: Vec<SigId> = (0..config.num_ffs).map(|_| b.dff(rng.next_bool())).collect();
    pool.extend(&ffs);

    for _ in 0..config.num_gates {
        use GateKind::*;
        let kind = [And, Or, Nand, Nor, Xor, Xnor, Not, Mux][rng.index(8)];
        let pick = pool[rng.index(pool.len())];
        let g = match kind {
            Not => b.not(pick),
            Mux => {
                let d0 = pool[rng.index(pool.len())];
                let d1 = pool[rng.index(pool.len())];
                b.mux(pick, d0, d1)
            }
            _ => {
                let other = pool[rng.index(pool.len())];
                b.gate(kind, &[pick, other])
            }
        };
        pool.push(g);
    }

    // Next-state: prefer late (deep) signals so flip-flops actually
    // depend on the logic.
    for &q in &ffs {
        let lo = pool.len() / 2;
        let d = pool[lo + rng.index(pool.len() - lo)];
        b.connect_dff(q, d).expect("random dff connects");
    }

    // Outputs: some random logic taps plus a subset of flip-flops.
    for i in 0..config.num_outputs {
        let sig = pool[rng.index(pool.len())];
        b.output(format!("o{i}"), sig);
    }
    for (i, &q) in ffs.iter().enumerate() {
        if rng.next_bool_ratio(config.observability_num, 8) {
            b.output(format!("ff_obs{i}"), q);
        }
    }
    b.finish().expect("random sequential circuit is valid")
}

#[cfg(test)]
mod tests {
    use seugrade_sim::{CompiledSim, EventSim, Testbench};

    use super::*;

    #[test]
    fn lfsr_cycles_through_states() {
        // x^4 + x^3 + 1 (maximal for 4 bits with taps 3,2 counting from 0).
        let n = lfsr(4, &[3, 2]);
        assert_eq!(n.num_ffs(), 4);
        let sim = CompiledSim::new(&n);
        let trace = sim.run_golden(&Testbench::constant_low(0, 15));
        let mut seen = std::collections::HashSet::new();
        for t in 0..15 {
            seen.insert(trace.output_at(t).to_vec());
        }
        assert_eq!(seen.len(), 15, "maximal-length LFSR revisited a state");
    }

    #[test]
    fn counter_counts() {
        let n = counter(6);
        let sim = CompiledSim::new(&n);
        let trace = sim.run_golden(&Testbench::constant_low(0, 70));
        for t in 0..70 {
            let v: u64 = trace
                .output_at(t)
                .iter()
                .enumerate()
                .fold(0, |a, (i, &bit)| a | (u64::from(bit) << i));
            assert_eq!(v, (t as u64) % 64);
        }
    }

    #[test]
    fn shift_register_delays() {
        let n = shift_register(5);
        let sim = CompiledSim::new(&n);
        let tb = Testbench::new(
            (0..12).map(|t| vec![t % 3 == 0]).collect(),
        );
        let trace = sim.run_golden(&tb);
        for t in 5..12 {
            assert_eq!(trace.output_at(t)[0], (t - 5) % 3 == 0, "cycle {t}");
        }
    }

    #[test]
    fn random_circuits_are_deterministic_and_valid() {
        let cfg = RandomCircuitConfig::default();
        let a = random_sequential(&cfg, 11);
        let b = random_sequential(&cfg, 11);
        assert_eq!(seugrade_netlist::text::emit(&a), seugrade_netlist::text::emit(&b));
        assert_eq!(a.num_ffs(), cfg.num_ffs);
    }

    #[test]
    fn random_circuits_cross_check_engines() {
        let cfg = RandomCircuitConfig { num_gates: 40, ..Default::default() };
        for seed in 0..10 {
            let n = random_sequential(&cfg, seed);
            let tb = Testbench::random(n.num_inputs(), 30, seed);
            let fast = CompiledSim::new(&n).run_golden(&tb);
            let slow = EventSim::new(&n).run_golden(&tb);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn observability_knob_changes_output_count() {
        let lo = random_sequential(
            &RandomCircuitConfig { observability_num: 0, ..Default::default() },
            5,
        );
        let hi = random_sequential(
            &RandomCircuitConfig { observability_num: 8, ..Default::default() },
            5,
        );
        assert!(hi.num_outputs() > lo.num_outputs());
    }
}
