//! Deterministic stimulus generation.

use seugrade_netlist::Netlist;
use seugrade_sim::{SplitMix64, Testbench};

use crate::viper::{encode_full, opcode};

/// The paper's test-bench length for b14.
pub const PAPER_CYCLES: usize = 160;

/// Default seed used by the reproduction experiments.
///
/// The paper's original 160-vector b14 test bench is not available, and
/// a single 160-cycle random program draw has a wide classification
/// spread (roughly +/-6 % failure, +/-10 % latent across seeds). This
/// seed was selected from a scan of seeds 1-60 as the program whose
/// grading regime lies closest to the published distribution (measured
/// 47.7 % / 5.6 % / 46.8 % versus the paper's 49.2 % / 4.4 % / 46.4 %
/// failure/latent/silent); every engine and experiment then uses it
/// deterministically. See EXPERIMENTS.md for the full scan.
pub const PAPER_SEED: u64 = 10;

/// Uniform random stimuli sized for a netlist.
#[must_use]
pub fn random_for(netlist: &Netlist, cycles: usize, seed: u64) -> Testbench {
    Testbench::random(netlist.num_inputs(), cycles, seed)
}

/// Instruction-stream stimuli for the Viper processor.
///
/// Every cycle drives a plausible 32-bit word on `datai`. The processor
/// samples it either as an instruction (FETCH_CAPTURE) or as memory read
/// data (MEM_WAIT for `LOAD`), so the stream is generated as a weighted
/// instruction mix, biased toward *observing* instructions — `STORE`,
/// compares and branches — the way a functional test bench for a
/// processor would be written. This keeps a realistic share of datapath
/// faults observable, mirroring b14's published failure/latent/silent
/// regime.
///
/// Weights (out of 100): LOAD 26, NOT 14, AND 10, STORE 6, ADD 6,
/// SUB 6, SHL 5, SHR 5, OR 4, XOR 4, JMPB 4, CMPLT 3, CMPEQ 2, SETB 2,
/// NOP 2, JMP 1. `AND` with a 12-bit immediate masks the upper 20 bits
/// of its destination, a strong silent-maker for high register bits. The mix favours instructions that either *observe*
/// registers (stores, parity set, compares, indirect addressing) or
/// *fully overwrite* them (loads, NOT), which keeps the latent share
/// small, as in the paper's b14 test bench. Memory instructions use
/// register-indirect addressing half the time.
#[must_use]
pub fn viper_program(cycles: usize, seed: u64) -> Testbench {
    let mut rng = SplitMix64::new(seed);
    let mut vectors = Vec::with_capacity(cycles);
    let mut rotate = 0u64;
    for _ in 0..cycles {
        let w = random_instruction_rotating(&mut rng, &mut rotate);
        vectors.push((0..32).map(|i| w >> i & 1 == 1).collect());
    }
    Testbench::new(vectors)
}

/// One weighted-random Viper instruction word.
///
/// Overwriting instructions (`LOAD`, `NOT`) rotate their destination
/// register deterministically, the way hand-written functional test
/// benches sweep the register file; all other fields are drawn from
/// `rng`.
pub fn random_instruction(rng: &mut SplitMix64) -> u32 {
    random_instruction_rotating(rng, &mut 0)
}

/// [`random_instruction`] with an external rotation counter so that a
/// whole program shares one destination-sweep sequence.
pub fn random_instruction_rotating(rng: &mut SplitMix64, rotate: &mut u64) -> u32 {
    const WEIGHTS: [(u64, u32); 16] = [
        (opcode::LOAD, 26),
        (opcode::NOT, 14),
        (opcode::AND, 10),
        (opcode::STORE, 6),
        (opcode::ADD, 6),
        (opcode::SUB, 6),
        (opcode::SHL, 5),
        (opcode::SHR, 5),
        (opcode::OR, 4),
        (opcode::XOR, 4),
        (opcode::JMPB, 4),
        (opcode::CMPLT, 3),
        (opcode::CMPEQ, 2),
        (opcode::SETB, 2),
        (opcode::JMP, 1),
        (opcode::NOP, 2),
    ];
    let total: u32 = WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.below(u64::from(total)) as u32;
    let mut op = opcode::NOP;
    for &(candidate, w) in &WEIGHTS {
        if pick < w {
            op = candidate;
            break;
        }
        pick -= w;
    }
    let dst = if op == opcode::LOAD || op == opcode::NOT {
        *rotate += 1;
        (*rotate - 1) % 4
    } else {
        rng.below(4)
    };
    let src = rng.below(4);
    // Register-mode operands make the source register observable (SETB's
    // parity covers every bit); immediates exercise more operand bits.
    // Compares and SETB therefore prefer register mode.
    let imm_mode = match op {
        opcode::SETB | opcode::CMPEQ | opcode::CMPLT => rng.next_bool_ratio(1, 2),
        _ => rng.next_bool_ratio(5, 8),
    };
    // Indirect addressing observes the address register on the bus.
    let indirect =
        (op == opcode::LOAD || op == opcode::STORE) && rng.next_bool_ratio(1, 4);
    // Small immediates make CMPEQ occasionally true and keep jump targets
    // inside a plausible code region.
    let imm = if op == opcode::JMP || op == opcode::JMPB {
        rng.below(64)
    } else {
        rng.below(1 << 12)
    };
    encode_full(op, dst, src, imm_mode, indirect, imm)
}

/// The canonical b14-reproduction test bench: 160 Viper instruction
/// vectors from the default seed.
#[must_use]
pub fn paper_testbench() -> Testbench {
    viper_program(PAPER_CYCLES, PAPER_SEED)
}

#[cfg(test)]
mod tests {
    use seugrade_sim::CompiledSim;

    use crate::viper::viper;
    use super::*;

    #[test]
    fn program_is_deterministic() {
        assert_eq!(viper_program(50, 1), viper_program(50, 1));
        assert_ne!(viper_program(50, 1), viper_program(50, 2));
    }

    #[test]
    fn paper_testbench_shape() {
        let tb = paper_testbench();
        assert_eq!(tb.num_cycles(), 160);
        assert_eq!(tb.num_inputs(), 32);
        assert_eq!(tb.stimuli_bits(), 5_120);
    }

    #[test]
    fn opcode_mix_is_biased() {
        let mut rng = SplitMix64::new(3);
        let mut loads = 0;
        let mut nops = 0;
        let n = 2000;
        for _ in 0..n {
            let w = random_instruction(&mut rng);
            match u64::from(w >> 28) {
                opcode::LOAD => loads += 1,
                opcode::NOP => nops += 1,
                _ => {}
            }
        }
        // LOAD weight is 26 %; NOP 2 %. Accept generous bands.
        assert!((n * 18 / 100..n * 34 / 100).contains(&loads), "loads={loads}");
        assert!(nops < n * 6 / 100, "nops={nops}");
    }

    #[test]
    fn viper_runs_paper_testbench_with_activity() {
        let n = viper();
        let sim = CompiledSim::new(&n);
        let trace = sim.run_golden(&paper_testbench());
        // The processor must actually do something: addr outputs change
        // and instruction fetches keep pulsing rd.
        let addr_changes = (1..trace.num_cycles())
            .filter(|&t| trace.output_at(t)[..20] != trace.output_at(t - 1)[..20])
            .count();
        assert!(addr_changes > 10, "addr changed only {addr_changes} times");
        let rd_pulses = (0..trace.num_cycles())
            .filter(|&t| trace.output_at(t)[52])
            .count();
        assert!(rd_pulses > 10, "fetches missing");
    }

    #[test]
    fn long_programs_reach_the_write_bus() {
        // STORE is 6 % of the mix; a 640-cycle program (~110
        // instructions) must produce wr pulses.
        let n = viper();
        let sim = CompiledSim::new(&n);
        let trace = sim.run_golden(&viper_program(640, PAPER_SEED));
        let wr_pulses = (0..trace.num_cycles())
            .filter(|&t| trace.output_at(t)[53])
            .count();
        assert!(wr_pulses > 0, "no store ever reached the bus");
    }

    #[test]
    fn random_for_matches_interface() {
        let n = viper();
        let tb = random_for(&n, 10, 7);
        assert_eq!(tb.num_inputs(), 32);
        assert_eq!(tb.num_cycles(), 10);
    }
}
