//! Benchmark circuits for the `seugrade` workspace.
//!
//! The DATE'05 paper evaluates on **b14** from the ITC'99 suite — a subset
//! of the Viper processor with 32 inputs, 54 outputs and 215 flip-flops.
//! The original VHDL is not redistributable here, so this crate provides:
//!
//! - [`viper`] — a Viper-like accumulator processor written in the
//!   `seugrade-rtl` DSL with **exactly** the paper's interface (32/54/215;
//!   asserted by tests). Its fault-grading behaviour is driven by the same
//!   structural ingredients as b14: a wide rarely-observed datapath
//!   (A/X/Y), a highly-observable program counter and memory interface,
//!   and a multi-cycle control FSM.
//! - [`small`] — ITC'99-*style* small FSM benchmarks (b01…b13 interface
//!   shapes) used for fast unit tests and for the gate-level emulation
//!   cross-checks.
//! - [`fixtures`] — circuits parsed from the bundled benchmark netlist
//!   files under `fixtures/` (ISCAS `.bench` and BLIF), imported through
//!   the `seugrade-netlist` ingestion layer.
//! - [`generators`] — parametric circuits (LFSRs, counters, shift
//!   registers, random sequential logic) for sweeps such as the paper's
//!   "state-scan wins when cycles > flip-flops" crossover claim.
//! - [`stimuli`] — deterministic seeded test-bench generation, including
//!   the biased Viper instruction-stream generator.
//! - [`registry`] — name → circuit lookup used by examples and the
//!   benchmark harness.
//!
//! # Example
//!
//! ```
//! use seugrade_circuits::{registry, viper};
//!
//! let cpu = viper::viper();
//! assert_eq!(cpu.num_inputs(), 32);
//! assert_eq!(cpu.num_outputs(), 54);
//! assert_eq!(cpu.num_ffs(), 215);
//!
//! let same = registry::build("viper").expect("registered");
//! assert_eq!(same.num_ffs(), 215);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod generators;
pub mod registry;
pub mod small;
pub mod stimuli;
pub mod viper;
