//! The Viper-like processor (b14 stand-in).
//!
//! ITC'99 b14 is a subset of the RSRE Viper microprocessor: a single-clock
//! accumulator machine with registers A, X, Y, a 20-bit program counter P
//! and a 1-bit comparison flag B, talking to external memory through
//! `addr`/`datai`/`datao`/`rd`/`wr`. This module reimplements that shape
//! from scratch at RT level. The interface matches the paper exactly:
//!
//! | quantity   | paper (b14) | this module |
//! |------------|-------------|-------------|
//! | inputs     | 32          | 32 (`datai[31:0]`) |
//! | outputs    | 54          | 54 (`addr[19:0]`, `datao[31:0]`, `rd`, `wr`) |
//! | flip-flops | 215         | 215 (asserted in tests) |
//!
//! # Instruction set
//!
//! A 32-bit instruction word is fetched from `datai`:
//!
//! ```text
//! [31:28] opcode  [27:26] dst  [25:24] src  [23] imm-mode  [22] indirect
//! [19:0] imm
//! ```
//!
//! Registers are indexed `0=A, 1=X, 2=Y, 3=P`. The ALU operand is
//! `reg[src]`, or the zero-extended 20-bit immediate when bit 23 is set.
//! Memory instructions address `mem[imm]`, or `mem[reg[src][19:0]]` when
//! bit 22 (*indirect*) is set — register-indirect addressing puts the
//! address register on the external bus, which is the dominant
//! observability path of the real Viper.
//!
//! | op | mnemonic | effect |
//! |----|----------|--------|
//! | 0  | `NOP`    | — |
//! | 1  | `ADD`    | `dst += operand` |
//! | 2  | `SUB`    | `dst -= operand` |
//! | 3  | `AND`    | `dst &= operand` |
//! | 4  | `OR`     | `dst |= operand` |
//! | 5  | `XOR`    | `dst ^= operand` |
//! | 6  | `NOT`    | `dst = !operand` |
//! | 7  | `SHL`    | `dst <<= imm[3:0]` (iterative, 1 bit/cycle) |
//! | 8  | `SHR`    | `dst >>= imm[3:0]` (iterative) |
//! | 9  | `CMPEQ`  | `B = (dst == operand)` |
//! | 10 | `CMPLT`  | `B = (dst < operand)` |
//! | 11 | `LOAD`   | `dst = mem[addr]` |
//! | 12 | `STORE`  | `mem[addr] = reg[dst]` |
//! | 13 | `JMPB`   | `if B { P = imm }` |
//! | 14 | `SETB`   | `B = parity(operand)` |
//! | 15 | `JMP`    | `P = imm` |
//!
//! # Micro-architecture
//!
//! An 8-state one-hot FSM sequences fetch (2 cycles), decode (2 cycles),
//! then execute / memory-access / iterative-shift states, exactly the kind
//! of multi-cycle control that makes SEU grading interesting: flips in P,
//! the FSM or the memory-interface registers surface quickly at the
//! outputs, while flips high in A/X/Y may stay latent for the whole run.

use seugrade_netlist::{Netlist, SigId};
use seugrade_rtl::{RtlBuilder, Word};

/// Number of primary inputs (matches b14).
pub const NUM_INPUTS: usize = 32;
/// Number of primary outputs (matches b14).
pub const NUM_OUTPUTS: usize = 54;
/// Number of flip-flops (matches b14).
pub const NUM_FFS: usize = 215;

/// FSM state indices (one-hot bit positions).
mod state {
    pub const FETCH_ADDR: usize = 0;
    pub const FETCH_CAPTURE: usize = 1;
    pub const DECODE1: usize = 2;
    pub const EXECUTE: usize = 3;
    pub const MEM_ADDR: usize = 4;
    pub const MEM_WAIT: usize = 5;
    pub const SHIFT_LOOP: usize = 6;
    pub const DECODE2: usize = 7;
}

/// Opcode values (bits 31:28 of the instruction word).
#[allow(missing_docs)]
pub mod opcode {
    pub const NOP: u64 = 0;
    pub const ADD: u64 = 1;
    pub const SUB: u64 = 2;
    pub const AND: u64 = 3;
    pub const OR: u64 = 4;
    pub const XOR: u64 = 5;
    pub const NOT: u64 = 6;
    pub const SHL: u64 = 7;
    pub const SHR: u64 = 8;
    pub const CMPEQ: u64 = 9;
    pub const CMPLT: u64 = 10;
    pub const LOAD: u64 = 11;
    pub const STORE: u64 = 12;
    pub const JMPB: u64 = 13;
    pub const SETB: u64 = 14;
    pub const JMP: u64 = 15;
}

/// Builds the Viper-like processor netlist.
///
/// The result always has [`NUM_INPUTS`] inputs, [`NUM_OUTPUTS`] outputs
/// and [`NUM_FFS`] flip-flops; `debug_assert`s in this function and unit
/// tests pin those numbers.
#[must_use]
pub fn viper() -> Netlist {
    let mut r = RtlBuilder::new("viper");

    // ---------------- ports ----------------
    let datai = r.input_word("datai", 32);

    // ---------------- architectural registers ----------------
    let areg = r.register("A", 32, 0);
    let xreg = r.register("X", 32, 0);
    let yreg = r.register("Y", 32, 0);
    let preg = r.register("P", 20, 0);
    let breg = r.register_bit("B", false);
    let ir = r.register("IR", 32, 0);
    // memory-interface output registers
    let addr_r = r.register("ADDR", 20, 0);
    let datao_r = r.register("DATAO", 32, 0);
    let rd_r = r.register_bit("RD", false);
    let wr_r = r.register_bit("WR", false);
    // control
    let fsm = r.register("S", 8, 1 << state::FETCH_ADDR);
    let shcnt = r.register("SHCNT", 4, 0);

    let s = |i: usize| fsm.q().bit(i);
    let s_fetch_addr = s(state::FETCH_ADDR);
    let s_fetch_cap = s(state::FETCH_CAPTURE);
    let s_decode1 = s(state::DECODE1);
    let s_decode2 = s(state::DECODE2);
    let s_execute = s(state::EXECUTE);
    let s_mem_addr = s(state::MEM_ADDR);
    let s_mem_wait = s(state::MEM_WAIT);
    let s_shift = s(state::SHIFT_LOOP);

    // ---------------- instruction fields ----------------
    let irq = ir.q();
    let op = irq.slice(28, 32);
    let dst_sel = irq.slice(26, 28);
    let src_sel = irq.slice(24, 26);
    let imm_mode = irq.bit(23);
    let indirect = irq.bit(22);
    let imm20 = irq.slice(0, 20);
    let sh_amount = irq.slice(0, 4);

    let op_hot = r.decode(&op); // 16 one-hot opcode lines
    let is_load = op_hot[opcode::LOAD as usize];
    let is_store = op_hot[opcode::STORE as usize];
    let is_shl = op_hot[opcode::SHL as usize];
    let is_shr = op_hot[opcode::SHR as usize];
    let is_jmp = op_hot[opcode::JMP as usize];
    let is_jmpb = op_hot[opcode::JMPB as usize];
    let is_cmpeq = op_hot[opcode::CMPEQ as usize];
    let is_cmplt = op_hot[opcode::CMPLT as usize];
    let is_setb = op_hot[opcode::SETB as usize];

    let is_mem = r.bit_builder().or2(is_load, is_store);
    let is_shift = r.bit_builder().or2(is_shl, is_shr);
    // ALU-class = everything not memory and not shift (NOP/JMP/CMP flow
    // through EXECUTE with selective write enables).
    let mem_or_shift = r.bit_builder().or2(is_mem, is_shift);
    let is_aluclass = r.bit_builder().not(mem_or_shift);

    // write-to-register opcodes: ADD SUB AND OR XOR NOT
    let is_writeop = {
        let terms = [
            op_hot[opcode::ADD as usize],
            op_hot[opcode::SUB as usize],
            op_hot[opcode::AND as usize],
            op_hot[opcode::OR as usize],
            op_hot[opcode::XOR as usize],
            op_hot[opcode::NOT as usize],
        ];
        r.bit_builder().gate(seugrade_netlist::GateKind::Or, &terms)
    };

    // ---------------- operand network ----------------
    let dst_hot = r.decode(&dst_sel); // [A, X, Y, P]
    let src_hot = r.decode(&src_sel);
    let p32 = r.zext(&preg.q(), 32);
    let regs32 = [areg.q(), xreg.q(), yreg.q(), p32.clone()];
    let dst_val = r.onehot_select(&dst_hot, &regs32);
    let src_val = r.onehot_select(&src_hot, &regs32);
    let imm32 = r.zext(&imm20, 32);
    let operand = r.mux_word(imm_mode, &src_val, &imm32);

    // ---------------- ALU ----------------
    let (add_res, _) = r.add(&dst_val, &operand);
    let (sub_res, sub_borrow) = r.sub(&dst_val, &operand);
    let and_res = r.and(&dst_val, &operand);
    let or_res = r.or(&dst_val, &operand);
    let xor_res = r.xor(&dst_val, &operand);
    let not_res = r.not(&operand);
    let alu_out = {
        let hot = [
            op_hot[opcode::ADD as usize],
            op_hot[opcode::SUB as usize],
            op_hot[opcode::AND as usize],
            op_hot[opcode::OR as usize],
            op_hot[opcode::XOR as usize],
            op_hot[opcode::NOT as usize],
        ];
        r.onehot_select(&hot, &[add_res, sub_res, and_res, or_res, xor_res, not_res])
    };

    // comparison network
    let cmp_eq = r.eq(&dst_val, &operand);
    let parity = r.reduce_xor(&operand);
    let b_next = {
        let hot = [is_cmpeq, is_cmplt, is_setb];
        let vals = [
            Word::from(cmp_eq),
            Word::from(sub_borrow),
            Word::from(parity),
        ];
        r.onehot_select(&hot, &vals)
    };

    // shifter (1 bit per SHIFT_LOOP cycle)
    let shl1 = r.shl_const(&dst_val, 1);
    let shr1 = r.shr_const(&dst_val, 1);
    let shifted = r.mux_word(is_shr, &shl1, &shr1);
    let sh_zero = r.is_zero(&shcnt.q());
    let sh_active = {
        let nz = r.bit_builder().not(sh_zero);
        r.bit_builder().and2(s_shift, nz)
    };

    // ---------------- register write-back ----------------
    // value written in EXECUTE (alu), MEM_WAIT (load) or SHIFT_LOOP.
    let exec_or_shift_val = r.mux_word(s_shift, &alu_out, &shifted);
    let wb_val = r.mux_word(s_mem_wait, &exec_or_shift_val, &datai);

    let exec_write = r.bit_builder().and2(s_execute, is_writeop);
    let load_write = r.bit_builder().and2(s_mem_wait, is_load);
    let wb_any = {
        let b = r.bit_builder();
        let ew_or_lw = b.or2(exec_write, load_write);
        b.or2(ew_or_lw, sh_active)
    };

    for (i, reg) in [&areg, &xreg, &yreg].into_iter().enumerate() {
        let en = r.bit_builder().and2(wb_any, dst_hot[i]);
        r.connect_enabled(reg, en, &wb_val);
    }

    // P: fetch increment, jumps, or write-back when dst == P.
    let (p_inc, _) = r.inc(&preg.q());
    let jmpb_taken = r.bit_builder().and2(is_jmpb, breg.q().bit(0));
    let jump_any = r.bit_builder().or2(is_jmp, jmpb_taken);
    let p_jump = r.bit_builder().and2(s_execute, jump_any);
    let p_wb = r.bit_builder().and2(wb_any, dst_hot[3]);
    let wb20 = wb_val.slice(0, 20);
    let p_data = {
        // priority: fetch-increment < write-back < jump
        let a = r.mux_word(p_wb, &p_inc, &wb20);
        r.mux_word(p_jump, &a, &imm20)
    };
    let p_en = {
        let b = r.bit_builder();
        let e1 = b.or2(s_fetch_cap, p_jump);
        b.or2(e1, p_wb)
    };
    r.connect_enabled(&preg, p_en, &p_data);

    // B flag
    let b_en = {
        let b = r.bit_builder();
        let c = b.or2(is_cmpeq, is_cmplt);
        let c2 = b.or2(c, is_setb);
        b.and2(s_execute, c2)
    };
    r.connect_enabled(&breg, b_en, &b_next);

    // IR capture
    r.connect_enabled(&ir, s_fetch_cap, &datai);

    // shift counter: load in DECODE2 (if shift), decrement while active.
    let one4 = r.constant_word(4, 1);
    let (sh_dec, _) = r.sub(&shcnt.q(), &one4);
    let sh_load = r.bit_builder().and2(s_decode2, is_shift);
    let shcnt_next = r.mux_word(sh_load, &sh_dec, &sh_amount);
    let shcnt_en = r.bit_builder().or2(sh_load, sh_active);
    r.connect_enabled(&shcnt, shcnt_en, &shcnt_next);

    // ---------------- memory interface registers ----------------
    let p20 = preg.q();
    let src20 = src_val.slice(0, 20);
    let mem_addr = r.mux_word(indirect, &imm20, &src20);
    let addr_data = r.mux_word(s_mem_addr, &p20, &mem_addr);
    let addr_en = r.bit_builder().or2(s_fetch_addr, s_mem_addr);
    r.connect_enabled(&addr_r, addr_en, &addr_data);

    // rd: asserted for the cycle after FETCH_ADDR / MEM_ADDR(load)
    let mem_rd = r.bit_builder().and2(s_mem_addr, is_load);
    let rd_next = r.bit_builder().or2(s_fetch_addr, mem_rd);
    r.connect(&rd_r, &Word::from(rd_next));

    let wr_next = r.bit_builder().and2(s_mem_addr, is_store);
    r.connect(&wr_r, &Word::from(wr_next));

    let datao_en = r.bit_builder().and2(s_mem_addr, is_store);
    r.connect_enabled(&datao_r, datao_en, &dst_val);

    // ---------------- FSM next-state ----------------
    let sh_exit = r.bit_builder().and2(s_shift, sh_zero);
    let next_fetch_addr = {
        let b = r.bit_builder();
        let e = b.or2(s_execute, s_mem_wait);
        b.or2(e, sh_exit)
    };
    let next_fetch_cap = s_fetch_addr;
    let next_decode1 = s_fetch_cap;
    let next_decode2 = s_decode1;
    let next_execute = r.bit_builder().and2(s_decode2, is_aluclass);
    let next_mem_addr = r.bit_builder().and2(s_decode2, is_mem);
    let next_mem_wait = s_mem_addr;
    let next_shift = {
        let b = r.bit_builder();
        let enter = b.and2(s_decode2, is_shift);
        b.or2(enter, sh_active)
    };
    let mut next_state_bits = vec![SigId::new(0); 8];
    next_state_bits[state::FETCH_ADDR] = next_fetch_addr;
    next_state_bits[state::FETCH_CAPTURE] = next_fetch_cap;
    next_state_bits[state::DECODE1] = next_decode1;
    next_state_bits[state::DECODE2] = next_decode2;
    next_state_bits[state::EXECUTE] = next_execute;
    next_state_bits[state::MEM_ADDR] = next_mem_addr;
    next_state_bits[state::MEM_WAIT] = next_mem_wait;
    next_state_bits[state::SHIFT_LOOP] = next_shift;
    r.connect(&fsm, &Word::from_bits(next_state_bits));

    // ---------------- outputs ----------------
    r.output_word("addr", &addr_r.q());
    r.output_word("datao", &datao_r.q());
    r.output_bit("rd", rd_r.q().bit(0));
    r.output_bit("wr", wr_r.q().bit(0));

    let netlist = r.finish().expect("viper elaborates to a valid netlist");
    debug_assert_eq!(netlist.num_inputs(), NUM_INPUTS);
    debug_assert_eq!(netlist.num_outputs(), NUM_OUTPUTS);
    debug_assert_eq!(netlist.num_ffs(), NUM_FFS);
    netlist
}

/// Encodes an instruction word with direct (immediate) memory
/// addressing.
///
/// `dst`/`src` index `0=A, 1=X, 2=Y, 3=P`; when `imm_mode` is true the
/// ALU operand is the zero-extended immediate.
///
/// # Panics
///
/// Panics if a field is out of range.
#[must_use]
pub fn encode(op: u64, dst: u64, src: u64, imm_mode: bool, imm: u64) -> u32 {
    encode_full(op, dst, src, imm_mode, false, imm)
}

/// Encodes an instruction word including the register-indirect
/// addressing flag (bit 22) used by `LOAD`/`STORE`.
///
/// # Panics
///
/// Panics if a field is out of range.
#[must_use]
pub fn encode_full(
    op: u64,
    dst: u64,
    src: u64,
    imm_mode: bool,
    indirect: bool,
    imm: u64,
) -> u32 {
    assert!(op < 16 && dst < 4 && src < 4 && imm < (1 << 20));
    let w = (op << 28)
        | (dst << 26)
        | (src << 24)
        | (u64::from(imm_mode) << 23)
        | (u64::from(indirect) << 22)
        | imm;
    w as u32
}

#[cfg(test)]
mod tests {
    use seugrade_sim::{CompiledSim, SimState};

    use super::*;

    struct Harness {
        sim: CompiledSim,
        st: SimState,
    }

    impl Harness {
        fn new() -> Self {
            let n = viper();
            let sim = CompiledSim::new(&n);
            let st = sim.new_state();
            Harness { sim, st }
        }

        fn word_to_vec(w: u32) -> Vec<bool> {
            (0..32).map(|i| w >> i & 1 == 1).collect()
        }

        /// Runs one clock cycle with `datai = w`, returning outputs seen
        /// during the cycle.
        fn cycle(&mut self, w: u32) -> Outputs {
            self.sim.set_inputs(&mut self.st, &Self::word_to_vec(w));
            self.sim.eval(&mut self.st);
            let o = self.sim.outputs_lane(&self.st, 0);
            self.sim.step(&mut self.st);
            Outputs::decode(&o)
        }

        /// Feeds an instruction at the right fetch moment and then idles
        /// (datai = filler) until back in FETCH_ADDR state; returns cycle
        /// count consumed. Assumes current state = FETCH_ADDR.
        fn run_instr(&mut self, instr: u32, mem_data: u32) -> usize {
            // FETCH_ADDR cycle: datai ignored.
            self.cycle(0);
            // FETCH_CAPTURE cycle: instruction is sampled now.
            self.cycle(instr);
            // DECODE1, DECODE2
            self.cycle(0);
            self.cycle(0);
            let mut spent = 4;
            let op = u64::from(instr >> 28);
            match op {
                opcode::LOAD | opcode::STORE => {
                    self.cycle(0); // MEM_ADDR
                    self.cycle(mem_data); // MEM_WAIT samples datai for LOAD
                    spent += 2;
                }
                opcode::SHL | opcode::SHR => {
                    let count = (instr & 0xF) as usize;
                    for _ in 0..=count {
                        self.cycle(0);
                    }
                    spent += count + 1;
                }
                _ => {
                    self.cycle(0); // EXECUTE
                    spent += 1;
                }
            }
            spent
        }

        fn reg(&self, name: &str, width: usize) -> u64 {
            // Registers are observable only through outputs; for tests we
            // read flip-flops directly via their debug-name order: find
            // by running STORE. Simpler: reach into state via ff index
            // ordering (A starts at ff 0).
            let base = match name {
                "A" => 0,
                "X" => 32,
                "Y" => 64,
                "P" => 96,
                "B" => 116,
                _ => panic!("unknown reg {name}"),
            };
            let bits = self.sim.state_lane(&self.st, 0);
            (0..width).fold(0u64, |acc, i| acc | (u64::from(bits[base + i]) << i))
        }
    }

    struct Outputs {
        addr: u64,
        datao: u64,
        rd: bool,
        wr: bool,
    }

    impl Outputs {
        fn decode(o: &[bool]) -> Self {
            let addr = (0..20).fold(0u64, |a, i| a | (u64::from(o[i]) << i));
            let datao = (0..32).fold(0u64, |a, i| a | (u64::from(o[20 + i]) << i));
            Outputs { addr, datao, rd: o[52], wr: o[53] }
        }
    }

    #[test]
    fn interface_matches_b14() {
        let n = viper();
        assert_eq!(n.num_inputs(), NUM_INPUTS);
        assert_eq!(n.num_outputs(), NUM_OUTPUTS);
        assert_eq!(n.num_ffs(), NUM_FFS);
    }

    #[test]
    fn alu_add_and_store_roundtrip() {
        let mut h = Harness::new();
        // A += 0x123 (imm)
        h.run_instr(encode(opcode::ADD, 0, 0, true, 0x123), 0);
        assert_eq!(h.reg("A", 32), 0x123);
        // X += 0x456
        h.run_instr(encode(opcode::ADD, 1, 0, true, 0x456), 0);
        assert_eq!(h.reg("X", 32), 0x456);
        // A += X (reg mode)
        h.run_instr(encode(opcode::ADD, 0, 1, false, 0), 0);
        assert_eq!(h.reg("A", 32), 0x579);
        // STORE A to address 0x7F: watch wr pulse with datao = A.
        // instruction: STORE src=A
        let mut saw_wr = false;
        // replicate run_instr but watch outputs
        let instr = encode(opcode::STORE, 0, 0, true, 0x7F);
        h.cycle(0);
        h.cycle(instr);
        h.cycle(0);
        h.cycle(0);
        let o = h.cycle(0); // MEM_ADDR: registers addr/wr for next cycle
        assert!(!o.wr);
        let o = h.cycle(0); // MEM_WAIT: wr visible
        if o.wr {
            saw_wr = true;
            assert_eq!(o.addr, 0x7F);
            assert_eq!(o.datao, 0x579);
        }
        assert!(saw_wr, "wr never asserted");
    }

    #[test]
    fn sub_and_logic_ops() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::ADD, 0, 0, true, 0xF0F), 0);
        h.run_instr(encode(opcode::SUB, 0, 0, true, 0x00F), 0);
        assert_eq!(h.reg("A", 32), 0xF00);
        h.run_instr(encode(opcode::OR, 0, 0, true, 0x0FF), 0);
        assert_eq!(h.reg("A", 32), 0xFFF);
        h.run_instr(encode(opcode::AND, 0, 0, true, 0xF0), 0);
        assert_eq!(h.reg("A", 32), 0xF0);
        h.run_instr(encode(opcode::XOR, 0, 0, true, 0xFF), 0);
        assert_eq!(h.reg("A", 32), 0x0F);
        // NOT writes ~operand
        h.run_instr(encode(opcode::NOT, 1, 0, true, 0), 0);
        assert_eq!(h.reg("X", 32), 0xFFFF_FFFF);
    }

    #[test]
    fn load_captures_memory_data() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::LOAD, 2, 0, true, 0xABC), 0xDEAD_BEEF);
        assert_eq!(h.reg("Y", 32), 0xDEAD_BEEF);
    }

    #[test]
    fn shifts_are_iterative_but_correct() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::ADD, 0, 0, true, 0b1011), 0);
        h.run_instr(encode(opcode::SHL, 0, 0, true, 4), 0);
        assert_eq!(h.reg("A", 32), 0b1011_0000);
        h.run_instr(encode(opcode::SHR, 0, 0, true, 2), 0);
        assert_eq!(h.reg("A", 32), 0b10_1100);
    }

    #[test]
    fn compare_and_branch() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::ADD, 0, 0, true, 5), 0);
        // B = (A == 5)
        h.run_instr(encode(opcode::CMPEQ, 0, 0, true, 5), 0);
        assert_eq!(h.reg("B", 1), 1);
        let p_before = h.reg("P", 20);
        // JMPB taken: P = 0x100
        h.run_instr(encode(opcode::JMPB, 0, 0, true, 0x100), 0);
        assert_eq!(h.reg("P", 20), 0x100, "p before jump was {p_before}");
        // B = (A < 3) = false; JMPB not taken.
        h.run_instr(encode(opcode::CMPLT, 0, 0, true, 3), 0);
        assert_eq!(h.reg("B", 1), 0);
        let p = h.reg("P", 20);
        h.run_instr(encode(opcode::JMPB, 0, 0, true, 0x55), 0);
        assert_eq!(h.reg("P", 20), p + 1, "not-taken branch only advances");
    }

    #[test]
    fn jmp_unconditional() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::JMP, 0, 0, true, 0xBEEF), 0);
        assert_eq!(h.reg("P", 20), 0xBEEF);
    }

    #[test]
    fn fetch_drives_addr_and_rd() {
        let mut h = Harness::new();
        // Cycle 0 = FETCH_ADDR: registers addr=P(0), rd=1, visible cycle 1.
        h.cycle(0);
        let o = h.cycle(encode(opcode::NOP, 0, 0, false, 0));
        assert!(o.rd, "rd asserted during fetch data cycle");
        assert_eq!(o.addr, 0);
        // After one full NOP (5 cycles total), next fetch addr = 1.
        h.cycle(0);
        h.cycle(0);
        h.cycle(0); // EXECUTE
        h.cycle(0); // FETCH_ADDR again
        let o = h.cycle(0);
        assert!(o.rd);
        assert_eq!(o.addr, 1);
    }

    #[test]
    fn setb_parity() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::SETB, 0, 0, true, 0b111), 0);
        assert_eq!(h.reg("B", 1), 1);
        h.run_instr(encode(opcode::SETB, 0, 0, true, 0b11), 0);
        assert_eq!(h.reg("B", 1), 0);
    }

    #[test]
    fn indirect_load_uses_register_address() {
        let mut h = Harness::new();
        // X = 0x222 (the address), then LOAD A <- mem[X] indirect.
        h.run_instr(encode(opcode::ADD, 1, 0, true, 0x222), 0);
        let instr = encode_full(opcode::LOAD, 0, 1, false, true, 0);
        // Watch the addr bus during the memory access.
        h.cycle(0); // FETCH_ADDR
        h.cycle(instr); // FETCH_CAPTURE
        h.cycle(0); // DECODE1
        h.cycle(0); // DECODE2
        h.cycle(0); // MEM_ADDR registers addr
        let o = h.cycle(0x5555_0001); // MEM_WAIT: addr visible, data sampled
        assert!(o.rd, "indirect load drives rd");
        assert_eq!(o.addr, 0x222, "address came from X");
        assert_eq!(h.reg("A", 32), 0x5555_0001);
    }

    #[test]
    fn indirect_store_writes_dst_register() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::ADD, 0, 0, true, 0xABC), 0); // A = 0xABC (data)
        h.run_instr(encode(opcode::ADD, 2, 0, true, 0x77), 0); // Y = 0x77 (address)
        let instr = encode_full(opcode::STORE, 0, 2, false, true, 0);
        h.cycle(0);
        h.cycle(instr);
        h.cycle(0);
        h.cycle(0);
        h.cycle(0); // MEM_ADDR
        let o = h.cycle(0); // MEM_WAIT: wr + addr + datao visible
        assert!(o.wr);
        assert_eq!(o.addr, 0x77, "address from Y");
        assert_eq!(o.datao, 0xABC, "data from A (the dst register)");
    }

    #[test]
    fn direct_store_still_uses_immediate_address() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::ADD, 1, 0, true, 0xFEED), 0); // X = data
        let instr = encode(opcode::STORE, 1, 0, true, 0x99);
        h.cycle(0);
        h.cycle(instr);
        h.cycle(0);
        h.cycle(0);
        h.cycle(0);
        let o = h.cycle(0);
        assert!(o.wr);
        assert_eq!(o.addr, 0x99);
        assert_eq!(o.datao, 0xFEED);
    }

    #[test]
    fn shift_by_zero_is_identity() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::ADD, 0, 0, true, 0x5A5), 0);
        h.run_instr(encode(opcode::SHL, 0, 0, true, 0), 0);
        assert_eq!(h.reg("A", 32), 0x5A5);
    }

    #[test]
    fn nop_preserves_all_registers() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::ADD, 0, 0, true, 0x111), 0);
        h.run_instr(encode(opcode::ADD, 1, 0, true, 0x222), 0);
        let (a, x, b) = (h.reg("A", 32), h.reg("X", 32), h.reg("B", 1));
        h.run_instr(encode(opcode::NOP, 3, 3, true, 0xFFF), 0);
        assert_eq!(h.reg("A", 32), a);
        assert_eq!(h.reg("X", 32), x);
        assert_eq!(h.reg("B", 1), b);
    }

    #[test]
    fn register_mode_operand_reads_src() {
        let mut h = Harness::new();
        h.run_instr(encode(opcode::ADD, 1, 0, true, 0xF0), 0); // X = 0xF0
        h.run_instr(encode(opcode::ADD, 2, 0, true, 0x0F), 0); // Y = 0x0F
        // A = 0 | X (reg mode, src = X)
        h.run_instr(encode(opcode::OR, 0, 1, false, 0), 0);
        assert_eq!(h.reg("A", 32), 0xF0);
        // A = A ^ Y
        h.run_instr(encode(opcode::XOR, 0, 2, false, 0), 0);
        assert_eq!(h.reg("A", 32), 0xFF);
    }

    #[test]
    fn p_as_alu_destination() {
        let mut h = Harness::new();
        // P = P + 0x10 via ADD dst=P imm — P advances by fetches too; the
        // write-back happens in EXECUTE, after P was already incremented
        // during this instruction's fetch. dst_val reads the incremented P.
        h.run_instr(encode(opcode::ADD, 3, 0, true, 0x10), 0);
        assert_eq!(h.reg("P", 20), 0x11);
    }
}
