//! Multi-tenant throughput measurement: how many campaigns per second
//! (and aggregate faults per second) one daemon sustains as the number
//! of concurrent identical jobs grows.
//!
//! The harness spins an in-process [`Server`] on an
//! ephemeral port with a temp spool, submits `concurrent` copies of the
//! same spec, waits for all of them, and asserts every digest matches
//! the solo reference — a bench run that loses determinism is a failed
//! run, not a fast one.

use std::fmt::Write as _;
use std::time::Instant;

use crate::client::Client;
use crate::json::Value;
use crate::proto::JobSpec;
use crate::server::{Server, ServerConfig};

/// Schema tag stamped into `BENCH_serve.json`.
pub const SERVE_BENCH_SCHEMA: &str = "seugrade-serve-bench/v1";

/// One measured concurrency level.
#[derive(Clone, Debug)]
pub struct ServeBenchRecord {
    /// Circuit graded by every job.
    pub circuit: String,
    /// Worker-pool width of the daemon.
    pub workers: usize,
    /// Number of identical jobs submitted together.
    pub concurrent: usize,
    /// Jobs completed (== `concurrent` on success).
    pub jobs: usize,
    /// Aggregate faults graded across all jobs.
    pub faults: u64,
    /// Wall time from first submit to last completion.
    pub wall_ns: u128,
    /// Completed campaigns per second.
    pub jobs_per_sec: f64,
    /// Aggregate graded faults per second.
    pub faults_per_sec: f64,
    /// Logical cores of the measuring host
    /// ([`seugrade_engine::host_cores`]). Additive
    /// `seugrade-serve-bench/v1` field, appended last.
    pub host_cores: usize,
}

impl ServeBenchRecord {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("circuit", Value::str(self.circuit.clone())),
            ("workers", Value::count(self.workers)),
            ("concurrent", Value::count(self.concurrent)),
            ("jobs", Value::count(self.jobs)),
            ("faults", Value::Num(self.faults as f64)),
            ("wall_ns", Value::Num(self.wall_ns as f64)),
            ("jobs_per_sec", Value::Num(self.jobs_per_sec)),
            ("faults_per_sec", Value::Num(self.faults_per_sec)),
            ("host_cores", Value::count(self.host_cores)),
        ])
    }
}

/// The full report written to `BENCH_serve.json`.
#[derive(Clone, Debug, Default)]
pub struct ServeBenchReport {
    /// One record per concurrency level.
    pub records: Vec<ServeBenchRecord>,
}

impl ServeBenchReport {
    /// Renders the report as pretty-printed JSON (stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{SERVE_BENCH_SCHEMA}\",");
        let _ = writeln!(out, "  \"records\": [");
        for (i, record) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{}", record.to_value().to_line(), comma);
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }
}

/// Runs one concurrency level against a fresh in-process daemon and
/// returns its record.
///
/// # Errors
///
/// Reports daemon/spool/protocol failures, jobs that end in any state
/// other than `done`, and digests that diverge from the solo reference.
///
/// # Panics
///
/// Never — failures are returned as `Err`.
pub fn multi_tenant_level(
    spec: &JobSpec,
    workers: usize,
    concurrent: usize,
) -> Result<ServeBenchRecord, String> {
    let (reference_digest, _) = crate::reference_run(spec)?;
    let spool = std::env::temp_dir().join(format!(
        "seugrade-serve-bench-{}-{}",
        std::process::id(),
        concurrent
    ));
    let _ = std::fs::remove_dir_all(&spool);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        spool: spool.clone(),
    };
    let mut server = Server::bind(&config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let result = run_level(addr, spec, concurrent, reference_digest);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
    let (jobs, faults, wall_ns) = result?;
    let secs = wall_ns as f64 / 1e9;
    Ok(ServeBenchRecord {
        circuit: spec.circuit_label(),
        workers,
        concurrent,
        jobs,
        faults,
        wall_ns,
        jobs_per_sec: if secs > 0.0 { jobs as f64 / secs } else { 0.0 },
        faults_per_sec: if secs > 0.0 { faults as f64 / secs } else { 0.0 },
        host_cores: seugrade_engine::host_cores(),
    })
}

fn run_level(
    addr: std::net::SocketAddr,
    spec: &JobSpec,
    concurrent: usize,
    reference_digest: u64,
) -> Result<(usize, u64, u128), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let start = Instant::now();
    let mut ids = Vec::with_capacity(concurrent);
    for _ in 0..concurrent {
        ids.push(client.submit(spec).map_err(|e| format!("submit: {e}"))?);
    }
    let mut faults = 0u64;
    for id in &ids {
        let snapshot = client
            .wait(id, std::time::Duration::from_secs(600))
            .map_err(|e| format!("wait {id}: {e}"))?;
        let state = snapshot.get("state").and_then(Value::as_str).unwrap_or("?");
        if state != "done" {
            return Err(format!("job {id} ended {state}, expected done"));
        }
        let digest = snapshot
            .get("digest")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("job {id} finished without a digest"))?
            .to_owned();
        let expected = crate::proto::digest_hex(reference_digest);
        if digest != expected {
            return Err(format!("job {id} digest {digest} != solo reference {expected}"));
        }
        faults += snapshot.get("faults_done").and_then(Value::as_u64).unwrap_or(0);
    }
    let wall_ns = start.elapsed().as_nanos();
    Ok((ids.len(), faults, wall_ns))
}

/// Runs the standard 1/4/16-concurrency sweep for one spec.
///
/// # Errors
///
/// Propagates the first failing level.
pub fn multi_tenant_sweep(spec: &JobSpec, workers: usize) -> Result<ServeBenchReport, String> {
    let mut report = ServeBenchReport::default();
    for concurrent in [1usize, 4, 16] {
        report.records.push(multi_tenant_level(spec, workers, concurrent)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_report_renders_valid_json() {
        let report = ServeBenchReport {
            records: vec![ServeBenchRecord {
                circuit: "s27".to_owned(),
                workers: 2,
                concurrent: 4,
                jobs: 4,
                faults: 256,
                wall_ns: 1_000_000,
                jobs_per_sec: 4000.0,
                faults_per_sec: 256_000.0,
                host_cores: 2,
            }],
        };
        let text = report.to_json();
        assert!(text.contains(SERVE_BENCH_SCHEMA));
        // Each record line must itself be parseable JSON.
        let line = text.lines().find(|l| l.contains("\"circuit\"")).unwrap();
        let v = crate::json::parse(line.trim().trim_end_matches(',')).unwrap();
        assert_eq!(v.get("concurrent").and_then(Value::as_usize), Some(4));
        assert_eq!(v.get("host_cores").and_then(Value::as_usize), Some(2));
    }

    #[test]
    fn a_small_sweep_level_matches_the_solo_reference() {
        let mut spec = JobSpec::registry("s27");
        spec.vectors = 16;
        spec.round = 8;
        let record = multi_tenant_level(&spec, 2, 2).unwrap();
        assert_eq!(record.jobs, 2);
        assert!(record.faults > 0);
    }
}
