//! A small blocking client for the `seugrade-serve/v1` protocol —
//! everything `repro -- submit/status/cancel`, the test suites and the
//! multi-tenant bench harness need.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::json::{self, Value};
use crate::proto::JobSpec;

/// What a protocol exchange can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, unexpected EOF).
    Io(io::Error),
    /// The server spoke, but not the protocol we expected.
    Protocol(String),
    /// A structured error response: the request line number the server
    /// attributed it to, plus its message.
    Server {
        /// 1-based request line number on this connection.
        line: usize,
        /// The server's failure message.
        msg: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { line, msg } => {
                write!(f, "server rejected request line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one raw request line and returns the parsed response
    /// value (with `ok:true` already verified).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for structured rejections, otherwise
    /// transport/protocol failures.
    pub fn request_line(&mut self, line: &str) -> Result<Value, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Value, ClientError> {
        let line = self.read_line()?;
        let v = json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let err = v.get("error");
                Err(ClientError::Server {
                    line: err
                        .and_then(|e| e.get("line"))
                        .and_then(Value::as_usize)
                        .unwrap_or(0),
                    msg: err
                        .and_then(|e| e.get("msg"))
                        .and_then(Value::as_str)
                        .unwrap_or("unspecified error")
                        .to_owned(),
                })
            }
            None => Err(ClientError::Protocol(format!("response without ok field: {v:?}"))),
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line)
    }

    fn cmd(&mut self, pairs: Vec<(&str, Value)>) -> Result<Value, ClientError> {
        self.request_line(&Value::obj(pairs).to_line())
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.cmd(vec![("cmd", Value::str("ping"))]).map(|_| ())
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the spec is rejected.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, ClientError> {
        let v = self.cmd(vec![("cmd", Value::str("submit")), ("job", spec.to_value())])?;
        v.get("job")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("submit response without job id".to_owned()))
    }

    /// Snapshots one job (the response's `job` object).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for unknown ids.
    pub fn status(&mut self, job: &str) -> Result<Value, ClientError> {
        let v = self.cmd(vec![("cmd", Value::str("status")), ("job", Value::str(job))])?;
        v.get("job")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("status response without job".to_owned()))
    }

    /// Snapshots every job the daemon knows.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn list(&mut self) -> Result<Vec<Value>, ClientError> {
        let v = self.cmd(vec![("cmd", Value::str("list"))])?;
        Ok(v.get("jobs").and_then(Value::as_arr).unwrap_or_default().to_vec())
    }

    /// Cancels a job cooperatively.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for unknown or already-done jobs.
    pub fn cancel(&mut self, job: &str) -> Result<Value, ClientError> {
        self.cmd(vec![("cmd", Value::str("cancel")), ("job", Value::str(job))])
    }

    /// Re-enqueues a cancelled/failed job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job is not resumable.
    pub fn resume(&mut self, job: &str) -> Result<Value, ClientError> {
        self.cmd(vec![("cmd", Value::str("resume")), ("job", Value::str(job))])
    }

    /// Asks the daemon to stop gracefully.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.cmd(vec![("cmd", Value::str("shutdown"))]).map(|_| ())
    }

    /// Polls `status` until the job reaches a terminal state; returns
    /// the final snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on timeout, otherwise as `status`.
    pub fn wait(&mut self, job: &str, timeout: Duration) -> Result<Value, ClientError> {
        let start = Instant::now();
        loop {
            let snapshot = self.status(job)?;
            match snapshot.get("state").and_then(Value::as_str) {
                Some("done" | "cancelled" | "failed") => return Ok(snapshot),
                _ => {}
            }
            if start.elapsed() > timeout {
                return Err(ClientError::Protocol(format!(
                    "job {job} still not terminal after {timeout:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Subscribes to a job's event stream, invoking `on_event` per
    /// event line, and returns the terminal event
    /// (`done`/`cancelled`/`failed`).
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Io`] with
    /// `UnexpectedEof` when the daemon shuts down mid-stream.
    pub fn stream(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&Value),
    ) -> Result<Value, ClientError> {
        self.cmd(vec![("cmd", Value::str("stream")), ("job", Value::str(job))])?;
        loop {
            let line = self.read_line()?;
            let v = json::parse(line.trim_end())
                .map_err(|e| ClientError::Protocol(format!("unparseable event: {e}")))?;
            on_event(&v);
            if matches!(
                v.get("event").and_then(Value::as_str),
                Some("done" | "cancelled" | "failed")
            ) {
                return Ok(v);
            }
        }
    }
}
