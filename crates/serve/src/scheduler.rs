//! The job queue and the shared worker pool.
//!
//! N daemon workers multiplex any number of campaigns by grading in
//! **rounds**: a worker pops a job, drives one round of
//! [`JobSpec::round`] chunks through
//! `Engine::run_streamed_resumable_with::<CampaignSink>` (which writes
//! the job's spooled checkpoint atomically at the round boundary), and
//! re-enqueues the job at the back of the queue if chunks remain —
//! round-robin fairness across tenants over one pool. Determinism
//! holds because completed chunks always form an exact queue prefix
//! and the sink digest is order-independent: any interleaving of
//! rounds, workers, daemon restarts and resumes reproduces the solo
//! one-shot digest bit-for-bit (`tests/serve_determinism.rs`).
//!
//! The engine (plan + golden trace) is rebuilt per round rather than
//! cached across rounds: a plan borrows its circuit, so caching would
//! need a self-referential job — and one golden replay per round is
//! noise next to the thousands of fault windows the round grades.
//! Queued jobs therefore hold only their netlist and test bench.

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use seugrade_emulation::controller::TimingConfig;
use seugrade_emulation::CampaignSink;
use seugrade_engine::{Engine, ProgressHook, ResumeOptions};
use seugrade_faultsim::GradingSummary;

use crate::job::{build_plan, Job, JobState, JobStatus};
use crate::json::Value;
use crate::proto::{self, JobSpec};
use crate::spool::Spool;

/// The queue, registry and pool shared by workers and connections.
pub(crate) struct SchedCore {
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    jobs: Mutex<Vec<Arc<Job>>>,
    next_id: AtomicU64,
    spool: Spool,
    stopping: AtomicBool,
}

/// The scheduler: owns the worker threads and the shared core.
pub(crate) struct Scheduler {
    core: Arc<SchedCore>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Scans the spool, rebuilds every spooled job (terminal ones as
    /// history, incomplete ones back onto the queue), and starts
    /// `workers` pool threads.
    pub(crate) fn start(spool: Spool, workers: usize) -> io::Result<Scheduler> {
        let core = Arc::new(SchedCore {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            spool,
            stopping: AtomicBool::new(false),
        });
        let mut max_num = 0;
        for spooled in core.spool.scan()? {
            max_num = max_num.max(spooled.num);
            let job = match Job::build(spooled.id.clone(), spooled.spec) {
                Ok(job) => Arc::new(job),
                Err(e) => {
                    eprintln!("spool: cannot rebuild {}: {e}", spooled.id);
                    continue;
                }
            };
            if let Some(result) = &spooled.result {
                restore_terminal_status(&job, result);
            } else {
                // Incomplete: the round loop resumes from job.ckpt if
                // one exists (fresh otherwise) — enqueue and go.
                core.queue.lock().expect("queue lock").push_back(Arc::clone(&job));
            }
            core.jobs.lock().expect("jobs lock").push(job);
        }
        core.next_id.store(max_num + 1, Ordering::SeqCst);

        let handles = (0..workers.max(1))
            .map(|_| {
                let core = Arc::clone(&core);
                thread::spawn(move || worker_loop(&core))
            })
            .collect();
        Ok(Scheduler { core, workers: Mutex::new(handles) })
    }

    /// Validates and enqueues a new job; returns its handle.
    pub(crate) fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, String> {
        let num = self.core.next_id.fetch_add(1, Ordering::SeqCst);
        let id = format!("j{num}");
        let job = Arc::new(Job::build(id.clone(), spec)?);
        self.core
            .spool
            .write_spec(&id, &job.spec)
            .map_err(|e| format!("cannot spool {id}: {e}"))?;
        self.core.jobs.lock().expect("jobs lock").push(Arc::clone(&job));
        self.core.queue.lock().expect("queue lock").push_back(Arc::clone(&job));
        self.core.queue_cv.notify_one();
        Ok(job)
    }

    /// Looks a job up by id.
    pub(crate) fn job(&self, id: &str) -> Option<Arc<Job>> {
        self.core.jobs.lock().expect("jobs lock").iter().find(|j| j.id == id).cloned()
    }

    /// Every job the daemon knows, in submission order.
    pub(crate) fn jobs(&self) -> Vec<Arc<Job>> {
        self.core.jobs.lock().expect("jobs lock").clone()
    }

    /// Cancels a job cooperatively. Queued jobs flip straight to
    /// `Cancelled`; running jobs drain their in-flight round, write a
    /// final checkpoint and transition at the round boundary.
    pub(crate) fn cancel(&self, id: &str) -> Result<JobState, String> {
        let job = self.job(id).ok_or_else(|| format!("unknown job {id:?}"))?;
        let mut flipped = None;
        job.update_status(|st| match st.state {
            JobState::Queued => {
                st.state = JobState::Cancelled;
                flipped = Some(st.clone());
            }
            JobState::Running => job.cancel(),
            _ => {}
        });
        if let Some(st) = flipped {
            job.broadcast_terminal(&st);
            return Ok(JobState::Cancelled);
        }
        let state = job.status().state;
        if state.is_terminal() && state != JobState::Cancelled {
            return Err(format!("job {id} is already {}", state.label()));
        }
        Ok(state)
    }

    /// Re-enqueues a cancelled or failed job; it resumes from its
    /// spooled checkpoint (or restarts from chunk 0 if none exists).
    pub(crate) fn resume(&self, id: &str) -> Result<(), String> {
        let job = self.job(id).ok_or_else(|| format!("unknown job {id:?}"))?;
        let mut ok = false;
        job.update_status(|st| {
            if matches!(st.state, JobState::Cancelled | JobState::Failed) {
                st.state = JobState::Queued;
                st.error = None;
                ok = true;
            }
        });
        if !ok {
            return Err(format!(
                "job {id} is {}; only cancelled or failed jobs resume",
                job.status().state.label()
            ));
        }
        job.refresh_cancel_token();
        self.core.queue.lock().expect("queue lock").push_back(job);
        self.core.queue_cv.notify_one();
        Ok(())
    }

    /// Graceful stop: cancels every non-terminal job (their in-flight
    /// rounds drain and checkpoint), wakes and joins every worker.
    /// After this returns the spool is consistent: every incomplete
    /// job's cursor is at a round boundary, ready for the next daemon
    /// life to resume.
    pub(crate) fn stop(&self) {
        self.core.stopping.store(true, Ordering::SeqCst);
        for job in self.jobs() {
            if !job.status().state.is_terminal() {
                job.cancel();
            }
        }
        self.core.queue_cv.notify_all();
        let handles: Vec<_> = self.workers.lock().expect("workers lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// One pool thread: pop a job, grade one round, requeue if incomplete.
fn worker_loop(core: &Arc<SchedCore>) {
    loop {
        let job = {
            let mut q = core.queue.lock().expect("queue lock");
            loop {
                if core.stopping.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = core
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(200))
                    .expect("queue lock")
                    .0;
            }
        };
        if run_round(core, &job) && !core.stopping.load(Ordering::SeqCst) {
            core.queue.lock().expect("queue lock").push_back(job);
            core.queue_cv.notify_one();
        }
    }
}

/// Grades one round of `job`; returns true when the job should be
/// re-enqueued (more chunks remain and nobody stopped it).
fn run_round(core: &Arc<SchedCore>, job: &Arc<Job>) -> bool {
    // Claim under the status lock: a cancel that already flipped a
    // queued job wins, and the worker skips it.
    let mut claimed = false;
    job.update_status(|st| {
        if st.state == JobState::Queued {
            st.state = JobState::Running;
            claimed = true;
        }
    });
    if !claimed {
        return false;
    }

    // Panic containment mirrors the engine pool: one poisoned round
    // fails one job, never the daemon.
    let outcome = catch_unwind(AssertUnwindSafe(|| grade_round(core, job)));
    job.reset_live_faults();
    match outcome {
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "round panicked".to_owned());
            finalize_failed(core, job, &format!("round panicked: {msg}"));
            false
        }
        Ok(Err(msg)) => {
            finalize_failed(core, job, &msg);
            false
        }
        Ok(Ok(round)) => {
            job.update_status(|st| {
                st.chunks_done = round.chunks_done;
                st.chunks_total = round.chunks_total;
                st.faults_done = round.faults_done;
                st.faults_total = round.faults_total;
                st.summary = round.summary.clone();
                st.digest = Some(round.digest);
                st.wall_ns += round.wall_ns;
            });
            if round.complete {
                finalize_done(core, job, round.timings);
                false
            } else if core.stopping.load(Ordering::SeqCst) {
                // Daemon shutdown: the round drained and checkpointed;
                // leave the job queued-on-disk for the next life.
                job.update_status(|st| st.state = JobState::Queued);
                false
            } else if job.cancel_token().is_cancelled() {
                let mut snapshot = None;
                job.update_status(|st| {
                    st.state = JobState::Cancelled;
                    snapshot = Some(st.clone());
                });
                job.broadcast_terminal(&snapshot.expect("status set above"));
                false
            } else {
                let mut snapshot = None;
                job.update_status(|st| {
                    st.state = JobState::Queued;
                    snapshot = Some(st.clone());
                });
                broadcast_progress(job, &snapshot.expect("status set above"));
                true
            }
        }
    }
}

/// What one graded round reports back to the worker.
struct RoundReport {
    chunks_done: usize,
    chunks_total: usize,
    faults_done: usize,
    faults_total: usize,
    summary: GradingSummary,
    digest: u64,
    wall_ns: u128,
    complete: bool,
    timings: Option<[seugrade_emulation::controller::CampaignTiming; 3]>,
}

/// Builds the plan and engine for `job` and grades one round through
/// the resumable path (checkpointing to the job's spool).
fn grade_round(core: &Arc<SchedCore>, job: &Arc<Job>) -> Result<RoundReport, String> {
    let plan = build_plan(&job.spec, &job.circuit, &job.testbench);
    let engine = Engine::new(&plan);
    let ckpt = core.spool.ckpt_path(&job.id);
    let mut opts = ResumeOptions::checkpoint_to(&ckpt);
    opts.every = job.spec.round;
    opts.limit = Some(job.spec.round);
    opts.resume = ckpt.exists();
    opts.cancel = Some(job.cancel_token());
    let hooked = Arc::clone(job);
    opts.progress = Some(ProgressHook::new(move |ev| {
        hooked.note_live_faults(ev.faults);
        hooked.broadcast(&proto::chunk_event_line(Some(&hooked.id), &ev));
    }));

    let run = engine
        .run_streamed_resumable_with::<CampaignSink>(&plan, &opts)
        .map_err(|e| e.to_string())?;
    let complete = run.is_complete();
    let timings = complete.then(|| {
        run.sink.finish_timings(
            &TimingConfig::default(),
            job.testbench.num_cycles(),
            job.circuit.num_ffs(),
        )
    });
    Ok(RoundReport {
        chunks_done: run.chunks_done,
        chunks_total: run.chunks_total,
        faults_done: run.faults_done,
        faults_total: run.faults_total,
        summary: run.sink.summary().clone(),
        digest: run.sink.digest(),
        wall_ns: run.stats.wall_ns,
        complete,
        timings,
    })
}

/// Marks the job done, writes its terminal `result.json` and tells the
/// subscribers.
fn finalize_done(
    core: &Arc<SchedCore>,
    job: &Arc<Job>,
    timings: Option<[seugrade_emulation::controller::CampaignTiming; 3]>,
) {
    let mut snapshot = None;
    job.update_status(|st| {
        st.state = JobState::Done;
        snapshot = Some(st.clone());
    });
    let status = snapshot.expect("status set above");
    let result = result_value(job, &status, timings.as_ref());
    if let Err(e) = core.spool.write_result(&job.id, &result) {
        eprintln!("spool: cannot write result for {}: {e}", job.id);
    }
    job.broadcast_terminal(&status);
}

/// Marks the job failed, persists the failure and tells the subscribers.
fn finalize_failed(core: &Arc<SchedCore>, job: &Arc<Job>, msg: &str) {
    let mut snapshot = None;
    job.update_status(|st| {
        st.state = JobState::Failed;
        st.error = Some(msg.to_owned());
        snapshot = Some(st.clone());
    });
    let status = snapshot.expect("status set above");
    let result = result_value(job, &status, None);
    if let Err(e) = core.spool.write_result(&job.id, &result) {
        eprintln!("spool: cannot write result for {}: {e}", job.id);
    }
    job.broadcast_terminal(&status);
}

/// The terminal `result.json` document: the snapshot plus cumulative
/// wall time and (for completed jobs) the per-technique autonomous
/// emulation timings out of the job's [`CampaignSink`].
fn result_value(
    job: &Job,
    status: &JobStatus,
    timings: Option<&[seugrade_emulation::controller::CampaignTiming; 3]>,
) -> Value {
    let Value::Obj(mut pairs) = job.snapshot_value() else {
        unreachable!("snapshots are objects");
    };
    pairs.push(("schema".to_owned(), Value::str(proto::SERVE_SCHEMA)));
    pairs.push(("wall_ns".to_owned(), Value::count(status.wall_ns as usize)));
    if let Some(timings) = timings {
        let rows = timings
            .iter()
            .map(|t| {
                Value::obj(vec![
                    ("technique", Value::str(t.technique.label())),
                    ("millis", Value::num(t.millis())),
                    ("us_per_fault", Value::num(t.us_per_fault())),
                    ("total_cycles", Value::count(t.total_cycles as usize)),
                ])
            })
            .collect();
        pairs.push(("techniques".to_owned(), Value::Arr(rows)));
    }
    Value::Obj(pairs)
}

/// A between-rounds progress event for stream subscribers.
fn broadcast_progress(job: &Job, status: &JobStatus) {
    job.broadcast(&proto::job_event_line(
        "state",
        &job.id,
        vec![
            ("state", Value::str(status.state.label())),
            ("chunks_done", Value::count(status.chunks_done)),
            ("chunks_total", Value::count(status.chunks_total)),
            ("faults_done", Value::count(status.faults_done)),
            ("faults_total", Value::count(status.faults_total)),
        ],
    ));
}

/// Restores a terminal job's status from its spooled `result.json`.
fn restore_terminal_status(job: &Job, result: &Value) {
    let count = |key: &str| result.get(key).and_then(Value::as_usize).unwrap_or(0);
    let state = match result.get("state").and_then(Value::as_str) {
        Some("done") => JobState::Done,
        Some("cancelled") => JobState::Cancelled,
        _ => JobState::Failed,
    };
    job.update_status(|st| {
        st.state = state;
        st.chunks_done = count("chunks_done");
        st.chunks_total = count("chunks_total");
        st.faults_done = count("faults_done");
        st.faults_total = count("faults_total").max(st.faults_total);
        st.summary =
            GradingSummary::from_counts(count("failures"), count("latents"), count("silents"));
        st.digest = result
            .get("digest")
            .and_then(Value::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok());
        st.error = result.get("error").and_then(Value::as_str).map(str::to_owned);
        st.wall_ns = count("wall_ns") as u128;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_run;

    fn temp_spool(tag: &str) -> Spool {
        let dir = std::env::temp_dir()
            .join(format!("seugrade-serve-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Spool::open(dir).unwrap()
    }

    fn tiny_spec() -> JobSpec {
        let mut spec = JobSpec::registry("s27");
        spec.vectors = 24;
        spec.round = 4;
        spec
    }

    fn wait_terminal(job: &Arc<Job>) -> JobStatus {
        for _ in 0..2000 {
            let st = job.status();
            if st.state.is_terminal() {
                return st;
            }
            thread::sleep(Duration::from_millis(5));
        }
        panic!("job {} never reached a terminal state", job.id);
    }

    #[test]
    fn one_job_reproduces_the_solo_digest() {
        let spool = temp_spool("solo");
        let root = spool.root().to_path_buf();
        let sched = Scheduler::start(spool, 2).unwrap();
        let job = sched.submit(tiny_spec()).unwrap();
        let st = wait_terminal(&job);
        assert_eq!(st.state, JobState::Done);
        let (digest, summary) = reference_run(&tiny_spec()).unwrap();
        assert_eq!(st.digest, Some(digest));
        assert_eq!(st.summary, summary);
        assert!(root.join(&job.id).join("result.json").exists());
        sched.stop();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cancel_then_resume_completes_to_the_same_digest() {
        let spool = temp_spool("cancel");
        let root = spool.root().to_path_buf();
        let sched = Scheduler::start(spool, 1).unwrap();
        let mut spec = tiny_spec();
        spec.round = 1; // many short rounds: plenty of cancel windows
        let job = sched.submit(spec.clone()).unwrap();
        let _ = sched.cancel(&job.id);
        let st = wait_terminal(&job);
        assert_eq!(st.state, JobState::Cancelled);
        sched.resume(&job.id).unwrap();
        let st = wait_terminal(&job);
        assert_eq!(st.state, JobState::Done);
        let (digest, _) = reference_run(&spec).unwrap();
        assert_eq!(st.digest, Some(digest));
        sched.stop();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bad_submit_is_an_error_not_a_job() {
        let spool = temp_spool("bad");
        let root = spool.root().to_path_buf();
        let sched = Scheduler::start(spool, 1).unwrap();
        assert!(sched.submit(JobSpec::registry("no-such-circuit")).is_err());
        assert!(sched.jobs().is_empty());
        sched.stop();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stop_respools_incomplete_jobs_and_restart_finishes_them() {
        let spool = temp_spool("restart");
        let root = spool.root().to_path_buf();
        let sched = Scheduler::start(spool, 1).unwrap();
        let mut spec = tiny_spec();
        spec.round = 1;
        let job = sched.submit(spec.clone()).unwrap();
        // Let at least one round land, then stop the daemon mid-flight.
        for _ in 0..2000 {
            if job.status().chunks_done > 0 || job.status().state.is_terminal() {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        sched.stop();
        drop(sched);

        let sched = Scheduler::start(Spool::open(&root).unwrap(), 1).unwrap();
        let job = sched.job(&job.id).expect("respooled job");
        let st = wait_terminal(&job);
        assert_eq!(st.state, JobState::Done);
        let (digest, _) = reference_run(&spec).unwrap();
        assert_eq!(st.digest, Some(digest), "restart must resume to the solo digest");
        // A second restart sees the terminal result, not a fresh run.
        sched.stop();
        let sched = Scheduler::start(Spool::open(&root).unwrap(), 1).unwrap();
        let job = sched.job(&job.id).expect("terminal job listed");
        assert_eq!(job.status().state, JobState::Done);
        assert_eq!(job.status().digest, Some(digest));
        sched.stop();
        std::fs::remove_dir_all(&root).unwrap();
    }
}
