//! The per-job spool: one directory per job under the daemon's spool
//! root, every file written atomically (sibling temp + `rename`, the
//! `resume.rs` discipline) so a crash or SIGKILL never leaves a torn
//! file behind.
//!
//! ```text
//! <spool>/j7/job.json      the submitted spec (written once, at submit)
//! <spool>/j7/job.ckpt      the engine checkpoint (written every round)
//! <spool>/j7/result.json   the terminal verdict (written once, at the end)
//! ```
//!
//! A daemon restart [`scan`](Spool::scan)s the root: a job with a
//! `result.json` is terminal history; one with only a checkpoint (or
//! only a spec) is re-enqueued and resumes from its cursor — the
//! restart-survival contract `tests/serve_determinism.rs` enforces.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::{self, Value};
use crate::proto::{JobSpec, SERVE_SCHEMA};

/// The daemon's spool directory.
#[derive(Clone, Debug)]
pub struct Spool {
    root: PathBuf,
}

/// One job found on disk by [`Spool::scan`].
#[derive(Debug)]
pub struct SpooledJob {
    /// Job id (`j<N>`, the directory name).
    pub id: String,
    /// Numeric part of the id (ids continue from the maximum + 1).
    pub num: u64,
    /// The spec parsed back out of `job.json`.
    pub spec: JobSpec,
    /// True when an engine checkpoint exists (the job ran at least one
    /// round before the daemon stopped).
    pub has_ckpt: bool,
    /// The parsed `result.json`, for jobs that reached a terminal state.
    pub result: Option<Value>,
}

impl Spool {
    /// Opens (creating if missing) a spool rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Spool> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Spool { root })
    }

    /// The spool root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of one job.
    #[must_use]
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// The engine checkpoint path of one job.
    #[must_use]
    pub fn ckpt_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("job.ckpt")
    }

    /// The spec path of one job.
    #[must_use]
    pub fn spec_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("job.json")
    }

    /// The terminal-result path of one job.
    #[must_use]
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("result.json")
    }

    /// Persists a freshly submitted spec (atomic; creates the job dir).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_spec(&self, id: &str, spec: &JobSpec) -> io::Result<()> {
        fs::create_dir_all(self.job_dir(id))?;
        let doc = Value::obj(vec![
            ("schema", Value::str(SERVE_SCHEMA)),
            ("id", Value::str(id)),
            ("job", spec.to_value()),
        ]);
        write_atomic(&self.spec_path(id), &doc.to_line())
    }

    /// Persists a terminal result document (atomic).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_result(&self, id: &str, result: &Value) -> io::Result<()> {
        fs::create_dir_all(self.job_dir(id))?;
        write_atomic(&self.result_path(id), &result.to_line())
    }

    /// Scans the spool for jobs left by previous daemon lives, sorted
    /// by job number. Unreadable or malformed entries are skipped with
    /// a note on stderr rather than failing the whole restart — one
    /// corrupted spec must not strand every other spooled job.
    ///
    /// # Errors
    ///
    /// Propagates a failure to read the root directory itself.
    pub fn scan(&self) -> io::Result<Vec<SpooledJob>> {
        let mut jobs = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let id = entry.file_name().to_string_lossy().into_owned();
            let Some(num) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) else {
                continue;
            };
            match self.load_one(&id, num) {
                Ok(job) => jobs.push(job),
                Err(e) => eprintln!("spool: skipping {id}: {e}"),
            }
        }
        jobs.sort_by_key(|j| j.num);
        Ok(jobs)
    }

    fn load_one(&self, id: &str, num: u64) -> Result<SpooledJob, String> {
        let text = fs::read_to_string(self.spec_path(id))
            .map_err(|e| format!("cannot read job.json: {e}"))?;
        let doc = json::parse(text.trim_end()).map_err(|e| format!("job.json: {e}"))?;
        let spec_value = doc.get("job").ok_or("job.json has no `job` object")?;
        let spec = JobSpec::from_value(spec_value).map_err(|e| format!("job.json: {e}"))?;
        let has_ckpt = self.ckpt_path(id).exists();
        let result = match fs::read_to_string(self.result_path(id)) {
            Ok(text) => {
                Some(json::parse(text.trim_end()).map_err(|e| format!("result.json: {e}"))?)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("cannot read result.json: {e}")),
        };
        Ok(SpooledJob { id: id.to_owned(), num, spec, has_ckpt, result })
    }
}

/// Writes `text` (plus a trailing newline) via a sibling temp file and
/// an atomic `rename` — a reader never observes a torn file.
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, format!("{text}\n"))?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("seugrade-serve-spool-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spec_roundtrips_through_the_spool() {
        let root = temp_root("spec");
        let spool = Spool::open(&root).unwrap();
        let mut spec = JobSpec::registry("s27");
        spec.sample = Some(64);
        spool.write_spec("j3", &spec).unwrap();
        let scanned = spool.scan().unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].id, "j3");
        assert_eq!(scanned[0].num, 3);
        assert_eq!(scanned[0].spec, spec);
        assert!(!scanned[0].has_ckpt);
        assert!(scanned[0].result.is_none());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scan_sorts_by_number_and_skips_foreign_dirs() {
        let root = temp_root("sort");
        let spool = Spool::open(&root).unwrap();
        for id in ["j10", "j2"] {
            spool.write_spec(id, &JobSpec::registry("s27")).unwrap();
        }
        fs::create_dir_all(root.join("not-a-job")).unwrap();
        // A torn directory (no job.json) is skipped, not fatal.
        fs::create_dir_all(root.join("j99")).unwrap();
        let ids: Vec<String> = spool.scan().unwrap().into_iter().map(|j| j.id).collect();
        assert_eq!(ids, ["j2", "j10"]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn results_mark_jobs_terminal() {
        let root = temp_root("result");
        let spool = Spool::open(&root).unwrap();
        spool.write_spec("j1", &JobSpec::registry("s27")).unwrap();
        let result = Value::obj(vec![("state", Value::str("done"))]);
        spool.write_result("j1", &result).unwrap();
        let scanned = spool.scan().unwrap();
        assert_eq!(
            scanned[0].result.as_ref().and_then(|r| r.get("state")).and_then(Value::as_str),
            Some("done")
        );
        // Atomicity leftovers: no .tmp sibling survives a completed write.
        assert!(!spool.result_path("j1").with_extension("tmp").exists());
        fs::remove_dir_all(&root).unwrap();
    }
}
