//! The daemon: a `std::net::TcpListener` accept loop, one thread per
//! connection, one scheduler shared by all of them.
//!
//! Everything polls — the listener is non-blocking and connection
//! reads carry a short timeout — so a shutdown request (protocol
//! `shutdown`, SIGINT/SIGTERM via the CLI's cancel token, or a test
//! calling [`Server::shutdown`]) is observed within a poll interval by
//! every thread: the accept loop stops, in-flight rounds drain and
//! write final checkpoints, workers join, and the spool is left
//! consistent. A hostile or hung client can therefore never wedge the
//! daemon's exit.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use seugrade_engine::CancelToken;

use crate::json::Value;
use crate::proto::{self, Request};
use crate::scheduler::Scheduler;
use crate::spool::Spool;

/// Default listen address of `repro -- serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7463";

/// Default worker-pool width.
pub const DEFAULT_WORKERS: usize = 2;

/// Hard cap on one request line; a longer line is rejected with a
/// structured error and the connection closes (there is no way to
/// resynchronize). Generous because inline netlists travel in-line.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024 * 1024;

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Worker-pool width — how many campaign rounds run concurrently.
    pub workers: usize,
    /// Spool root for per-job checkpoints, specs and results.
    pub spool: PathBuf,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: DEFAULT_ADDR.to_owned(),
            workers: DEFAULT_WORKERS,
            spool: PathBuf::from("serve-spool"),
        }
    }
}

/// Shared by the accept loop and every connection thread.
struct Daemon {
    scheduler: Scheduler,
    shutdown: AtomicBool,
}

impl Daemon {
    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running daemon. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops it gracefully.
pub struct Server {
    daemon: Arc<Daemon>,
    accept: Option<thread::JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds the listener, scans the spool (resuming every incomplete
    /// spooled job) and starts the worker pool and accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind and spool I/O failures.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let spool = Spool::open(&config.spool)?;
        let scheduler = Scheduler::start(spool, config.workers)?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let daemon = Arc::new(Daemon { scheduler, shutdown: AtomicBool::new(false) });
        let accept_daemon = Arc::clone(&daemon);
        let accept = thread::spawn(move || accept_loop(&listener, &accept_daemon));
        Ok(Server { daemon, accept: Some(accept), local_addr })
    }

    /// The bound address (the actual port when `addr` asked for `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Raises the shutdown flag without blocking (the accept loop,
    /// connections and workers observe it within a poll interval).
    pub fn request_shutdown(&self) {
        self.daemon.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested from any side.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.daemon.shutdown_requested()
    }

    /// Blocks until shutdown is requested — by a protocol `shutdown`
    /// command or by `external` (the CLI's SIGINT/SIGTERM token)
    /// tripping. Does not stop the daemon; call
    /// [`shutdown`](Server::shutdown) next.
    pub fn serve_until(&self, external: &CancelToken) {
        while !self.daemon.shutdown_requested() && !external.is_cancelled() {
            thread::sleep(POLL);
        }
    }

    /// Graceful stop: cancels every in-flight job cooperatively (each
    /// drains its round and writes a final atomic checkpoint), joins
    /// the workers and the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.request_shutdown();
        self.daemon.scheduler.stop();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, daemon: &Arc<Daemon>) {
    loop {
        if daemon.shutdown_requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(daemon);
                thread::spawn(move || handle_connection(&daemon, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// Reads newline-delimited requests off one connection with a bounded
/// buffer and a read timeout, so shutdown is never blocked on a silent
/// peer.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum ReadLine {
    Line(Vec<u8>),
    Eof,
    TooLong,
    Shutdown,
}

impl LineReader {
    fn next(&mut self, daemon: &Daemon) -> ReadLine {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return ReadLine::Line(line);
            }
            if self.buf.len() > MAX_REQUEST_BYTES {
                return ReadLine::TooLong;
            }
            if daemon.shutdown_requested() {
                return ReadLine::Shutdown;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadLine::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => return ReadLine::Eof,
            }
        }
    }
}

fn handle_connection(daemon: &Arc<Daemon>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader { stream, buf: Vec::new() };
    let mut line_no = 0usize;
    loop {
        let line = match reader.next(daemon) {
            ReadLine::Line(line) => line,
            ReadLine::Eof | ReadLine::Shutdown => return,
            ReadLine::TooLong => {
                let msg =
                    format!("request line exceeds {MAX_REQUEST_BYTES} bytes; closing connection");
                let _ = send(&mut writer, &proto::err_response(line_no + 1, &msg));
                return;
            }
        };
        line_no += 1;
        let Ok(text) = String::from_utf8(line) else {
            if send(&mut writer, &proto::err_response(line_no, "request is not valid UTF-8"))
                .is_err()
            {
                return;
            }
            continue;
        };
        if text.trim().is_empty() {
            // Blank keep-alive lines are tolerated and not numbered as
            // requests.
            line_no -= 1;
            continue;
        }
        if !dispatch(daemon, &text, line_no, &mut writer) {
            return;
        }
    }
}

/// Handles one request line; returns false when the connection should
/// close (write failure, or a stream that ended at shutdown).
fn dispatch(daemon: &Arc<Daemon>, line: &str, line_no: usize, writer: &mut TcpStream) -> bool {
    let request = match proto::parse_request(line) {
        Ok(request) => request,
        Err(e) => return send(writer, &proto::err_response(line_no, &e.msg)).is_ok(),
    };
    let response = match request {
        Request::Ping => proto::ok_response(vec![("pong", Value::Bool(true))]),
        Request::Submit(spec) => match daemon.scheduler.submit(*spec) {
            Ok(job) => proto::ok_response(vec![("job", Value::str(job.id.clone()))]),
            Err(msg) => proto::err_response(line_no, &msg),
        },
        Request::Status { job } => match daemon.scheduler.job(&job) {
            Some(job) => proto::ok_response(vec![("job", job.snapshot_value())]),
            None => proto::err_response(line_no, &format!("unknown job {job:?}")),
        },
        Request::List => {
            let jobs = daemon.scheduler.jobs().iter().map(|j| j.snapshot_value()).collect();
            proto::ok_response(vec![("jobs", Value::Arr(jobs))])
        }
        Request::Cancel { job } => match daemon.scheduler.cancel(&job) {
            Ok(state) => proto::ok_response(vec![
                ("job", Value::str(job)),
                ("state", Value::str(state.label())),
            ]),
            Err(msg) => proto::err_response(line_no, &msg),
        },
        Request::Resume { job } => match daemon.scheduler.resume(&job) {
            Ok(()) => proto::ok_response(vec![
                ("job", Value::str(job)),
                ("state", Value::str("queued")),
            ]),
            Err(msg) => proto::err_response(line_no, &msg),
        },
        Request::Shutdown => {
            let response = proto::ok_response(vec![("stopping", Value::Bool(true))]);
            let sent = send(writer, &response).is_ok();
            daemon.shutdown.store(true, Ordering::SeqCst);
            return sent;
        }
        Request::Stream { job } => {
            let Some(job) = daemon.scheduler.job(&job) else {
                let msg = format!("unknown job {job:?}");
                return send(writer, &proto::err_response(line_no, &msg)).is_ok();
            };
            if send(
                writer,
                &proto::ok_response(vec![("streaming", Value::str(job.id.clone()))]),
            )
            .is_err()
            {
                return false;
            }
            return stream_events(daemon, &job, writer);
        }
    };
    send(writer, &response).is_ok()
}

/// Forwards a job's event lines until the job reaches a terminal state
/// (its channel closes), the client hangs up, or the daemon shuts
/// down. Returns whether the connection may continue in request mode.
fn stream_events(daemon: &Daemon, job: &crate::job::Job, writer: &mut TcpStream) -> bool {
    let rx = job.subscribe();
    loop {
        match rx.recv_timeout(POLL) {
            Ok(line) => {
                if send(writer, &line).is_err() {
                    return false;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if daemon.shutdown_requested() {
                    return false;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return true,
        }
    }
}

fn send(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
