//! The `seugrade-serve/v1` wire grammar: requests, responses, events.
//!
//! One JSON object per line in both directions. Every server line
//! carries `"schema":"seugrade-serve/v1"`; responses carry `"ok"`
//! (`true`/`false`), failures a structured `"error"` object with the
//! 1-based request **line number** of the offending line on its
//! connection and a message — mirroring the line-numbered
//! `ResumeError`s of the checkpoint format. A malformed request is
//! answered and the connection stays open; hostile bytes never panic
//! the daemon (`tests/hostile_inputs.rs` enforces this). The normative
//! grammar lives in `docs/PROTOCOL.md`.

use std::fmt;

use seugrade_engine::ProgressEvent;
use seugrade_faultsim::{Collapse, FaultClass, GradingSummary};
use seugrade_netlist::SourceFormat;
use seugrade_sim::TracePolicy;

use crate::json::{self, Value};

/// Schema tag on every server-emitted line; bump on breaking changes.
pub const SERVE_SCHEMA: &str = "seugrade-serve/v1";

/// Default number of test-bench vectors when a job omits `vectors`.
pub const DEFAULT_VECTORS: usize = 100;

/// Default test-bench / sampling seed when a job omits `seed`.
pub const DEFAULT_SEED: u64 = 42;

/// Default chunks per scheduling round (and per checkpoint write).
pub const DEFAULT_ROUND: usize = 64;

// --------------------------------------------------------------------
// Job specification

/// Where a job's circuit comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitSource {
    /// A name in the bundled [`seugrade_circuits::registry`].
    Registry(String),
    /// Inline netlist text in one of the importable formats.
    Inline {
        /// Source grammar of `source`.
        format: SourceFormat,
        /// The netlist text itself.
        source: String,
    },
}

/// One campaign job, as submitted over the protocol and spooled to
/// disk. The same spec graded solo through the engine produces the
/// same verdict digest — the multi-tenant determinism contract.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The circuit to grade.
    pub circuit: CircuitSource,
    /// Test-bench length in cycles (seeded random vectors).
    pub vectors: usize,
    /// Seed for the test bench and (when sampling) the fault sample.
    pub seed: u64,
    /// `Some(n)`: grade a seeded uniform sample of `n` faults instead
    /// of the exhaustive `flip-flops × cycles` space.
    pub sample: Option<usize>,
    /// Golden-trace storage policy.
    pub trace_policy: TracePolicy,
    /// Early fault collapse on (`Early`) or off (`Horizon`).
    pub collapse: Collapse,
    /// Engine worker threads while a round of this job runs.
    pub threads: usize,
    /// Chunks per scheduling round; also the checkpoint interval.
    pub round: usize,
}

impl JobSpec {
    /// A spec for a registry circuit with every knob at its default.
    #[must_use]
    pub fn registry(name: impl Into<String>) -> Self {
        JobSpec {
            circuit: CircuitSource::Registry(name.into()),
            vectors: DEFAULT_VECTORS,
            seed: DEFAULT_SEED,
            sample: None,
            trace_policy: TracePolicy::Dense,
            collapse: Collapse::Early,
            threads: 1,
            round: DEFAULT_ROUND,
        }
    }

    /// A short human label for the circuit: its registry name, or
    /// `inline:<format>` for inline netlists.
    #[must_use]
    pub fn circuit_label(&self) -> String {
        match &self.circuit {
            CircuitSource::Registry(name) => name.clone(),
            CircuitSource::Inline { format, .. } => format!("inline:{}", format.label()),
        }
    }

    /// Serializes the spec as the protocol's `job` object.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut pairs = Vec::new();
        match &self.circuit {
            CircuitSource::Registry(name) => pairs.push(("circuit", Value::str(name.clone()))),
            CircuitSource::Inline { format, source } => pairs.push((
                "netlist",
                Value::obj(vec![
                    ("format", Value::str(format.label())),
                    ("source", Value::str(source.clone())),
                ]),
            )),
        }
        pairs.push(("vectors", Value::count(self.vectors)));
        pairs.push(("seed", Value::count(self.seed as usize)));
        if let Some(n) = self.sample {
            pairs.push(("sample", Value::count(n)));
        }
        pairs.push(("trace_policy", Value::str(self.trace_policy.label())));
        pairs.push(("collapse", Value::str(self.collapse.label())));
        pairs.push(("threads", Value::count(self.threads)));
        pairs.push(("round", Value::count(self.round)));
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Parses the protocol's `job` object back into a spec.
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] naming the offending field; never a panic.
    pub fn from_value(v: &Value) -> Result<JobSpec, ProtoError> {
        let bad = |msg: String| ProtoError { msg };
        if !matches!(v, Value::Obj(_)) {
            return Err(bad("job must be an object".to_owned()));
        }
        let circuit = match (v.get("circuit"), v.get("netlist")) {
            (Some(name), None) => CircuitSource::Registry(
                name.as_str()
                    .ok_or_else(|| bad("job.circuit must be a registry name string".to_owned()))?
                    .to_owned(),
            ),
            (None, Some(inline)) => {
                let format_label = inline
                    .get("format")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("job.netlist.format must be a string".to_owned()))?;
                let format = SourceFormat::from_label(format_label).ok_or_else(|| {
                    bad(format!(
                        "job.netlist.format expects bench|blif|snl|verilog|vhdl, got {format_label:?}"
                    ))
                })?;
                let source = inline
                    .get("source")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("job.netlist.source must be a string".to_owned()))?;
                CircuitSource::Inline { format, source: source.to_owned() }
            }
            (Some(_), Some(_)) => {
                return Err(bad("job carries both circuit and netlist; pick one".to_owned()))
            }
            (None, None) => {
                return Err(bad("job needs a circuit (registry name) or netlist".to_owned()))
            }
        };
        let count_field = |key: &str, default: usize| -> Result<usize, ProtoError> {
            match v.get(key) {
                None => Ok(default),
                Some(n) => n
                    .as_usize()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| bad(format!("job.{key} must be a positive integer"))),
            }
        };
        let vectors = count_field("vectors", DEFAULT_VECTORS)?;
        let seed = match v.get("seed") {
            None => DEFAULT_SEED,
            Some(n) => n
                .as_u64()
                .ok_or_else(|| bad("job.seed must be a non-negative integer".to_owned()))?,
        };
        let sample = match v.get("sample") {
            None => None,
            Some(_) => Some(count_field("sample", 1)?),
        };
        let trace_policy = match v.get("trace_policy") {
            None => TracePolicy::Dense,
            Some(p) => {
                let label = p
                    .as_str()
                    .ok_or_else(|| bad("job.trace_policy must be a string".to_owned()))?;
                TracePolicy::from_label(label).ok_or_else(|| {
                    bad(format!("job.trace_policy expects dense|checkpoint:<K>, got {label:?}"))
                })?
            }
        };
        let collapse = match v.get("collapse") {
            None => Collapse::Early,
            Some(c) => {
                let label =
                    c.as_str().ok_or_else(|| bad("job.collapse must be a string".to_owned()))?;
                Collapse::from_label(label)
                    .ok_or_else(|| bad(format!("job.collapse expects on|off, got {label:?}")))?
            }
        };
        let threads = count_field("threads", 1)?;
        let round = count_field("round", DEFAULT_ROUND)?;
        Ok(JobSpec { circuit, vectors, seed, sample, trace_policy, collapse, threads, round })
    }
}

// --------------------------------------------------------------------
// Requests

/// A parsed client request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a new campaign job.
    Submit(Box<JobSpec>),
    /// Snapshot one job.
    Status {
        /// Job id, e.g. `j3`.
        job: String,
    },
    /// Snapshot every job the daemon knows.
    List,
    /// Switch this connection to the job's event stream until the job
    /// reaches a terminal state.
    Stream {
        /// Job id.
        job: String,
    },
    /// Cooperatively cancel a job (its spooled checkpoint survives).
    Cancel {
        /// Job id.
        job: String,
    },
    /// Re-enqueue a cancelled (or failed-but-spooled) job; it resumes
    /// from its per-job checkpoint.
    Resume {
        /// Job id.
        job: String,
    },
    /// Gracefully stop the daemon: cancel in-flight jobs, write final
    /// checkpoints, exit 0.
    Shutdown,
}

/// A protocol-level failure: the message of a structured error
/// response. The connection layer adds the request line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong with the request.
    pub msg: String,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ProtoError {}

/// Parses one request line.
///
/// # Errors
///
/// Every malformed line — invalid JSON, a non-object, a missing or
/// unknown `cmd`, bad fields — is a [`ProtoError`] with a descriptive
/// message; hostile input never panics.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = json::parse(line).map_err(|e| ProtoError { msg: e.to_string() })?;
    if !matches!(v, Value::Obj(_)) {
        return Err(ProtoError { msg: "request must be a JSON object".to_owned() });
    }
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtoError { msg: "request needs a string `cmd` field".to_owned() })?;
    let job_field = || -> Result<String, ProtoError> {
        v.get("job")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ProtoError { msg: format!("`{cmd}` needs a string `job` id") })
    };
    match cmd {
        "ping" => Ok(Request::Ping),
        "list" => Ok(Request::List),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let spec = v
                .get("job")
                .ok_or_else(|| ProtoError { msg: "`submit` needs a `job` object".to_owned() })?;
            Ok(Request::Submit(Box::new(JobSpec::from_value(spec)?)))
        }
        "status" => Ok(Request::Status { job: job_field()? }),
        "stream" => Ok(Request::Stream { job: job_field()? }),
        "cancel" => Ok(Request::Cancel { job: job_field()? }),
        "resume" => Ok(Request::Resume { job: job_field()? }),
        other => Err(ProtoError {
            msg: format!(
                "unknown cmd {other:?}; expected ping|submit|status|list|stream|cancel|resume|shutdown"
            ),
        }),
    }
}

// --------------------------------------------------------------------
// Responses and events

/// A successful response line: `schema`, `ok:true`, then `fields`.
#[must_use]
pub fn ok_response(fields: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![("schema", Value::str(SERVE_SCHEMA)), ("ok", Value::Bool(true))];
    pairs.extend(fields);
    Value::obj(pairs).to_line()
}

/// A structured error response line carrying the 1-based request line
/// number on this connection and the failure message.
#[must_use]
pub fn err_response(line: usize, msg: &str) -> String {
    Value::obj(vec![
        ("schema", Value::str(SERVE_SCHEMA)),
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::obj(vec![("line", Value::count(line)), ("msg", Value::str(msg))]),
        ),
    ])
    .to_line()
}

/// Formats a verdict digest the way every schema in this workspace
/// spells it: 16 lowercase hex digits.
#[must_use]
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Shared event serializer for per-chunk engine progress — used both by
/// the daemon (tagged with a job id) and by `repro -- grade --progress
/// json` (untagged, on stderr). One line, no trailing newline.
#[must_use]
pub fn chunk_event_line(job: Option<&str>, ev: &ProgressEvent) -> String {
    let mut pairs = vec![
        ("schema", Value::str(SERVE_SCHEMA)),
        ("type", Value::str("event")),
        ("event", Value::str("chunk")),
    ];
    if let Some(id) = job {
        pairs.push(("job", Value::str(id)));
    }
    pairs.push(("shard", Value::count(ev.shard)));
    pairs.push(("faults", Value::count(ev.faults)));
    pairs.extend(summary_fields(&ev.summary));
    Value::obj(pairs).to_line()
}

/// The three per-class tally fields shared by events and snapshots.
fn summary_fields(summary: &GradingSummary) -> Vec<(&'static str, Value)> {
    vec![
        ("failures", Value::count(summary.count(FaultClass::Failure))),
        ("latents", Value::count(summary.count(FaultClass::Latent))),
        ("silents", Value::count(summary.count(FaultClass::Silent))),
    ]
}

/// A job-scoped event line of kind `event` with extra `fields`.
#[must_use]
pub fn job_event_line(event: &str, job: &str, fields: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![
        ("schema", Value::str(SERVE_SCHEMA)),
        ("type", Value::str("event")),
        ("event", Value::str(event)),
        ("job", Value::str(job)),
    ];
    pairs.extend(fields);
    Value::obj(pairs).to_line()
}

/// Builds the snapshot fields shared by `status`, `list`, and the
/// terminal `done` event: cursor, tallies, digest, error.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn snapshot_value(
    id: &str,
    state: &str,
    chunks_done: usize,
    chunks_total: usize,
    faults_done: usize,
    faults_total: usize,
    summary: &GradingSummary,
    digest: Option<u64>,
    error: Option<&str>,
) -> Value {
    let mut pairs = vec![
        ("id", Value::str(id)),
        ("state", Value::str(state)),
        ("chunks_done", Value::count(chunks_done)),
        ("chunks_total", Value::count(chunks_total)),
        ("faults_done", Value::count(faults_done)),
        ("faults_total", Value::count(faults_total)),
    ];
    pairs.extend(summary_fields(summary));
    if let Some(d) = digest {
        pairs.push(("digest", Value::str(digest_hex(d))));
    }
    if let Some(e) = error {
        pairs.push(("error", Value::str(e)));
    }
    Value::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_registry_and_inline() {
        let mut spec = JobSpec::registry("s27");
        spec.sample = Some(128);
        spec.trace_policy = TracePolicy::Checkpoint(16);
        spec.collapse = Collapse::Horizon;
        spec.round = 8;
        let back = JobSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);

        let inline = JobSpec {
            circuit: CircuitSource::Inline {
                format: SourceFormat::Bench,
                source: "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n".to_owned(),
            },
            ..JobSpec::registry("ignored")
        };
        assert_eq!(JobSpec::from_value(&inline.to_value()).unwrap(), inline);
    }

    #[test]
    fn request_parse_accepts_every_cmd() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"cmd":"list"}"#).unwrap(), Request::List);
        assert_eq!(parse_request(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown);
        assert!(matches!(
            parse_request(r#"{"cmd":"status","job":"j1"}"#).unwrap(),
            Request::Status { job } if job == "j1"
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"submit","job":{"circuit":"s27"}}"#).unwrap(),
            Request::Submit(spec) if spec.vectors == DEFAULT_VECTORS
        ));
    }

    #[test]
    fn request_parse_rejects_structurally() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            "42",
            r#"{"cmd":7}"#,
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"status"}"#,
            r#"{"cmd":"submit"}"#,
            r#"{"cmd":"submit","job":{"circuit":"s27","netlist":{}}}"#,
            r#"{"cmd":"submit","job":{"circuit":"s27","vectors":0}}"#,
            r#"{"cmd":"submit","job":{"netlist":{"format":"edif","source":""}}}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(!err.msg.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn response_lines_are_valid_json() {
        let ok = ok_response(vec![("job", Value::str("j1"))]);
        let v = json::parse(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(SERVE_SCHEMA));

        let err = err_response(3, "unknown cmd \"warp\"");
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let e = v.get("error").unwrap();
        assert_eq!(e.get("line").and_then(Value::as_usize), Some(3));
        assert!(e.get("msg").and_then(Value::as_str).unwrap().contains("warp"));
    }

    #[test]
    fn chunk_event_tags_job_only_for_the_daemon() {
        let ev = ProgressEvent { shard: 5, faults: 64, summary: GradingSummary::new() };
        let daemon = json::parse(&chunk_event_line(Some("j2"), &ev)).unwrap();
        assert_eq!(daemon.get("job").and_then(Value::as_str), Some("j2"));
        assert_eq!(daemon.get("shard").and_then(Value::as_usize), Some(5));
        let cli = json::parse(&chunk_event_line(None, &ev)).unwrap();
        assert!(cli.get("job").is_none());
        assert_eq!(cli.get("event").and_then(Value::as_str), Some("chunk"));
    }

    #[test]
    fn digest_spelling_matches_checkpoint_format() {
        assert_eq!(digest_hex(0xdead_beef), "00000000deadbeef");
    }
}
