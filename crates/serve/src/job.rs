//! One campaign job: validated spec, owned circuit and test bench,
//! live status, cancellation, and its event subscribers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use seugrade_circuits::registry;
use seugrade_engine::{CampaignPlan, CancelToken, ShardPolicy};
use seugrade_faultsim::GradingSummary;
use seugrade_netlist::{import, ImportOptions, Netlist};
use seugrade_sim::Testbench;

use crate::json::Value;
use crate::proto::{self, CircuitSource, JobSpec};

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker (fresh, between rounds, or respooled).
    Queued,
    /// A worker is grading a round of it right now.
    Running,
    /// Cancelled cooperatively; its spooled checkpoint survives, so
    /// `resume` can re-enqueue it.
    Cancelled,
    /// Every chunk graded; the verdict digest is final.
    Done,
    /// The engine returned an error (or a round panicked).
    Failed,
}

impl JobState {
    /// The protocol spelling of this state.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Cancelled => "cancelled",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// True for states a job never leaves on its own (`resume` can
    /// still re-enqueue `cancelled`/`failed` jobs explicitly).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled | JobState::Failed)
    }
}

/// Mutable progress of a job, updated at round boundaries.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Chunks graded so far (exact queue prefix).
    pub chunks_done: usize,
    /// Total chunks; 0 until the first round computes the chunk plan.
    pub chunks_total: usize,
    /// Faults graded so far.
    pub faults_done: usize,
    /// Total faults in the job's fault space.
    pub faults_total: usize,
    /// Classification tallies folded so far.
    pub summary: GradingSummary,
    /// The order-independent verdict digest (final once `Done`).
    pub digest: Option<u64>,
    /// Failure message, for `Failed` jobs.
    pub error: Option<String>,
    /// Cumulative grading wall-clock across rounds.
    pub wall_ns: u128,
}

/// One job held by the scheduler: immutable identity plus live state.
#[derive(Debug)]
pub struct Job {
    /// Job id (`j1`, `j2`, …); also its spool directory name.
    pub id: String,
    /// The spec as submitted (and spooled).
    pub spec: JobSpec,
    /// The validated circuit (built once at submit/restart).
    pub circuit: Netlist,
    /// The seeded test bench derived from the spec.
    pub testbench: Testbench,
    status: Mutex<JobStatus>,
    cancel: Mutex<CancelToken>,
    /// Faults graded inside the *current* round (per-chunk hook feed);
    /// folded into `status` and reset at every round boundary.
    live_faults: AtomicUsize,
    subscribers: Mutex<Vec<mpsc::Sender<String>>>,
}

impl Job {
    /// Validates a spec into a runnable job: builds the circuit
    /// (registry lookup or inline import), derives the test bench, and
    /// sizes the fault space.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown registry name, a
    /// netlist that fails to import, or a circuit with no flip-flops
    /// (nothing to grade).
    pub fn build(id: String, spec: JobSpec) -> Result<Job, String> {
        let circuit = match &spec.circuit {
            CircuitSource::Registry(name) => registry::build(name)
                .ok_or_else(|| format!("unknown registry circuit {name:?}"))?,
            CircuitSource::Inline { format, source } => {
                import::import_str_with(source, *format, ImportOptions::default())
                    .map_err(|e| format!("netlist import failed: {e}"))?
                    .netlist
            }
        };
        if circuit.num_ffs() == 0 {
            return Err(format!("circuit {:?} has no flip-flops to grade", circuit.name()));
        }
        let testbench = Testbench::random(circuit.num_inputs(), spec.vectors, spec.seed);
        let space = circuit.num_ffs() * testbench.num_cycles();
        let faults_total = spec.sample.map_or(space, |n| n.min(space));
        Ok(Job {
            id,
            spec,
            circuit,
            testbench,
            status: Mutex::new(JobStatus {
                state: JobState::Queued,
                chunks_done: 0,
                chunks_total: 0,
                faults_done: 0,
                faults_total,
                summary: GradingSummary::new(),
                digest: None,
                error: None,
                wall_ns: 0,
            }),
            cancel: Mutex::new(CancelToken::new()),
            live_faults: AtomicUsize::new(0),
            subscribers: Mutex::new(Vec::new()),
        })
    }

    /// A copy of the round-boundary status.
    #[must_use]
    pub fn status(&self) -> JobStatus {
        self.status.lock().expect("status lock").clone()
    }

    /// Runs `f` on the status under its lock.
    pub fn update_status(&self, f: impl FnOnce(&mut JobStatus)) {
        f(&mut self.status.lock().expect("status lock"));
    }

    /// Adds faults from the current round's per-chunk hook.
    pub fn note_live_faults(&self, n: usize) {
        self.live_faults.fetch_add(n, Ordering::Relaxed);
    }

    /// Closes a round: resets the live counter (the round's faults are
    /// folded into the durable status by the scheduler).
    pub fn reset_live_faults(&self) {
        self.live_faults.store(0, Ordering::Relaxed);
    }

    /// The protocol snapshot of this job right now — round-boundary
    /// status plus the in-flight chunks of the current round.
    #[must_use]
    pub fn snapshot_value(&self) -> Value {
        let st = self.status();
        let live = self.live_faults.load(Ordering::Relaxed);
        proto::snapshot_value(
            &self.id,
            st.state.label(),
            st.chunks_done,
            st.chunks_total,
            st.faults_done + live,
            st.faults_total,
            &st.summary,
            st.digest.filter(|_| st.state == JobState::Done),
            st.error.as_deref(),
        )
    }

    /// The cancellation token rounds of this job should poll.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.lock().expect("cancel lock").clone()
    }

    /// Trips the current token (cooperative; the in-flight round drains
    /// and checkpoints).
    pub fn cancel(&self) {
        self.cancel.lock().expect("cancel lock").cancel();
    }

    /// Installs a fresh token — `resume` after a cancellation needs an
    /// untripped flag (tokens are one-way).
    pub fn refresh_cancel_token(&self) {
        *self.cancel.lock().expect("cancel lock") = CancelToken::new();
    }

    /// Subscribes to this job's event stream. Subscribers to a job
    /// already in a terminal state immediately receive the synthesized
    /// terminal event and a closed channel.
    #[must_use]
    pub fn subscribe(&self) -> mpsc::Receiver<String> {
        let (tx, rx) = mpsc::channel();
        let st = self.status();
        if st.state.is_terminal() {
            let _ = tx.send(self.terminal_event_line(&st));
            return rx; // tx drops: the stream ends after the replay
        }
        self.subscribers.lock().expect("subscribers lock").push(tx);
        rx
    }

    /// Sends one pre-serialized event line to every live subscriber,
    /// dropping the ones that hung up.
    pub fn broadcast(&self, line: &str) {
        let mut subs = self.subscribers.lock().expect("subscribers lock");
        subs.retain(|tx| tx.send(line.to_owned()).is_ok());
    }

    /// Broadcasts the terminal event for `status` and closes every
    /// subscription (their streams end).
    pub fn broadcast_terminal(&self, status: &JobStatus) {
        let line = self.terminal_event_line(status);
        let mut subs = self.subscribers.lock().expect("subscribers lock");
        for tx in subs.drain(..) {
            let _ = tx.send(line.clone());
        }
    }

    /// The event line announcing a terminal `status`.
    #[must_use]
    pub fn terminal_event_line(&self, status: &JobStatus) -> String {
        match status.state {
            JobState::Done => {
                let mut fields = vec![
                    ("faults", Value::count(status.faults_total)),
                    ("digest", Value::str(proto::digest_hex(status.digest.unwrap_or(0)))),
                ];
                fields.extend(
                    [
                        seugrade_faultsim::FaultClass::Failure,
                        seugrade_faultsim::FaultClass::Latent,
                        seugrade_faultsim::FaultClass::Silent,
                    ]
                    .iter()
                    .zip(["failures", "latents", "silents"])
                    .map(|(class, key)| (key, Value::count(status.summary.count(*class)))),
                );
                proto::job_event_line("done", &self.id, fields)
            }
            JobState::Cancelled => proto::job_event_line("cancelled", &self.id, vec![]),
            JobState::Failed => proto::job_event_line(
                "failed",
                &self.id,
                vec![("error", Value::str(status.error.clone().unwrap_or_default()))],
            ),
            // Non-terminal states never reach this (scheduler contract);
            // emit a state event rather than panic if one ever does.
            other => proto::job_event_line(
                "state",
                &self.id,
                vec![("state", Value::str(other.label()))],
            ),
        }
    }
}

/// Builds the campaign plan a spec describes — the **same** plan for a
/// scheduler round, a solo reference run and a resumed round, so the
/// engine fingerprint (and therefore the verdict digest) can never
/// drift between them.
#[must_use]
pub fn build_plan<'a>(
    spec: &JobSpec,
    circuit: &'a Netlist,
    testbench: &'a Testbench,
) -> CampaignPlan<'a> {
    let mut builder = CampaignPlan::builder(circuit, testbench)
        .policy(ShardPolicy { threads: spec.threads, serial_below: 0 })
        .trace_policy(spec.trace_policy)
        .collapse(spec.collapse);
    if let Some(count) = spec.sample {
        builder = builder.sampled(count, spec.seed);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn build_validates_registry_and_inline() {
        let job = Job::build("j1".into(), JobSpec::registry("s27")).unwrap();
        assert!(job.circuit.num_ffs() > 0);
        assert_eq!(job.status().faults_total, job.circuit.num_ffs() * 100);

        assert!(Job::build("j2".into(), JobSpec::registry("nope")).is_err());

        let mut spec = JobSpec::registry("ignored");
        spec.circuit = CircuitSource::Inline {
            format: seugrade_netlist::SourceFormat::Bench,
            source: "garbage(".to_owned(),
        };
        let err = Job::build("j3".into(), spec).unwrap_err();
        assert!(err.contains("import failed"), "{err}");
    }

    #[test]
    fn sample_caps_the_fault_space() {
        let mut spec = JobSpec::registry("s27");
        spec.sample = Some(10);
        let job = Job::build("j1".into(), spec).unwrap();
        assert_eq!(job.status().faults_total, 10);
    }

    #[test]
    fn terminal_subscription_replays_the_terminal_event() {
        let job = Job::build("j1".into(), JobSpec::registry("s27")).unwrap();
        job.update_status(|st| {
            st.state = JobState::Done;
            st.digest = Some(0xabcd);
        });
        let rx = job.subscribe();
        let line = rx.recv().unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(json::Value::as_str), Some("done"));
        assert!(line.contains("000000000000abcd"));
        assert!(rx.recv().is_err(), "stream must end after the replay");
    }

    #[test]
    fn broadcast_drops_hung_up_subscribers() {
        let job = Job::build("j1".into(), JobSpec::registry("s27")).unwrap();
        let rx1 = job.subscribe();
        let rx2 = job.subscribe();
        drop(rx2);
        job.broadcast("hello");
        assert_eq!(rx1.recv().unwrap(), "hello");
        assert_eq!(job.subscribers.lock().unwrap().len(), 1);
    }

    #[test]
    fn cancel_token_refresh_untrips() {
        let job = Job::build("j1".into(), JobSpec::registry("s27")).unwrap();
        job.cancel();
        assert!(job.cancel_token().is_cancelled());
        job.refresh_cancel_token();
        assert!(!job.cancel_token().is_cancelled());
    }
}
