//! `seugrade-serve` — campaign grading as a service.
//!
//! A dependency-free daemon that accepts SEU campaign jobs over
//! line-delimited JSON on a plain [`std::net::TcpListener`], multiplexes
//! any number of concurrent campaigns over one shared worker pool, and
//! streams per-chunk progress events to subscribed clients. The wire
//! grammar (`seugrade-serve/v1`) is documented normatively in
//! `docs/PROTOCOL.md`.
//!
//! # Architecture
//!
//! ```text
//! client ──JSON lines──▶ Server (accept loop, one thread/conn)
//!                           │ submit/status/cancel/resume/stream
//!                           ▼
//!                        Scheduler (job queue + N workers)
//!                           │ one round (spec.round chunks) at a time,
//!                           │ re-enqueue until complete — round-robin
//!                           ▼
//!                        Engine::run_streamed_resumable  (CampaignSink)
//!                           │ per-chunk ProgressHook ──▶ Job::broadcast
//!                           ▼
//!                        Spool  <spool>/j<N>/{job.json, job.ckpt, result.json}
//! ```
//!
//! Three invariants carry the whole design:
//!
//! 1. **Determinism** — a job graded through the daemon (any worker
//!    count, any number of co-tenants, any number of cancel/resume or
//!    daemon-restart interruptions) produces a verdict digest
//!    bit-identical to the same spec graded solo, because every round
//!    replays the same [`CampaignPlan`](seugrade_engine::CampaignPlan)
//!    and the checkpoint fingerprint pins the configuration.
//! 2. **Durability** — every spool write is atomic (temp + rename); a
//!    daemon restart rescans the spool and resumes every incomplete job
//!    from its checkpoint cursor.
//! 3. **Hostility tolerance** — malformed, truncated or oversized
//!    request lines get structured line-numbered error responses; they
//!    never panic the daemon or wedge shutdown (all blocking paths
//!    poll).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod job;
pub mod json;
pub mod proto;
mod scheduler;
pub mod server;
pub mod spool;

pub use bench::{ServeBenchRecord, ServeBenchReport, SERVE_BENCH_SCHEMA};
pub use client::{Client, ClientError};
pub use job::{build_plan, Job, JobState, JobStatus};
pub use proto::{CircuitSource, JobSpec, ProtoError, Request, SERVE_SCHEMA};
pub use server::{Server, ServerConfig, DEFAULT_ADDR, DEFAULT_WORKERS, MAX_REQUEST_BYTES};
pub use spool::{Spool, SpooledJob};

use seugrade_emulation::CampaignSink;
use seugrade_engine::Engine;
use seugrade_faultsim::GradingSummary;

/// Grades a spec solo — one engine, no daemon, no spool — and returns
/// the `(digest, summary)` every multiplexed run of the same spec must
/// reproduce bit-for-bit. This is the oracle the determinism suites and
/// the multi-tenant bench compare against.
///
/// # Errors
///
/// Propagates spec-validation failures (unknown circuit, import error).
pub fn reference_run(spec: &JobSpec) -> Result<(u64, GradingSummary), String> {
    let job = Job::build("ref".to_owned(), spec.clone())?;
    let plan = build_plan(&job.spec, &job.circuit, &job.testbench);
    let engine = Engine::new(&plan);
    let run = engine
        .run_streamed_resumable_with::<CampaignSink>(
            &plan,
            &seugrade_engine::ResumeOptions::default(),
        )
        .map_err(|e| format!("reference run: {e}"))?;
    Ok((run.sink.digest(), run.sink.summary().clone()))
}
