//! A minimal, dependency-free JSON value: parser and writer.
//!
//! The serve protocol is line-delimited JSON over TCP, and the workspace
//! deliberately links no external crates — so this module carries the
//! ~300 lines of JSON the protocol needs, in the same home-grown spirit
//! as the `seugrade-campaign-ckpt/v1` checkpoint grammar. Two
//! non-features keep it small and safe against hostile input:
//!
//! - **Bounded recursion.** Nesting deeper than [`MAX_DEPTH`] is a
//!   parse error, not a stack overflow.
//! - **Numbers are `f64`.** Every count the protocol carries fits in 53
//!   bits; the one value that does not (the 64-bit verdict digest)
//!   travels as a hex *string*.
//!
//! Object keys keep insertion order (a `Vec` of pairs, not a map), so
//! emitted lines are deterministic.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    #[must_use]
    pub fn num(n: impl Into<f64>) -> Value {
        Value::Num(n.into())
    }

    /// Builds a number value from a `usize` (exact up to 2^53).
    #[must_use]
    pub fn count(n: usize) -> Value {
        Value::Num(n as f64)
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_usize().map(|n| n as u64)
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to one compact line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_str(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; null is the honest spelling
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset into the line plus a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document from `src`; trailing non-whitespace is an
/// error (the protocol is strictly one value per line).
///
/// # Errors
///
/// Every malformed input yields a positioned [`JsonError`]; hostile
/// bytes never panic or recurse unboundedly.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { pos: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after key"));
            }
            self.pos += 1;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported),
    /// leaving `pos` after the last consumed digit + 1.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a low surrogate right behind it.
            if !self.eat("\\u") {
                return Err(self.err("lone high surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("bad low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u digits"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text.parse().map_err(|_| JsonError {
            pos: start,
            msg: format!("bad number {text:?}"),
        })?;
        if !n.is_finite() {
            return Err(JsonError { pos: start, msg: format!("number {text:?} overflows") });
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let v = Value::obj(vec![
            ("cmd", Value::str("submit")),
            ("n", Value::count(42)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            ("arr", Value::Arr(vec![Value::count(1), Value::str("two")])),
            ("text", Value::str("line\nbreak \"quoted\" \\slash")),
        ]);
        let line = v.to_line();
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a":"x","b":7,"c":[1,2],"d":true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_usize), Some(7));
        assert_eq!(v.get("c").and_then(Value::as_arr).map(<[Value]>::len), Some(2));
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("1.5").unwrap().as_usize(), None);
    }

    #[test]
    fn rejects_depth_bombs() {
        let bomb = "[".repeat(4096) + &"]".repeat(4096);
        let err = parse(&bomb).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
    }

    #[test]
    fn rejects_garbage_with_positions() {
        for bad in ["", "{", "{\"a\"", "{\"a\":}", "[1,", "\"open", "truex", "1 2", "nul", "{1:2}"]
        {
            let err = parse(bad).unwrap_err();
            assert!(!err.msg.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A😀""#).unwrap(), Value::Str("A😀".to_owned()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn utf8_passthrough() {
        let v = parse("\"caf\u{e9} \u{1F980}\"").unwrap();
        assert_eq!(v.as_str(), Some("café 🦀"));
    }
}
