//! Property-based checks of the simulation engines.

use proptest::prelude::*;
use seugrade_netlist::{FfIndex, GateKind, Netlist, NetlistBuilder, SigId};
use seugrade_sim::{CompiledSim, EventSim, SplitMix64, Testbench};

/// Deterministic random circuit from a seed (acyclic by construction).
fn random_netlist(seed: u64, num_inputs: usize, num_ffs: usize, num_gates: usize) -> Netlist {
    let mut rng = SplitMix64::new(seed);
    let mut b = NetlistBuilder::new("prop");
    let mut sigs: Vec<SigId> = Vec::new();
    for i in 0..num_inputs {
        sigs.push(b.input(format!("i{i}")));
    }
    let mut ffs = Vec::new();
    for _ in 0..num_ffs {
        let q = b.dff(rng.next_bool());
        ffs.push(q);
        sigs.push(q);
    }
    for _ in 0..num_gates {
        use GateKind::*;
        let kind = [And, Or, Nand, Nor, Xor, Xnor, Not, Buf, Mux][rng.index(9)];
        let pick = |rng: &mut SplitMix64, sigs: &[SigId]| sigs[rng.index(sigs.len())];
        let g = match kind {
            Not | Buf => {
                let a = pick(&mut rng, &sigs);
                b.gate(kind, &[a])
            }
            Mux => {
                let s = pick(&mut rng, &sigs);
                let d0 = pick(&mut rng, &sigs);
                let d1 = pick(&mut rng, &sigs);
                b.mux(s, d0, d1)
            }
            _ => {
                let x = pick(&mut rng, &sigs);
                let y = pick(&mut rng, &sigs);
                b.gate(kind, &[x, y])
            }
        };
        sigs.push(g);
    }
    for (i, &q) in ffs.iter().enumerate() {
        let d = sigs[rng.index(sigs.len())];
        b.connect_dff(q, d).expect("connects");
        b.output(format!("ffo{i}"), q);
    }
    for i in 0..3 {
        b.output(format!("o{i}"), sigs[rng.index(sigs.len())]);
    }
    b.finish().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The two engines agree on arbitrary circuits and stimuli.
    #[test]
    fn engines_agree(
        seed in 0u64..10_000,
        tb_seed in 0u64..10_000,
        num_inputs in 1usize..5,
        num_ffs in 1usize..7,
        num_gates in 5usize..50,
        cycles in 1usize..30,
    ) {
        let n = random_netlist(seed, num_inputs, num_ffs, num_gates);
        let tb = Testbench::random(n.num_inputs(), cycles, tb_seed);
        let fast = CompiledSim::new(&n).run_golden(&tb);
        let slow = EventSim::new(&n).run_golden(&tb);
        prop_assert_eq!(fast, slow);
    }

    /// Flipping one lane leaves all other lanes untouched.
    #[test]
    fn lanes_are_isolated(
        seed in 0u64..10_000,
        lane in 1u32..64,
        ff_pick in 0usize..100,
        cycles in 1usize..20,
    ) {
        let n = random_netlist(seed, 2, 4, 25);
        let sim = CompiledSim::new(&n);
        let tb = Testbench::random(2, cycles, seed ^ 0x55);
        let mut st = sim.new_state();
        let ff = FfIndex::new(ff_pick % 4);
        sim.flip_ff_lane(&mut st, ff, lane);
        for t in 0..cycles {
            sim.set_inputs(&mut st, tb.cycle(t));
            sim.eval(&mut st);
            // lane 0 must track a fresh golden machine exactly.
            let golden = sim.run_golden(&tb.truncated(t + 1));
            prop_assert_eq!(
                sim.outputs_lane(&st, 0),
                golden.output_at(t).to_vec(),
                "lane 0 corrupted at cycle {}", t
            );
            sim.step(&mut st);
        }
    }

    /// Determinism: two fresh states produce identical traces.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..10_000, cycles in 1usize..25) {
        let n = random_netlist(seed, 3, 3, 30);
        let tb = Testbench::random(3, cycles, seed);
        let sim = CompiledSim::new(&n);
        prop_assert_eq!(sim.run_golden(&tb), sim.run_golden(&tb));
    }

    /// Reset returns a used state to the pristine trajectory.
    #[test]
    fn reset_restores_trajectory(seed in 0u64..10_000) {
        let n = random_netlist(seed, 2, 5, 20);
        let tb = Testbench::random(2, 12, seed ^ 0x77);
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        // Dirty the state.
        for t in 0..5 {
            sim.cycle(&mut st, tb.cycle(t));
        }
        sim.flip_ff_lane(&mut st, FfIndex::new(0), 7);
        sim.reset(&mut st);
        // Re-run and compare against a fresh golden.
        let golden = sim.run_golden(&tb);
        for t in 0..tb.num_cycles() {
            sim.set_inputs(&mut st, tb.cycle(t));
            sim.eval(&mut st);
            prop_assert_eq!(sim.outputs_lane(&st, 0), golden.output_at(t).to_vec());
            sim.step(&mut st);
        }
    }

    /// Golden trace shape invariants.
    #[test]
    fn golden_trace_shape(seed in 0u64..10_000, cycles in 1usize..30) {
        let n = random_netlist(seed, 2, 3, 15);
        let tb = Testbench::random(2, cycles, seed);
        let trace = CompiledSim::new(&n).run_golden(&tb);
        prop_assert_eq!(trace.num_cycles(), cycles);
        prop_assert_eq!(trace.num_ffs(), n.num_ffs());
        prop_assert_eq!(trace.num_outputs(), n.num_outputs());
        let inits = n.ff_init_values();
        prop_assert_eq!(trace.state_at(0), inits.as_slice());
        prop_assert_eq!(trace.state_at(cycles), trace.final_state());
    }
}
