//! Deterministic pseudo-random number generation.
//!
//! The toolkit vendors a tiny SplitMix64 generator instead of depending on
//! `rand`: stimulus vectors, generated circuits and sampled fault lists
//! must stay bit-identical across toolchain and dependency upgrades,
//! because the reproduced experiments are defined by their seeds.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA'14).
///
/// Fast, passes BigCrush for this use, and trivially seedable. Not
/// cryptographic.
///
/// # Example
///
/// ```
/// use seugrade_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Boolean that is `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    pub fn next_bool_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "invalid probability {num}/{den}");
        self.below(u64::from(den)) < u64::from(num)
    }

    /// Uniform value in `[0, bound)` (Lemire-style rejection-free modulo
    /// with negligible bias for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // 128-bit multiply-shift keeps the distribution uniform enough for
        // simulation workloads without a rejection loop.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Derives an independent generator (stream split).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_vector() {
        // First output for seed 0 (reference value from the SplitMix64
        // reference implementation).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_is_in_range() {
        let mut g = SplitMix64::new(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(g.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[g.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bools_are_mixed() {
        let mut g = SplitMix64::new(11);
        let trues = (0..1000).filter(|_| g.next_bool()).count();
        assert!((300..700).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn ratio_extremes() {
        let mut g = SplitMix64::new(13);
        assert!(!(0..100).any(|_| g.next_bool_ratio(0, 10)));
        assert!((0..100).all(|_| g.next_bool_ratio(10, 10)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = SplitMix64::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_independent() {
        let mut g = SplitMix64::new(19);
        let mut s1 = g.split();
        let mut s2 = g.split();
        assert_ne!(s1.next_u64(), s2.next_u64());
    }
}
