//! Logic simulation engines for `seugrade` netlists.
//!
//! Two engines with identical cycle semantics:
//!
//! - [`CompiledSim`] — a levelized, compiled simulator whose signal values
//!   are `u64` words of **64 independent boolean lanes**. Lane 0 alone
//!   gives a fast scalar simulator; all 64 lanes give the bit-parallel
//!   engine used by the fault simulator (64 faulty machines per pass).
//! - [`EventSim`] — a straightforward activity-driven simulator used as a
//!   cross-check oracle in tests.
//!
//! Shared infrastructure:
//!
//! - [`Testbench`] — per-cycle input vectors (with seeded random
//!   generation via [`SplitMix64`]);
//! - [`GoldenTrace`] — the fault-free reference run, stored under a
//!   [`TracePolicy`]: dense (outputs + state trajectory for every cycle)
//!   or checkpointed (full state every `K` cycles, everything else
//!   replayed on demand into a bounded [`TraceWindow`]) — the
//!   memory-bounded representation the streaming campaign core grades
//!   against;
//! - [`vcd`] — value-change-dump export for waveform debugging.
//!
//! # Cycle semantics
//!
//! State `S_t` is the flip-flop vector at the *start* of cycle `t`
//! (`S_0` = the flip-flops' initial values). During cycle `t` the inputs
//! `I_t` are applied, outputs `O_t = f_o(S_t, I_t)` are observed, and
//! [`CompiledSim::step`] latches `S_{t+1} = f_s(S_t, I_t)`. Every engine
//! and every emulation model in the workspace uses this convention.
//!
//! # Example
//!
//! ```
//! use seugrade_netlist::NetlistBuilder;
//! use seugrade_sim::{CompiledSim, Testbench};
//!
//! # fn main() -> Result<(), seugrade_netlist::NetlistError> {
//! // 2-bit counter.
//! let mut b = NetlistBuilder::new("cnt");
//! let b0 = b.dff(false);
//! let b1 = b.dff(false);
//! let n0 = b.not(b0);
//! let n1 = b.xor2(b1, b0);
//! b.connect_dff(b0, n0)?;
//! b.connect_dff(b1, n1)?;
//! b.output("msb", b1);
//! let n = b.finish()?;
//!
//! let sim = CompiledSim::new(&n);
//! let tb = Testbench::constant_low(0, 8);
//! let trace = sim.run_golden(&tb);
//! // msb = floor(t / 2) mod 2
//! assert_eq!(trace.output_at(0), &[false]);
//! assert_eq!(trace.output_at(2), &[true]);
//! assert_eq!(trace.output_at(5), &[false]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod diff;
pub mod equiv;
mod event;
mod rng;
mod tape;
mod testbench;
mod trace;
pub mod vcd;

pub use compiled::{CompiledSim, SimState};
pub use diff::{BitCache, BitSpan, DiffScratch};
pub use equiv::{equiv_check, Counterexample};
pub use event::EventSim;
pub use rng::SplitMix64;
pub use testbench::Testbench;
pub use trace::{GoldenTrace, TracePolicy, TraceWindow, WindowCache};

/// Which faulty-evaluation kernel a grader runs.
///
/// All kernels produce **bit-identical verdicts** — the equivalence
/// suites pin verdict digests across every kernel, policy and thread
/// count — so the choice is purely a speed knob (and is therefore
/// excluded from campaign resume fingerprints):
///
/// - [`Generic`](Kernel::Generic) — the historical per-instruction
///   interpreter: full netlist evaluation every faulty cycle.
/// - [`Tape`](Kernel::Tape) — full evaluation through the specialized
///   SoA opcode runs (branch-free inner loops, `Not`/`Buf` folded into
///   consumer pins).
/// - [`Differential`](Kernel::Differential) — deviation-cone evaluation:
///   only gates reachable from the dirty frontier run, and an empty
///   frontier proves reconvergence without a register scan.
/// - [`Auto`](Kernel::Auto) — currently resolves to `Differential`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Let the grader pick (currently [`Differential`](Kernel::Differential)).
    #[default]
    Auto,
    /// Per-instruction interpreter, full evaluation.
    Generic,
    /// Specialized SoA tape, full evaluation.
    Tape,
    /// Dirty-frontier deviation-cone evaluation.
    Differential,
}

impl Kernel {
    /// Every concrete (non-`Auto`) kernel — the axis the equivalence
    /// suites and bench sweeps iterate over.
    pub const CONCRETE: [Kernel; 3] = [Kernel::Generic, Kernel::Tape, Kernel::Differential];

    /// Parses a kernel label: `auto`, `generic`, `tape` or
    /// `differential`. The inverse of [`label`](Self::label).
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(Kernel::Auto),
            "generic" => Some(Kernel::Generic),
            "tape" => Some(Kernel::Tape),
            "differential" => Some(Kernel::Differential),
            _ => None,
        }
    }

    /// The label form parsed by [`from_label`](Self::from_label).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Auto => "auto",
            Kernel::Generic => "generic",
            Kernel::Tape => "tape",
            Kernel::Differential => "differential",
        }
    }

    /// Resolves `Auto` to the kernel it currently selects.
    #[must_use]
    pub fn resolve(self) -> Self {
        match self {
            Kernel::Auto => Kernel::Differential,
            k => k,
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// All 64 lanes set: the broadcast form of `true`.
pub const ALL_LANES: u64 = !0u64;

/// Broadcasts a boolean to all 64 lanes.
#[must_use]
pub fn broadcast(b: bool) -> u64 {
    if b {
        ALL_LANES
    } else {
        0
    }
}
