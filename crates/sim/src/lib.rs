//! Logic simulation engines for `seugrade` netlists.
//!
//! Two engines with identical cycle semantics:
//!
//! - [`CompiledSim`] — a levelized, compiled simulator whose signal values
//!   are `u64` words of **64 independent boolean lanes**. Lane 0 alone
//!   gives a fast scalar simulator; all 64 lanes give the bit-parallel
//!   engine used by the fault simulator (64 faulty machines per pass).
//! - [`EventSim`] — a straightforward activity-driven simulator used as a
//!   cross-check oracle in tests.
//!
//! Shared infrastructure:
//!
//! - [`Testbench`] — per-cycle input vectors (with seeded random
//!   generation via [`SplitMix64`]);
//! - [`GoldenTrace`] — the fault-free reference run, stored under a
//!   [`TracePolicy`]: dense (outputs + state trajectory for every cycle)
//!   or checkpointed (full state every `K` cycles, everything else
//!   replayed on demand into a bounded [`TraceWindow`]) — the
//!   memory-bounded representation the streaming campaign core grades
//!   against;
//! - [`vcd`] — value-change-dump export for waveform debugging.
//!
//! # Cycle semantics
//!
//! State `S_t` is the flip-flop vector at the *start* of cycle `t`
//! (`S_0` = the flip-flops' initial values). During cycle `t` the inputs
//! `I_t` are applied, outputs `O_t = f_o(S_t, I_t)` are observed, and
//! [`CompiledSim::step`] latches `S_{t+1} = f_s(S_t, I_t)`. Every engine
//! and every emulation model in the workspace uses this convention.
//!
//! # Example
//!
//! ```
//! use seugrade_netlist::NetlistBuilder;
//! use seugrade_sim::{CompiledSim, Testbench};
//!
//! # fn main() -> Result<(), seugrade_netlist::NetlistError> {
//! // 2-bit counter.
//! let mut b = NetlistBuilder::new("cnt");
//! let b0 = b.dff(false);
//! let b1 = b.dff(false);
//! let n0 = b.not(b0);
//! let n1 = b.xor2(b1, b0);
//! b.connect_dff(b0, n0)?;
//! b.connect_dff(b1, n1)?;
//! b.output("msb", b1);
//! let n = b.finish()?;
//!
//! let sim = CompiledSim::new(&n);
//! let tb = Testbench::constant_low(0, 8);
//! let trace = sim.run_golden(&tb);
//! // msb = floor(t / 2) mod 2
//! assert_eq!(trace.output_at(0), &[false]);
//! assert_eq!(trace.output_at(2), &[true]);
//! assert_eq!(trace.output_at(5), &[false]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
pub mod equiv;
mod event;
mod rng;
mod testbench;
mod trace;
pub mod vcd;

pub use compiled::{CompiledSim, SimState};
pub use equiv::{equiv_check, Counterexample};
pub use event::EventSim;
pub use rng::SplitMix64;
pub use testbench::Testbench;
pub use trace::{GoldenTrace, TracePolicy, TraceWindow, WindowCache};

/// All 64 lanes set: the broadcast form of `true`.
pub const ALL_LANES: u64 = !0u64;

/// Broadcasts a boolean to all 64 lanes.
#[must_use]
pub fn broadcast(b: bool) -> u64 {
    if b {
        ALL_LANES
    } else {
        0
    }
}
