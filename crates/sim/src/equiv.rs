//! Random-simulation equivalence checking.
//!
//! Used across the workspace to validate netlist transforms
//! (instrumentation in idle mode, hardening, pruning, text round-trips):
//! two circuits are co-simulated under many seeded random benches and
//! the first output divergence is reported as a counterexample. This is
//! falsification, not proof — but with full state controllability from
//! reset and hundreds of vectors it catches every transform bug the
//! formal literature's motivating examples describe.

use seugrade_netlist::Netlist;

use crate::{CompiledSim, Testbench};

/// A concrete divergence between two circuits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Seed of the random bench that exposed the difference.
    pub seed: u64,
    /// Cycle of the first output mismatch.
    pub cycle: usize,
    /// Output position that differs.
    pub output: usize,
    /// Value in the first circuit.
    pub lhs: bool,
    /// Value in the second circuit.
    pub rhs: bool,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "output #{} differs at cycle {} under seed {} ({} vs {})",
            self.output, self.cycle, self.seed, self.lhs, self.rhs
        )
    }
}

/// Checks `lhs` and `rhs` for sequential equivalence from reset by
/// co-simulating `num_seeds` random benches of `cycles` vectors each.
///
/// Only the first `min(outputs)` output positions are compared when the
/// circuits have different output counts (useful for transforms that
/// *append* observation outputs, e.g. DWC's alarm).
///
/// # Errors
///
/// Returns the first [`Counterexample`] found.
///
/// # Panics
///
/// Panics if the circuits have different input counts.
pub fn equiv_check(
    lhs: &Netlist,
    rhs: &Netlist,
    cycles: usize,
    num_seeds: u64,
) -> Result<(), Counterexample> {
    assert_eq!(
        lhs.num_inputs(),
        rhs.num_inputs(),
        "equivalence needs matching inputs"
    );
    let compare = lhs.num_outputs().min(rhs.num_outputs());
    let sim_l = CompiledSim::new(lhs);
    let sim_r = CompiledSim::new(rhs);
    for seed in 0..num_seeds {
        let tb = Testbench::random(lhs.num_inputs(), cycles, seed.wrapping_mul(0x9E37_79B9));
        let mut st_l = sim_l.new_state();
        let mut st_r = sim_r.new_state();
        for t in 0..cycles {
            sim_l.set_inputs(&mut st_l, tb.cycle(t));
            sim_r.set_inputs(&mut st_r, tb.cycle(t));
            sim_l.eval(&mut st_l);
            sim_r.eval(&mut st_r);
            let out_l = sim_l.outputs_lane(&st_l, 0);
            let out_r = sim_r.outputs_lane(&st_r, 0);
            for o in 0..compare {
                if out_l[o] != out_r[o] {
                    return Err(Counterexample {
                        seed,
                        cycle: t,
                        output: o,
                        lhs: out_l[o],
                        rhs: out_r[o],
                    });
                }
            }
            sim_l.step(&mut st_l);
            sim_r.step(&mut st_r);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::NetlistBuilder;

    use super::*;

    fn xor_impl_a() -> Netlist {
        let mut b = NetlistBuilder::new("a");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.xor2(x, y);
        b.output("o", g);
        b.finish().unwrap()
    }

    /// XOR via AND/OR/NOT — structurally different, functionally equal.
    fn xor_impl_b() -> Netlist {
        let mut b = NetlistBuilder::new("b");
        let x = b.input("x");
        let y = b.input("y");
        let nx = b.not(x);
        let ny = b.not(y);
        let t1 = b.and2(x, ny);
        let t2 = b.and2(nx, y);
        let g = b.or2(t1, t2);
        b.output("o", g);
        b.finish().unwrap()
    }

    #[test]
    fn equivalent_implementations_pass() {
        assert_eq!(equiv_check(&xor_impl_a(), &xor_impl_b(), 16, 8), Ok(()));
    }

    #[test]
    fn inequivalent_circuits_produce_counterexample() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and2(x, y); // not XOR
        b.output("o", g);
        let wrong = b.finish().unwrap();
        let err = equiv_check(&xor_impl_a(), &wrong, 16, 8).unwrap_err();
        assert_eq!(err.output, 0);
        assert!(err.to_string().contains("differs"));
    }

    #[test]
    fn sequential_divergence_found_at_right_cycle() {
        // Two counters with different init values diverge at cycle 0.
        let mk = |init: bool| {
            let mut b = NetlistBuilder::new("cnt");
            let q = b.dff(init);
            let inv = b.not(q);
            b.connect_dff(q, inv).unwrap();
            b.output("q", q);
            b.finish().unwrap()
        };
        let err = equiv_check(&mk(false), &mk(true), 8, 1).unwrap_err();
        assert_eq!(err.cycle, 0);
    }

    #[test]
    fn extra_outputs_are_ignored() {
        let mut b = NetlistBuilder::new("ext");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.xor2(x, y);
        let extra = b.and2(x, y);
        b.output("o", g);
        b.output("alarm", extra);
        let with_extra = b.finish().unwrap();
        assert_eq!(equiv_check(&xor_impl_a(), &with_extra, 16, 4), Ok(()));
    }
}
