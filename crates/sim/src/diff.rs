//! The differential (activity-driven) faulty-evaluation kernel.
//!
//! A faulty machine differs from the golden one only inside a deviation
//! cone seeded by the injected bit-flip — the observation the source
//! paper's autonomous emulator is built on. The full-evaluation kernels
//! ignore it: every gate of the netlist is re-evaluated every faulty
//! cycle, even when the cone has collapsed to nothing.
//!
//! This module simulates **deviations instead of values**. For every
//! signal the scratch state holds `dev[sig] = faulty ⊕ golden` (64 lanes
//! of faulty machines against one golden reference), so the faulty word
//! is recoverable as `broadcast(golden_bit) ⊕ dev[sig]` and a signal is
//! clean exactly when its deviation word is zero. Per cycle:
//!
//! 1. the dirty frontier is seeded from the signals with non-zero
//!    deviations (initially the flipped flip-flops) and expanded through
//!    the levelized fanout adjacency;
//! 2. gates are drained off a position-indexed dirty bitmap in ascending
//!    order — ascending positions in the levelized program are
//!    topological, so each cone gate is evaluated exactly once — and
//!    evaluated in deviation space against the golden bits; a zero
//!    deviation out of a gate prunes its fanout (the logical-masking
//!    collapse the paper exploits);
//! 3. output deviations are OR-folded into the failure word, the
//!    flip-flop step transfers `D`-deviations to `Q` slots two-phase,
//!    and the OR of the new state deviations is the reconvergence word:
//!    **zero means every lane is back in lock-step with golden** — a
//!    proof that feeds `Collapse::Early` without scanning a single
//!    register.
//!
//! The golden bits come from a [`BitSpan`]: one bit per cell per cycle
//! (golden values are lane-uniform), replayed once per checkpoint span
//! and shared across all chunks of a campaign through a [`BitCache`] —
//! the same once-per-span economics as the window cache, at 1/64th the
//! word cost of a value trace.

use std::sync::{Arc, Mutex};

use seugrade_netlist::FfIndex;

use crate::{tape, CompiledSim, GoldenTrace, Testbench};

/// Golden internal values for a contiguous cycle span, bit-packed: one
/// bit per cell per cycle.
///
/// Captured post-`eval`, pre-`step`, so for cycle `t` the flip-flop
/// slots hold the start-of-cycle state and gate/input slots hold the
/// during-cycle values — exactly the operand view a combinational cone
/// evaluation at cycle `t` needs.
#[derive(Debug)]
pub struct BitSpan {
    start: usize,
    end: usize,
    /// Words per cycle: `ceil(num_cells / 64)`.
    stride: usize,
    words: Vec<u64>,
}

impl BitSpan {
    /// First cycle covered.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last covered cycle.
    #[must_use]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Golden bit of `slot` during (absolute) cycle `t`, broadcast to
    /// all 64 lanes.
    #[inline]
    #[must_use]
    pub fn word_at(&self, slot: usize, t: usize) -> u64 {
        Self::word_in_row(self.row(t), slot)
    }

    /// The packed word row of (absolute) cycle `t`.
    #[inline]
    fn row(&self, t: usize) -> &[u64] {
        &self.words[(t - self.start) * self.stride..][..self.stride]
    }

    /// Golden bit of `slot` within a [`row`](Self::row), broadcast to
    /// all 64 lanes.
    #[inline]
    fn word_in_row(row: &[u64], slot: usize) -> u64 {
        0u64.wrapping_sub(row[slot / 64] >> (slot % 64) & 1)
    }

    /// Golden bit of `slot` during (absolute) cycle `t`.
    #[must_use]
    pub fn bit_at(&self, slot: usize, t: usize) -> bool {
        self.word_at(slot, t) != 0
    }
}

/// Where a [`BitCache`] keeps its spans (mirrors the window cache:
/// per-handle or shared-behind-a-mutex across a worker pool).
#[derive(Debug)]
enum BitStore {
    Local(Vec<((usize, usize), Arc<BitSpan>)>),
    Shared(Arc<Mutex<Vec<((usize, usize), Arc<BitSpan>)>>>),
}

/// A small LRU of replayed golden [`BitSpan`]s, keyed by the exact
/// `start..end` cycle span — the differential kernel's counterpart of
/// [`WindowCache`](crate::WindowCache).
///
/// Every span is replayed at most once per store and then served
/// zero-copy to all 64-lane chunks grading inside it; with a
/// [`shared`](Self::shared) store the replay is paid once across the
/// whole worker pool. A capacity of `0` disables retention (every
/// request replays). Hit/miss/replay counters are always per-handle.
#[derive(Debug)]
pub struct BitCache {
    capacity: usize,
    store: BitStore,
    hits: u64,
    misses: u64,
    replayed_cycles: u64,
}

impl BitCache {
    /// A private (lock-free) cache holding up to `capacity` spans.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BitCache {
            capacity,
            store: BitStore::Local(Vec::with_capacity(capacity.min(64))),
            hits: 0,
            misses: 0,
            replayed_cycles: 0,
        }
    }

    /// A cache whose span store is shared with every handle cloned off
    /// it via [`clone_handle`](Self::clone_handle).
    #[must_use]
    pub fn shared(capacity: usize) -> Self {
        BitCache {
            capacity,
            store: BitStore::Shared(Arc::new(Mutex::new(Vec::with_capacity(
                capacity.min(64),
            )))),
            hits: 0,
            misses: 0,
            replayed_cycles: 0,
        }
    }

    /// A new handle with zeroed counters: same store for a
    /// [`shared`](Self::shared) cache, a fresh empty cache otherwise.
    #[must_use]
    pub fn clone_handle(&self) -> Self {
        let store = match &self.store {
            BitStore::Local(_) => {
                BitStore::Local(Vec::with_capacity(self.capacity.min(64)))
            }
            BitStore::Shared(store) => BitStore::Shared(Arc::clone(store)),
        };
        BitCache { capacity: self.capacity, store, hits: 0, misses: 0, replayed_cycles: 0 }
    }

    /// A capacity-0 cache: every span request replays from a checkpoint.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Maximum number of spans held.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Span requests this handle served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Span requests through this handle that had to replay.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total golden cycles re-simulated on behalf of this handle.
    #[must_use]
    pub fn replayed_cycles(&self) -> u64 {
        self.replayed_cycles
    }

    fn store_lookup(
        entries: &mut Vec<((usize, usize), Arc<BitSpan>)>,
        key: (usize, usize),
    ) -> Option<Arc<BitSpan>> {
        let pos = entries.iter().position(|(k, _)| *k == key)?;
        let entry = entries.remove(pos);
        let span = Arc::clone(&entry.1);
        entries.push(entry);
        Some(span)
    }

    fn store_insert(
        entries: &mut Vec<((usize, usize), Arc<BitSpan>)>,
        capacity: usize,
        key: (usize, usize),
        span: Arc<BitSpan>,
    ) {
        if entries.iter().any(|(k, _)| *k == key) {
            // A racing handle replayed the same span first; keep its copy.
            return;
        }
        if entries.len() == capacity {
            entries.remove(0);
        }
        entries.push((key, span));
    }

    fn lookup(&mut self, key: (usize, usize)) -> Option<Arc<BitSpan>> {
        let hit = match &mut self.store {
            BitStore::Local(entries) => Self::store_lookup(entries, key),
            BitStore::Shared(store) => {
                let mut entries =
                    store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                Self::store_lookup(&mut entries, key)
            }
        };
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    fn insert(&mut self, key: (usize, usize), span: Arc<BitSpan>) {
        if self.capacity == 0 {
            return;
        }
        match &mut self.store {
            BitStore::Local(entries) => {
                Self::store_insert(entries, self.capacity, key, span);
            }
            BitStore::Shared(store) => {
                let mut entries =
                    store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                Self::store_insert(&mut entries, self.capacity, key, span);
            }
        }
    }
}

/// Per-worker mutable state of the differential kernel: the deviation
/// words, the list of currently-deviant slots, and the cone worklist.
///
/// Create via [`CompiledSim::new_diff_scratch`]; one scratch serves any
/// number of chunks sequentially (the grader resets it between chunks).
#[derive(Debug)]
pub struct DiffScratch {
    /// `faulty ⊕ golden` per signal slot; non-zero only at `touched`.
    dev: Vec<u64>,
    /// Slots with a non-zero deviation word, unique.
    touched: Vec<u32>,
    /// One bit per instruction position: scheduled for evaluation.
    /// Drained in ascending position order (topological for a levelized
    /// program) by a forward scan that clears each bit as it pops —
    /// O(1) insert, no heap, and the scan touches only the word range
    /// the frontier actually spans.
    dirty: Vec<u64>,
    /// Two-phase flip-flop transfer buffer: `(q_slot, deviation)`.
    ff_updates: Vec<(u32, u64)>,
}

impl DiffScratch {
    /// Number of signals currently carrying a deviation (diagnostics).
    #[must_use]
    pub fn active_signals(&self) -> usize {
        self.touched.len()
    }
}

impl CompiledSim {
    /// Creates a [`DiffScratch`] sized for this program.
    #[must_use]
    pub fn new_diff_scratch(&self) -> DiffScratch {
        DiffScratch {
            dev: vec![0u64; self.num_cells],
            touched: Vec::new(),
            dirty: vec![0u64; self.instrs.len().div_ceil(64)],
            ff_updates: Vec::new(),
        }
    }

    /// Injects an SEU into the deviation state: flips flip-flop `ff` in
    /// lane `lane` (the dev-space form of
    /// [`flip_ff_lane`](Self::flip_ff_lane)).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn diff_seed(&self, sc: &mut DiffScratch, ff: FfIndex, lane: u32) {
        assert!(lane < 64);
        let slot = self.ffs[ff.index()] as usize;
        if sc.dev[slot] == 0 {
            sc.touched.push(slot as u32);
        }
        sc.dev[slot] ^= 1u64 << lane;
        debug_assert!(sc.dev[slot] != 0, "duplicate (ff, lane) seed cancelled itself");
    }

    /// Advances the deviation state through one cycle: cone-limited
    /// combinational settle, then the dev-space flip-flop step.
    ///
    /// Returns `(out_diff, state_diff)`: the OR over primary outputs of
    /// the during-cycle output deviations (lanes whose outputs disagree
    /// with golden — failure detection), and the OR over flip-flops of
    /// the next-state deviations (zero means **every** lane has
    /// reconverged with golden — the early-collapse proof, established
    /// without a register scan).
    ///
    /// `span` must cover cycle `t`; only gates reachable from the dirty
    /// frontier are evaluated.
    pub fn diff_cycle(&self, sc: &mut DiffScratch, span: &BitSpan, t: usize) -> (u64, u64) {
        debug_assert!(
            t >= span.start() && t < span.end(),
            "cycle {t} outside bit span {}..{}",
            span.start(),
            span.end()
        );
        let DiffScratch { dev, touched, dirty, ff_updates } = sc;
        let row = span.row(t);
        // Seed the frontier: every gate reading a deviant signal. Track
        // the word range the frontier spans so the drain scan below
        // never walks the clean remainder of the bitmap.
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &slot in touched.iter() {
            for &pos in self.fanout.consumers_of_slot(slot as usize) {
                let w = pos as usize / 64;
                dirty[w] |= 1u64 << (pos % 64);
                lo = lo.min(w);
                hi = hi.max(w);
            }
        }
        // Cone walk in ascending position order: drain the bitmap with a
        // forward scan, re-reading the current word after every pop so
        // same-word insertions are picked up. A consumer's position
        // always exceeds its producers', so each popped gate sees final
        // operand deviations and is evaluated exactly once.
        let mut w = lo;
        while w <= hi {
            let word = dirty[w];
            if word == 0 {
                w += 1;
                continue;
            }
            let bit = word.trailing_zeros();
            dirty[w] &= !(1u64 << bit);
            let pos = w * 64 + bit as usize;
            let instr = &self.instrs[pos];
            let pins = &self.pin_pool
                [instr.pin_start as usize..(instr.pin_start + instr.pin_len) as usize];
            let faulty = tape::eval_gate(instr.kind, pins, |p| {
                BitSpan::word_in_row(row, p as usize) ^ dev[p as usize]
            });
            let dv = faulty ^ BitSpan::word_in_row(row, instr.out as usize);
            // A zero deviation prunes the fanout: logical masking has
            // absorbed the fault on this path.
            if dv != 0 {
                dev[instr.out as usize] = dv;
                touched.push(instr.out);
                for &succ in self.fanout.consumers_of_slot(instr.out as usize) {
                    let sw = succ as usize / 64;
                    dirty[sw] |= 1u64 << (succ % 64);
                    hi = hi.max(sw);
                }
            }
        }
        let mut out_diff = 0u64;
        for &o in &self.outputs {
            out_diff |= dev[o as usize];
        }
        // Dev-space flip-flop step, two-phase: sample every deviant `D`,
        // clear the old deviations, then write the new `Q` deviations.
        ff_updates.clear();
        for &slot in touched.iter() {
            let dv = dev[slot as usize];
            let row = self.ff_q_start[slot as usize] as usize
                ..self.ff_q_start[slot as usize + 1] as usize;
            for &q in &self.ff_q_targets[row] {
                ff_updates.push((q, dv));
            }
        }
        for &slot in touched.iter() {
            dev[slot as usize] = 0;
        }
        touched.clear();
        let mut state_diff = 0u64;
        for &(q, dv) in ff_updates.iter() {
            if dv != 0 {
                dev[q as usize] = dv;
                touched.push(q);
                state_diff |= dv;
            }
        }
        (out_diff, state_diff)
    }

    /// Clears all deviations, returning the scratch to the all-clean
    /// state (cheap: proportional to the number of deviant slots).
    pub fn diff_reset(&self, sc: &mut DiffScratch) {
        for &slot in &sc.touched {
            sc.dev[slot as usize] = 0;
        }
        sc.touched.clear();
        debug_assert!(sc.dirty.iter().all(|&w| w == 0), "cone worklist not drained");
    }

    /// Replays the golden run from `seed` (the state at cycle `from`)
    /// and captures the bit-packed internal values for `start..end`.
    pub(crate) fn capture_bit_span(
        &self,
        tb: &Testbench,
        seed: &[bool],
        from: usize,
        start: usize,
        end: usize,
    ) -> BitSpan {
        debug_assert!(from <= start && start < end && end <= tb.num_cycles());
        let mut st = self.new_state();
        self.load_state(&mut st, seed);
        for t in from..start {
            self.set_inputs(&mut st, tb.cycle(t));
            self.eval(&mut st);
            self.step(&mut st);
        }
        let stride = self.num_cells.div_ceil(64);
        let mut words = vec![0u64; stride * (end - start)];
        for t in start..end {
            self.set_inputs(&mut st, tb.cycle(t));
            self.eval(&mut st);
            let base = (t - start) * stride;
            // Golden values are lane-uniform; bit 0 is the whole story.
            for (slot, &v) in st.values.iter().enumerate() {
                words[base + slot / 64] |= (v & 1) << (slot % 64);
            }
            self.step(&mut st);
        }
        BitSpan { start, end, stride, words }
    }
}

impl GoldenTrace {
    /// The golden [`BitSpan`] for cycles `start..end`, served through
    /// (and retained in) `cache` — replayed from the nearest stored
    /// state on a miss, zero-copy on a hit.
    ///
    /// Unlike value windows, bit spans are replayed under **every**
    /// trace policy (internal gate values are never stored); a dense
    /// trace merely seeds the replay at `start` itself.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`, `end > num_cycles()`, or `sim`/`tb`
    /// dimensions do not match the trace.
    #[must_use]
    pub fn bit_span_cached(
        &self,
        sim: &CompiledSim,
        tb: &Testbench,
        start: usize,
        end: usize,
        cache: &mut BitCache,
    ) -> Arc<BitSpan> {
        assert!(start < end, "empty bit span {start}..{end}");
        assert!(end <= self.num_cycles(), "bit span end {end} beyond trace");
        assert_eq!(sim.num_ffs(), self.num_ffs(), "bit span sim flip-flop count");
        assert_eq!(tb.num_cycles(), self.num_cycles(), "bit span test-bench length");
        let key = (start, end);
        if let Some(span) = cache.lookup(key) {
            return span;
        }
        let (seed, from) = self.seed_for(start);
        let span = Arc::new(sim.capture_bit_span(tb, seed, from, start, end));
        cache.misses += 1;
        cache.replayed_cycles += (end - from) as u64;
        cache.insert(key, Arc::clone(&span));
        span
    }
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::NetlistBuilder;

    use super::*;
    use crate::{broadcast, TracePolicy};

    /// A small sequential circuit with reconvergent fanout, masking
    /// paths and an inverter chain — enough structure to exercise cone
    /// growth, pruning and reconvergence.
    fn gadget() -> seugrade_netlist::Netlist {
        let mut b = NetlistBuilder::new("gadget");
        let en = b.input("en");
        let q0 = b.dff(false);
        let q1 = b.dff(true);
        let q2 = b.dff(false);
        let inv = b.not(q0);
        let inv2 = b.not(inv);
        let a = b.and2(inv2, en);
        let o = b.or2(a, q1);
        let x = b.xor2(o, q2);
        let m = b.mux(en, x, inv);
        b.connect_dff(q0, x).unwrap();
        b.connect_dff(q1, m).unwrap();
        b.connect_dff(q2, a).unwrap();
        b.output("x", x);
        b.output("m", m);
        b.finish().unwrap()
    }

    #[test]
    fn bit_spans_match_golden_values() {
        let n = gadget();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::random(1, 24, 7);
        for policy in [TracePolicy::Dense, TracePolicy::Checkpoint(5)] {
            let trace = sim.run_golden_with(&tb, policy);
            let mut cache = BitCache::new(4);
            let span = trace.bit_span_cached(&sim, &tb, 6, 14, &mut cache);
            // Brute-force reference: full golden run, checking every cell.
            let mut st = sim.new_state();
            for t in 0..14 {
                sim.set_inputs(&mut st, tb.cycle(t));
                sim.eval(&mut st);
                if t >= 6 {
                    for slot in 0..n.num_cells() {
                        assert_eq!(
                            span.word_at(slot, t),
                            broadcast(st.values[slot] & 1 == 1),
                            "policy {policy} slot {slot} cycle {t}"
                        );
                    }
                }
                sim.step(&mut st);
            }
        }
    }

    #[test]
    fn diff_cycles_match_brute_force_divergence() {
        let n = gadget();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::random(1, 30, 42);
        let trace = sim.run_golden(&tb);
        let mut cache = BitCache::new(2);
        let mut sc = sim.new_diff_scratch();
        for ff in 0..sim.num_ffs() {
            for inject in [0usize, 3, 11] {
                // Reference: a full 64-lane run with the flip applied in
                // lanes 1 and 5 at the injection cycle.
                let mut st = sim.new_state();
                let mut ref_trail = Vec::new();
                for t in 0..tb.num_cycles() {
                    if t == inject {
                        sim.flip_ff_lane(&mut st, FfIndex::new(ff), 1);
                        sim.flip_ff_lane(&mut st, FfIndex::new(ff), 5);
                    }
                    sim.set_inputs(&mut st, tb.cycle(t));
                    sim.eval(&mut st);
                    let mut out_diff = 0u64;
                    for (o, w) in sim.outputs_raw(&st).iter().enumerate() {
                        out_diff |= w ^ broadcast(trace.output_at(t)[o]);
                    }
                    sim.step(&mut st);
                    let mut state_diff = 0u64;
                    for f in 0..sim.num_ffs() {
                        state_diff |= sim.ff_raw(&st, FfIndex::new(f))
                            ^ broadcast(trace.state_at(t + 1)[f]);
                    }
                    if t >= inject {
                        ref_trail.push((out_diff, state_diff));
                    }
                }
                // Differential kernel over the same fault.
                sim.diff_seed(&mut sc, FfIndex::new(ff), 1);
                sim.diff_seed(&mut sc, FfIndex::new(ff), 5);
                for (i, &(ro, rs)) in ref_trail.iter().enumerate() {
                    let t = inject + i;
                    let span =
                        trace.bit_span_cached(&sim, &tb, 0, tb.num_cycles(), &mut cache);
                    let (o, s) = sim.diff_cycle(&mut sc, &span, t);
                    assert_eq!(o, ro, "out_diff ff {ff} inject {inject} cycle {t}");
                    assert_eq!(s, rs, "state_diff ff {ff} inject {inject} cycle {t}");
                }
                sim.diff_reset(&mut sc);
                assert_eq!(sc.active_signals(), 0);
            }
        }
    }

    #[test]
    fn reconverged_state_stays_clean_for_free() {
        // A decaying pipeline: d2 <- d1 <- d0 <- 0. A flip in d0 washes
        // out in three cycles; afterwards diff_cycle must evaluate
        // nothing and report zero diffs.
        let mut b = NetlistBuilder::new("decay");
        let zero = b.constant(false);
        let d0 = b.dff(false);
        let d1 = b.dff(false);
        let d2 = b.dff(false);
        b.connect_dff(d0, zero).unwrap();
        b.connect_dff(d1, d0).unwrap();
        b.connect_dff(d2, d1).unwrap();
        b.output("y", d2);
        let n = b.finish().unwrap();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 8);
        let trace = sim.run_golden(&tb);
        let mut cache = BitCache::new(1);
        let span = trace.bit_span_cached(&sim, &tb, 0, 8, &mut cache);
        let mut sc = sim.new_diff_scratch();
        sim.diff_seed(&mut sc, FfIndex::new(0), 0);
        let mut diffs = Vec::new();
        for t in 0..6 {
            diffs.push(sim.diff_cycle(&mut sc, &span, t));
        }
        // The deviation marches d0 -> d1 -> d2, shows at the output for
        // exactly one cycle, then the machine is reconverged for good.
        assert_eq!(diffs[0].0, 0, "not yet observable");
        assert_ne!(diffs[1].1, 0, "still marching");
        assert_ne!(diffs[2].0, 0, "observable at d2");
        assert_eq!(diffs[2].1, 0, "reconverged after the march");
        assert_eq!(diffs[3], (0, 0));
        assert_eq!(diffs[4], (0, 0));
        assert_eq!(sc.active_signals(), 0, "no lingering deviations");
    }

    #[test]
    fn shared_bit_cache_replays_each_span_once() {
        let n = gadget();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(1, 16);
        let trace = sim.run_golden_with(&tb, TracePolicy::Checkpoint(4));
        let root = BitCache::shared(4);
        let mut a = root.clone_handle();
        let mut b = root.clone_handle();
        let _ = trace.bit_span_cached(&sim, &tb, 4, 8, &mut a);
        let _ = trace.bit_span_cached(&sim, &tb, 4, 8, &mut b);
        assert_eq!((a.misses(), a.hits()), (1, 0));
        assert_eq!((b.misses(), b.hits()), (0, 1));
        assert_eq!(a.replayed_cycles(), 4);
        assert_eq!(b.replayed_cycles(), 0);
        // Disabled cache: every request replays.
        let mut d = BitCache::disabled();
        let _ = trace.bit_span_cached(&sim, &tb, 4, 8, &mut d);
        let _ = trace.bit_span_cached(&sim, &tb, 4, 8, &mut d);
        assert_eq!((d.misses(), d.hits()), (2, 0));
    }
}
