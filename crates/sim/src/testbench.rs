//! Test-bench stimulus vectors.

use std::fmt;

use crate::SplitMix64;

/// A sequence of input vectors, one per test-bench cycle.
///
/// Vector `t` holds the value of every primary input during cycle `t`, in
/// the netlist's input order. The paper's b14 experiment uses 160 vectors;
/// [`Testbench::random`] regenerates equivalent stimuli from a seed.
#[derive(Clone, PartialEq, Eq)]
pub struct Testbench {
    num_inputs: usize,
    vectors: Vec<Vec<bool>>,
}

impl Testbench {
    /// Wraps explicit vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not all have the same length.
    #[must_use]
    pub fn new(vectors: Vec<Vec<bool>>) -> Self {
        let num_inputs = vectors.first().map_or(0, Vec::len);
        assert!(
            vectors.iter().all(|v| v.len() == num_inputs),
            "ragged test-bench vectors"
        );
        Testbench { num_inputs, vectors }
    }

    /// Uniformly random stimuli (seeded, deterministic).
    #[must_use]
    pub fn random(num_inputs: usize, num_cycles: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let vectors = (0..num_cycles)
            .map(|_| (0..num_inputs).map(|_| rng.next_bool()).collect())
            .collect();
        Testbench { num_inputs, vectors }
    }

    /// Stimuli with a given probability of each bit being high.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    #[must_use]
    pub fn random_biased(
        num_inputs: usize,
        num_cycles: usize,
        seed: u64,
        num: u32,
        den: u32,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let vectors = (0..num_cycles)
            .map(|_| {
                (0..num_inputs)
                    .map(|_| rng.next_bool_ratio(num, den))
                    .collect()
            })
            .collect();
        Testbench { num_inputs, vectors }
    }

    /// All inputs low for the whole run (useful for autonomous circuits
    /// such as counters).
    #[must_use]
    pub fn constant_low(num_inputs: usize, num_cycles: usize) -> Self {
        Testbench {
            num_inputs,
            vectors: vec![vec![false; num_inputs]; num_cycles],
        }
    }

    /// Number of primary inputs each vector drives.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of cycles (vectors).
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.vectors.len()
    }

    /// The input vector applied during cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_cycles()`.
    #[must_use]
    pub fn cycle(&self, t: usize) -> &[bool] {
        &self.vectors[t]
    }

    /// Iterates over the vectors in cycle order.
    pub fn iter(&self) -> impl Iterator<Item = &[bool]> + '_ {
        self.vectors.iter().map(Vec::as_slice)
    }

    /// Truncates the test bench to the first `n` cycles (no-op if already
    /// shorter).
    #[must_use]
    pub fn truncated(&self, n: usize) -> Testbench {
        Testbench {
            num_inputs: self.num_inputs,
            vectors: self.vectors.iter().take(n).cloned().collect(),
        }
    }

    /// Total stimulus storage in bits: `num_inputs × num_cycles`.
    ///
    /// This is the quantity the autonomous emulator keeps in on-FPGA block
    /// RAM (Table 1's "FPGA RAM" column for the stimuli region).
    #[must_use]
    pub fn stimuli_bits(&self) -> u64 {
        self.num_inputs as u64 * self.vectors.len() as u64
    }
}

impl fmt::Debug for Testbench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Testbench")
            .field("num_inputs", &self.num_inputs)
            .field("num_cycles", &self.vectors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbench_is_send_sync() {
        // Shared read-only across the engine's worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Testbench>();
    }

    #[test]
    fn random_is_deterministic() {
        let a = Testbench::random(8, 20, 99);
        let b = Testbench::random(8, 20, 99);
        assert_eq!(a, b);
        let c = Testbench::random(8, 20, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes() {
        let tb = Testbench::random(5, 7, 1);
        assert_eq!(tb.num_inputs(), 5);
        assert_eq!(tb.num_cycles(), 7);
        assert_eq!(tb.cycle(3).len(), 5);
        assert_eq!(tb.iter().count(), 7);
        assert_eq!(tb.stimuli_bits(), 35);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_vectors_rejected() {
        let _ = Testbench::new(vec![vec![true], vec![true, false]]);
    }

    #[test]
    fn constant_low_is_all_false() {
        let tb = Testbench::constant_low(3, 4);
        assert!(tb.iter().all(|v| v.iter().all(|&b| !b)));
    }

    #[test]
    fn truncation() {
        let tb = Testbench::random(2, 10, 5);
        let t = tb.truncated(4);
        assert_eq!(t.num_cycles(), 4);
        assert_eq!(t.cycle(0), tb.cycle(0));
        assert_eq!(tb.truncated(100).num_cycles(), 10);
    }

    #[test]
    fn biased_extremes() {
        let hi = Testbench::random_biased(4, 10, 1, 1, 1);
        assert!(hi.iter().all(|v| v.iter().all(|&b| b)));
        let lo = Testbench::random_biased(4, 10, 1, 0, 1);
        assert!(lo.iter().all(|v| v.iter().all(|&b| !b)));
    }

    #[test]
    fn paper_scale_testbench() {
        // b14: 32 inputs, 160 vectors -> 5,120 stimulus bits (the paper's
        // 5.3 kbit time-mux FPGA RAM figure is this region).
        let tb = Testbench::random(32, 160, 2005);
        assert_eq!(tb.stimuli_bits(), 5_120);
    }
}
