//! Activity-driven (event) simulator — the cross-check oracle.

use seugrade_netlist::{CellKind, FfIndex, Netlist, SigId};

use crate::{GoldenTrace, Testbench};

/// A straightforward event-driven two-valued simulator.
///
/// Functionally identical to [`CompiledSim`](crate::CompiledSim) (lane 0)
/// but implemented with a completely different evaluation strategy
/// (per-gate events propagated in level order instead of a full compiled
/// sweep). The test suites simulate every circuit on both engines and
/// require identical traces; a divergence indicates a bug in one engine.
///
/// # Example
///
/// ```
/// use seugrade_netlist::NetlistBuilder;
/// use seugrade_sim::{CompiledSim, EventSim, Testbench};
///
/// # fn main() -> Result<(), seugrade_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("x");
/// let a = b.input("a");
/// let q = b.dff(false);
/// let g = b.xor2(a, q);
/// b.connect_dff(q, g)?;
/// b.output("y", g);
/// let n = b.finish()?;
///
/// let tb = Testbench::random(1, 16, 7);
/// let fast = CompiledSim::new(&n).run_golden(&tb);
/// let slow = EventSim::new(&n).run_golden(&tb);
/// assert_eq!(fast, slow);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EventSim {
    netlist: Netlist,
    level_of: Vec<u32>,
    fanout: Vec<Vec<SigId>>,
    values: Vec<bool>,
    /// Per-level worklists, reused across eval calls.
    dirty: Vec<Vec<SigId>>,
    in_queue: Vec<bool>,
    events_processed: u64,
}

impl EventSim {
    /// Builds an event simulator for a netlist (cloned internally).
    ///
    /// # Panics
    ///
    /// Panics on combinational loops (excluded by netlist validation).
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let lv = netlist.levelize().expect("acyclic netlist");
        let n = netlist.num_cells();
        let mut level_of = vec![0u32; n];
        for (id, _) in netlist.iter_cells() {
            level_of[id.index()] = lv.level(id);
        }
        let depth = lv.depth() as usize;
        let mut sim = EventSim {
            fanout: netlist.fanout_map(),
            level_of,
            values: vec![false; n],
            dirty: vec![Vec::new(); depth + 1],
            in_queue: vec![false; n],
            events_processed: 0,
            netlist: netlist.clone(),
        };
        sim.reset();
        sim
    }

    /// Resets flip-flops to initial values, inputs low, and re-settles.
    pub fn reset(&mut self) {
        for v in &mut self.values {
            *v = false;
        }
        // Every gate must be evaluated once to establish a consistent
        // initial picture (e.g. a NOT of an all-low cone is high even
        // though nothing "changed").
        let mut gates = Vec::new();
        for (id, cell) in self.netlist.iter_cells() {
            match cell.kind() {
                CellKind::Const(v) => self.values[id.index()] = v,
                CellKind::Dff { init } => self.values[id.index()] = init,
                CellKind::Input => {}
                CellKind::Gate(_) => gates.push(id),
            }
        }
        for g in gates {
            self.schedule(g);
        }
        self.settle();
    }

    fn schedule(&mut self, id: SigId) {
        if !self.in_queue[id.index()] {
            self.in_queue[id.index()] = true;
            let lvl = self.level_of[id.index()] as usize;
            self.dirty[lvl].push(id);
        }
    }

    fn schedule_fanout(&mut self, id: SigId) {
        let consumers: Vec<SigId> = self.fanout[id.index()].clone();
        for c in consumers {
            if matches!(self.netlist.cell(c).kind(), CellKind::Gate(_)) {
                self.schedule(c);
            }
        }
    }

    fn settle(&mut self) {
        for lvl in 0..self.dirty.len() {
            while let Some(id) = self.dirty[lvl].pop() {
                self.in_queue[id.index()] = false;
                self.events_processed += 1;
                let cell = self.netlist.cell(id);
                let CellKind::Gate(kind) = cell.kind() else {
                    continue;
                };
                let pins: Vec<bool> = cell
                    .pins()
                    .iter()
                    .map(|p| self.values[p.index()])
                    .collect();
                let new = kind.eval_bool(&pins);
                if new != self.values[id.index()] {
                    self.values[id.index()] = new;
                    // Fanout gates are at strictly higher levels, so the
                    // per-level sweep visits them later in this settle.
                    let consumers: Vec<SigId> = self.fanout[id.index()]
                        .iter()
                        .copied()
                        .filter(|c| {
                            matches!(self.netlist.cell(*c).kind(), CellKind::Gate(_))
                        })
                        .collect();
                    for c in consumers {
                        self.schedule(c);
                    }
                }
            }
        }
    }

    /// Applies an input vector and settles combinational logic.
    ///
    /// Only gates in the fan-out cone of *changed* inputs are re-evaluated
    /// (the "activity" in activity-driven).
    ///
    /// # Panics
    ///
    /// Panics if `vector` length differs from the input count.
    pub fn set_inputs(&mut self, vector: &[bool]) {
        let inputs: Vec<SigId> = self.netlist.inputs().to_vec();
        assert_eq!(vector.len(), inputs.len(), "input vector width");
        for (i, &bit) in inputs.iter().zip(vector) {
            if self.values[i.index()] != bit {
                self.values[i.index()] = bit;
                self.schedule_fanout(*i);
            }
        }
        self.settle();
    }

    /// Latches flip-flops (`Q <= D`) and settles the new state.
    pub fn step(&mut self) {
        let ffs: Vec<SigId> = self.netlist.ffs().to_vec();
        let mut changed = Vec::new();
        // Two-phase: read all D values first, then commit.
        let next: Vec<bool> = ffs
            .iter()
            .map(|&f| self.values[self.netlist.cell(f).pins()[0].index()])
            .collect();
        for (f, nv) in ffs.iter().zip(next) {
            if self.values[f.index()] != nv {
                self.values[f.index()] = nv;
                changed.push(*f);
            }
        }
        for f in changed {
            self.schedule_fanout(f);
        }
        self.settle();
    }

    /// Current value of a signal.
    #[must_use]
    pub fn value(&self, sig: SigId) -> bool {
        self.values[sig.index()]
    }

    /// Current primary-output vector.
    #[must_use]
    pub fn outputs(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|(_, s)| self.values[s.index()])
            .collect()
    }

    /// Current flip-flop vector in [`FfIndex`] order.
    #[must_use]
    pub fn state(&self) -> Vec<bool> {
        self.netlist
            .ffs()
            .iter()
            .map(|f| self.values[f.index()])
            .collect()
    }

    /// Flips one flip-flop (SEU injection) and settles.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    pub fn flip_ff(&mut self, ff: FfIndex) {
        let sig = self.netlist.ff_signal(ff);
        self.values[sig.index()] ^= true;
        self.schedule_fanout(sig);
        self.settle();
    }

    /// Total gate evaluations performed so far (activity metric).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs the full test bench from reset, capturing the golden trace.
    pub fn run_golden(&mut self, tb: &Testbench) -> GoldenTrace {
        self.reset();
        let mut outputs = Vec::with_capacity(tb.num_cycles());
        let mut states = Vec::with_capacity(tb.num_cycles() + 1);
        states.push(self.state());
        for vector in tb.iter() {
            self.set_inputs(vector);
            outputs.push(self.outputs());
            self.step();
            states.push(self.state());
        }
        GoldenTrace::new_dense(outputs, states)
    }
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::NetlistBuilder;

    use crate::{CompiledSim, SplitMix64};
    use super::*;

    #[test]
    fn matches_compiled_on_counter() {
        let mut b = NetlistBuilder::new("cnt");
        let q0 = b.dff(false);
        let q1 = b.dff(true);
        let n0 = b.not(q0);
        let n1 = b.xor2(q1, q0);
        b.connect_dff(q0, n0).unwrap();
        b.connect_dff(q1, n1).unwrap();
        b.output("b0", q0);
        b.output("b1", q1);
        let n = b.finish().unwrap();
        let tb = Testbench::constant_low(0, 12);
        let fast = CompiledSim::new(&n).run_golden(&tb);
        let slow = EventSim::new(&n).run_golden(&tb);
        assert_eq!(fast, slow);
    }

    /// Random netlist generator for cross-checking (gates only reference
    /// earlier signals, so it is acyclic by construction).
    fn random_netlist(seed: u64) -> Netlist {
        let mut rng = SplitMix64::new(seed);
        let mut b = NetlistBuilder::new("rand");
        let n_in = 2 + rng.index(4);
        let n_ff = 1 + rng.index(5);
        let n_gates = 10 + rng.index(30);
        let mut sigs = Vec::new();
        for i in 0..n_in {
            sigs.push(b.input(format!("i{i}")));
        }
        let mut ffs = Vec::new();
        for _ in 0..n_ff {
            let q = b.dff(rng.next_bool());
            ffs.push(q);
            sigs.push(q);
        }
        for _ in 0..n_gates {
            use seugrade_netlist::GateKind::*;
            let kind = [And, Or, Nand, Nor, Xor, Xnor, Not, Buf, Mux][rng.index(9)];
            let pick = |rng: &mut SplitMix64, sigs: &[seugrade_netlist::SigId]| {
                sigs[rng.index(sigs.len())]
            };
            let g = match kind {
                Not | Buf => {
                    let a = pick(&mut rng, &sigs);
                    b.gate(kind, &[a])
                }
                Mux => {
                    let s = pick(&mut rng, &sigs);
                    let d0 = pick(&mut rng, &sigs);
                    let d1 = pick(&mut rng, &sigs);
                    b.mux(s, d0, d1)
                }
                _ => {
                    let x = pick(&mut rng, &sigs);
                    let y = pick(&mut rng, &sigs);
                    b.gate(kind, &[x, y])
                }
            };
            sigs.push(g);
        }
        for (i, &q) in ffs.iter().enumerate() {
            let d = sigs[rng.index(sigs.len())];
            b.connect_dff(q, d).unwrap();
            b.output(format!("ff_o{i}"), q);
        }
        for i in 0..3 {
            b.output(format!("o{i}"), sigs[rng.index(sigs.len())]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn matches_compiled_on_random_circuits() {
        for seed in 0..25 {
            let n = random_netlist(seed);
            let tb = Testbench::random(n.num_inputs(), 20, seed ^ 0xFFFF);
            let fast = CompiledSim::new(&n).run_golden(&tb);
            let slow = EventSim::new(&n).run_golden(&tb);
            assert_eq!(fast, slow, "divergence on seed {seed}");
        }
    }

    #[test]
    fn flip_ff_propagates() {
        let mut b = NetlistBuilder::new("f");
        let q = b.dff(false);
        let c = b.constant(false);
        b.connect_dff(q, c).unwrap();
        let inv = b.not(q);
        b.output("y", inv);
        let n = b.finish().unwrap();
        let mut sim = EventSim::new(&n);
        assert_eq!(sim.outputs(), vec![true]);
        sim.flip_ff(FfIndex::new(0));
        assert_eq!(sim.outputs(), vec![false]);
        assert_eq!(sim.state(), vec![true]);
    }

    #[test]
    fn activity_counter_grows_only_on_changes() {
        let mut b = NetlistBuilder::new("idle");
        let a = b.input("a");
        let g = b.not(a);
        b.output("y", g);
        let n = b.finish().unwrap();
        let mut sim = EventSim::new(&n);
        let after_reset = sim.events_processed();
        sim.set_inputs(&[false]); // no change: input was already low
        assert_eq!(sim.events_processed(), after_reset);
        sim.set_inputs(&[true]);
        assert!(sim.events_processed() > after_reset);
    }
}
