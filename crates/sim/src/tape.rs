//! The specialized evaluation tape: homogeneous SoA opcode runs.
//!
//! [`CompiledSim::eval`](crate::CompiledSim::eval) used to walk a
//! per-gate instruction list, paying a `match` on the gate kind and a
//! pin-pool slice per instruction. After techmap the instruction mix is
//! dominated by 2-input AND/OR/XOR families plus inverters, so this
//! module recompiles the levelized program into **runs** of one fixed
//! opcode over struct-of-arrays operand tables:
//!
//! - Binary runs share three parallel arrays (`out`, `a`, `b`); the
//!   opcode of the run — not of the gate — picks the combining function,
//!   so the inner loop is branch-free.
//! - `Not`/`Buf` cells are **folded into consumer pins**: an operand
//!   index carries a negation flag in its top bit, realized as an XOR
//!   with a sign-extended mask — no extra instruction, no extra level of
//!   indirection for inverter chains. The inverter's own slot is still
//!   materialized by a cheap `Copy` run (collapsing whole `Not`/`Buf`
//!   chains to a single copy from the chain root), so every signal word
//!   stays bit-exact with the generic tape — raw accessors, VCD export
//!   and the equivalence oracles never see a difference.
//! - 2-input muxes get their own run; wide gates (3+-input AND/OR/XOR
//!   trees) fall back to a generic run that evaluates the original
//!   per-gate instruction form.
//!
//! Runs are emitted level by level (gates within a level are mutually
//! independent, so regrouping them by opcode preserves the topological
//! contract), which keeps dispatch overhead at one branch per
//! (level × opcode) instead of one per gate.

use seugrade_netlist::{CellKind, GateKind, Levelization, Netlist, SigId};

/// Negation flag carried in the top bit of a packed operand index.
const NEG: u32 = 1 << 31;

/// Packed operand → value: load the slot and XOR with the sign-extended
/// negation flag (all-ones when bit 31 is set, zero otherwise).
#[inline]
fn ld(values: &[u64], packed: u32) -> u64 {
    let neg = i64::from(packed as i32 >> 31) as u64;
    values[(packed & !NEG) as usize] ^ neg
}

/// One specialized opcode. Binary ops read the shared `bin_*` arrays,
/// `Copy` the `cp_*` arrays, `Mux2` the `mx_*` arrays, and `Generic`
/// a range of fallback instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    And2,
    Nand2,
    Or2,
    Nor2,
    Xor2,
    Xnor2,
    Copy,
    Mux2,
    Generic,
}

/// A run: `len` consecutive entries of one opcode's operand tables.
#[derive(Clone, Debug)]
struct Run {
    op: Op,
    start: u32,
    len: u32,
}

/// Fallback instruction for gates outside the specialized families.
#[derive(Clone, Debug)]
struct GenInstr {
    kind: GateKind,
    out: u32,
    pin_start: u32,
    pin_len: u32,
}

/// The compiled specialized tape. Built once per [`crate::CompiledSim`];
/// evaluation ([`Tape::eval`]) writes every combinational slot, exactly
/// like the generic instruction walk it replaces.
#[derive(Clone, Debug, Default)]
pub(crate) struct Tape {
    runs: Vec<Run>,
    bin_out: Vec<u32>,
    bin_a: Vec<u32>,
    bin_b: Vec<u32>,
    cp_out: Vec<u32>,
    cp_a: Vec<u32>,
    mx_out: Vec<u32>,
    mx_s: Vec<u32>,
    mx_d0: Vec<u32>,
    mx_d1: Vec<u32>,
    gen_instrs: Vec<GenInstr>,
    gen_pins: Vec<u32>,
}

/// Follows `Not`/`Buf` chains from `sig` to the first non-inverter
/// driver, accumulating negation parity.
fn resolve(netlist: &Netlist, mut sig: SigId) -> (SigId, bool) {
    let mut neg = false;
    loop {
        match netlist.cell(sig).kind() {
            CellKind::Gate(GateKind::Not) => {
                neg = !neg;
                sig = netlist.cell(sig).pins()[0];
            }
            CellKind::Gate(GateKind::Buf) => {
                sig = netlist.cell(sig).pins()[0];
            }
            _ => return (sig, neg),
        }
    }
}

/// Packs a pin into an operand index: resolved chain root plus the
/// accumulated negation flag in bit 31.
fn packed(netlist: &Netlist, sig: SigId) -> u32 {
    let (root, neg) = resolve(netlist, sig);
    root.index() as u32 | if neg { NEG } else { 0 }
}

impl Tape {
    /// Recompiles a levelized netlist into specialized runs.
    pub(crate) fn build(netlist: &Netlist, lv: &Levelization) -> Self {
        assert!(
            netlist.num_cells() < NEG as usize,
            "netlist exceeds the packed-operand address space"
        );
        let mut tape = Tape::default();
        // Bucket gate ids by level; within a level any order is valid.
        let depth = lv.depth() as usize;
        let mut by_level: Vec<Vec<SigId>> = vec![Vec::new(); depth + 1];
        for &id in lv.order() {
            by_level[lv.level(id) as usize].push(id);
        }
        let mut bucket: Vec<(Op, SigId)> = Vec::new();
        for ids in &by_level {
            bucket.clear();
            for &id in ids {
                let cell = netlist.cell(id);
                let CellKind::Gate(kind) = cell.kind() else {
                    unreachable!("levelize order contains only gates")
                };
                let op = match (kind, cell.pins().len()) {
                    (GateKind::Buf | GateKind::Not, 1) => Op::Copy,
                    (GateKind::And, 2) => Op::And2,
                    (GateKind::Nand, 2) => Op::Nand2,
                    (GateKind::Or, 2) => Op::Or2,
                    (GateKind::Nor, 2) => Op::Nor2,
                    (GateKind::Xor, 2) => Op::Xor2,
                    (GateKind::Xnor, 2) => Op::Xnor2,
                    (GateKind::Mux, 3) => Op::Mux2,
                    _ => Op::Generic,
                };
                bucket.push((op, id));
            }
            // Stable regrouping: one run per opcode present in the level.
            for op in [
                Op::Copy,
                Op::And2,
                Op::Nand2,
                Op::Or2,
                Op::Nor2,
                Op::Xor2,
                Op::Xnor2,
                Op::Mux2,
                Op::Generic,
            ] {
                tape.emit_run(netlist, op, bucket.iter().filter(|(o, _)| *o == op));
            }
        }
        tape
    }

    fn emit_run<'a>(
        &mut self,
        netlist: &Netlist,
        op: Op,
        gates: impl Iterator<Item = &'a (Op, SigId)>,
    ) {
        let start = match op {
            Op::Copy => self.cp_out.len(),
            Op::Mux2 => self.mx_out.len(),
            Op::Generic => self.gen_instrs.len(),
            _ => self.bin_out.len(),
        } as u32;
        let mut len = 0u32;
        for &(_, id) in gates {
            len += 1;
            let cell = netlist.cell(id);
            let out = id.index() as u32;
            let pins = cell.pins();
            match op {
                Op::Copy => {
                    // Collapse the whole inverter chain into one copy
                    // from its root (the packed flag carries the parity).
                    self.cp_out.push(out);
                    self.cp_a.push(packed(netlist, id));
                }
                Op::Mux2 => {
                    self.mx_out.push(out);
                    self.mx_s.push(packed(netlist, pins[0]));
                    self.mx_d0.push(packed(netlist, pins[1]));
                    self.mx_d1.push(packed(netlist, pins[2]));
                }
                Op::Generic => {
                    let pin_start = self.gen_pins.len() as u32;
                    // Generic pins stay unfolded: inverter slots are
                    // always materialized, so the original indices are
                    // correct and the fallback needs no mask logic.
                    self.gen_pins.extend(pins.iter().map(|p| p.index() as u32));
                    self.gen_instrs.push(GenInstr {
                        kind: match cell.kind() {
                            CellKind::Gate(k) => k,
                            _ => unreachable!(),
                        },
                        out,
                        pin_start,
                        pin_len: pins.len() as u32,
                    });
                }
                _ => {
                    self.bin_out.push(out);
                    self.bin_a.push(packed(netlist, pins[0]));
                    self.bin_b.push(packed(netlist, pins[1]));
                }
            }
        }
        if len > 0 {
            self.runs.push(Run { op, start, len });
        }
    }

    /// Number of gates evaluated through specialized (non-generic) runs.
    #[cfg(test)]
    pub(crate) fn specialized_gates(&self) -> usize {
        self.bin_out.len() + self.cp_out.len() + self.mx_out.len()
    }

    /// One levelized pass over all runs: settles every combinational
    /// slot, bit-exact with the generic instruction walk.
    pub(crate) fn eval(&self, values: &mut [u64]) {
        for run in &self.runs {
            let s = run.start as usize;
            let e = s + run.len as usize;
            match run.op {
                Op::And2 => self.bin(values, s, e, |a, b| a & b),
                Op::Nand2 => self.bin(values, s, e, |a, b| !(a & b)),
                Op::Or2 => self.bin(values, s, e, |a, b| a | b),
                Op::Nor2 => self.bin(values, s, e, |a, b| !(a | b)),
                Op::Xor2 => self.bin(values, s, e, |a, b| a ^ b),
                Op::Xnor2 => self.bin(values, s, e, |a, b| !(a ^ b)),
                Op::Copy => {
                    for (&out, &a) in self.cp_out[s..e].iter().zip(&self.cp_a[s..e]) {
                        values[out as usize] = ld(values, a);
                    }
                }
                Op::Mux2 => {
                    for i in s..e {
                        let sel = ld(values, self.mx_s[i]);
                        let v = (sel & ld(values, self.mx_d1[i]))
                            | (!sel & ld(values, self.mx_d0[i]));
                        values[self.mx_out[i] as usize] = v;
                    }
                }
                Op::Generic => {
                    for g in &self.gen_instrs[s..e] {
                        let pins = &self.gen_pins
                            [g.pin_start as usize..(g.pin_start + g.pin_len) as usize];
                        let v = eval_gate(g.kind, pins, |p| values[p as usize]);
                        values[g.out as usize] = v;
                    }
                }
            }
        }
    }

    #[inline]
    fn bin(&self, values: &mut [u64], s: usize, e: usize, f: impl Fn(u64, u64) -> u64) {
        let outs = &self.bin_out[s..e];
        let az = &self.bin_a[s..e];
        let bz = &self.bin_b[s..e];
        for ((&out, &a), &b) in outs.iter().zip(az).zip(bz) {
            values[out as usize] = f(ld(values, a), ld(values, b));
        }
    }
}

/// Generic n-ary gate evaluation over an arbitrary operand reader —
/// shared by the generic kernel (`read` = plain slot load) and the
/// differential cone walker (`read` = golden bit ⊕ deviation word).
pub(crate) fn eval_gate(kind: GateKind, pins: &[u32], read: impl Fn(u32) -> u64) -> u64 {
    match (kind, pins) {
        (GateKind::Buf, [a]) => read(*a),
        (GateKind::Not, [a]) => !read(*a),
        (GateKind::And, [a, b]) => read(*a) & read(*b),
        (GateKind::Or, [a, b]) => read(*a) | read(*b),
        (GateKind::Nand, [a, b]) => !(read(*a) & read(*b)),
        (GateKind::Nor, [a, b]) => !(read(*a) | read(*b)),
        (GateKind::Xor, [a, b]) => read(*a) ^ read(*b),
        (GateKind::Xnor, [a, b]) => !(read(*a) ^ read(*b)),
        (GateKind::Mux, [s, d0, d1]) => {
            let sel = read(*s);
            (sel & read(*d1)) | (!sel & read(*d0))
        }
        (kind, pins) => {
            let mut acc = read(pins[0]);
            for &p in &pins[1..] {
                let v = read(p);
                acc = match kind {
                    GateKind::And | GateKind::Nand => acc & v,
                    GateKind::Or | GateKind::Nor => acc | v,
                    GateKind::Xor | GateKind::Xnor => acc ^ v,
                    _ => unreachable!("wide {kind} impossible"),
                };
            }
            match kind {
                GateKind::Nand | GateKind::Nor | GateKind::Xnor => !acc,
                _ => acc,
            }
        }
    }
}
