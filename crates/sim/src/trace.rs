//! The fault-free reference ("golden") run: dense or checkpointed.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::{CompiledSim, Testbench};

/// How a [`GoldenTrace`] stores the reference run.
///
/// The autonomous emulator never materializes the whole golden run: it
/// checkpoints the flip-flop state periodically and regenerates anything
/// else on demand (the time-mux technique's golden machine *is* such a
/// rolling checkpoint). `TracePolicy` gives the software pipeline the
/// same knob:
///
/// - [`Dense`](TracePolicy::Dense) — store outputs and states for every
///   cycle (`O(FFs × cycles)` memory, zero-cost random access). The
///   historical behaviour, preserved exactly.
/// - [`Checkpoint(K)`](TracePolicy::Checkpoint) — store only the full
///   flip-flop state every `K` cycles (`O(FFs × cycles / K)` memory).
///   Outputs and intermediate states are reconstructed on demand by
///   replaying the compiled simulator from the nearest checkpoint into a
///   bounded [`TraceWindow`].
///
/// Both policies describe the *same* golden run; every consumer of a
/// window sees bit-identical data whatever the policy (a property the
/// agreement suites enforce through fault verdicts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TracePolicy {
    /// Full outputs + state trajectory, random access.
    Dense,
    /// Full flip-flop state every `K` cycles; everything else replayed.
    Checkpoint(usize),
}

impl TracePolicy {
    /// Parses a policy label: `dense` or `checkpoint:<K>` (K ≥ 1).
    ///
    /// The inverse of [`label`](Self::label); used by CLI flags.
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        if s == "dense" {
            return Some(TracePolicy::Dense);
        }
        let k = s.strip_prefix("checkpoint:")?.parse::<usize>().ok()?;
        (k >= 1).then_some(TracePolicy::Checkpoint(k))
    }

    /// The label form parsed by [`from_label`](Self::from_label).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TracePolicy::Dense => "dense".to_owned(),
            TracePolicy::Checkpoint(k) => format!("checkpoint:{k}"),
        }
    }
}

impl fmt::Display for TracePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The stored representation behind a [`GoldenTrace`].
#[derive(Clone, PartialEq, Eq)]
enum Repr {
    /// `outputs[t]` = outputs during cycle `t`; `states[t]` = flip-flop
    /// vector at the *start* of cycle `t` (`num_cycles + 1` entries, the
    /// last being the end state).
    Dense {
        outputs: Vec<Vec<bool>>,
        states: Vec<Vec<bool>>,
    },
    /// `checkpoints[i]` = flip-flop vector at the start of cycle `i * K`,
    /// plus the end-of-run state (needed by convergence checks at the
    /// final cycle and by [`GoldenTrace::final_state`]).
    Checkpoint {
        interval: usize,
        checkpoints: Vec<Vec<bool>>,
        final_state: Vec<bool>,
    },
}

/// Captured golden run: the reference against which every faulty run is
/// compared, and what the autonomous emulator stores in its campaign RAM
/// (golden outputs for mask-scan/state-scan, golden states for
/// state-scan's scan-in vectors).
///
/// Produced by [`CompiledSim::run_golden`](crate::CompiledSim::run_golden)
/// (dense) or
/// [`CompiledSim::run_golden_with`](crate::CompiledSim::run_golden_with)
/// (any [`TracePolicy`]). Random access
/// ([`output_at`](Self::output_at)/[`state_at`](Self::state_at)) is only
/// available under [`TracePolicy::Dense`]; checkpointed traces hand out
/// bounded [`TraceWindow`]s via [`window`](Self::window) instead — the
/// access pattern the streaming fault graders use under *both* policies.
#[derive(Clone, PartialEq, Eq)]
pub struct GoldenTrace {
    num_outputs: usize,
    num_ffs: usize,
    num_cycles: usize,
    repr: Repr,
}

/// A contiguous span of golden data: outputs for cycles
/// `start..end` and states for `start..=end`.
///
/// Under [`TracePolicy::Dense`] a window borrows the trace (zero copy);
/// under [`TracePolicy::Checkpoint`] it owns data replayed from the
/// nearest checkpoint. Either way, accessors take **absolute** cycle
/// indices, so grading code is window-position agnostic.
#[derive(Clone, Debug)]
pub struct TraceWindow<'a> {
    start: usize,
    data: WindowData<'a>,
}

#[derive(Clone, Debug)]
enum WindowData<'a> {
    Borrowed {
        outputs: &'a [Vec<bool>],
        states: &'a [Vec<bool>],
    },
    Owned {
        outputs: Vec<Vec<bool>>,
        states: Vec<Vec<bool>>,
    },
    Shared(Arc<SpanData>),
}

/// One replayed checkpoint-aligned span, shareable across chunks (and
/// across the windows handed out for them) through a [`WindowCache`].
#[derive(Debug)]
struct SpanData {
    outputs: Vec<Vec<bool>>,
    states: Vec<Vec<bool>>,
}

/// Where a [`WindowCache`] keeps its spans: a plain per-handle vector,
/// or a store shared (behind a mutex) by every handle cloned from the
/// same [`WindowCache::shared`] root — so a pool of grading workers
/// replays each span once *in total*, not once per worker.
#[derive(Debug)]
enum CacheStore {
    /// Exclusive to this handle; no locking.
    Local(Vec<((usize, usize), Arc<SpanData>)>),
    /// Shared by all handles cloned from the same root. The lock is
    /// held only for lookup/insert (never during a replay), and poison
    /// is ignored — the store holds immutable golden spans, which a
    /// worker panic cannot corrupt.
    Shared(Arc<Mutex<Vec<((usize, usize), Arc<SpanData>)>>>),
}

/// A small LRU of replayed golden spans, keyed by the exact
/// `start..end` cycle span.
///
/// Under [`TracePolicy::Checkpoint`] every
/// [`window`](GoldenTrace::window) call replays the span from the
/// nearest stored checkpoint — pure waste when adjacent chunks of a
/// cycle-major plan ask for the *same* span over and over. The cache
/// reconstructs a span once, wraps it in an [`Arc`], and serves every
/// later request for the same span zero-copy via
/// [`GoldenTrace::window_cached`]. Eviction is least-recently-used.
///
/// [`new`](Self::new) makes a private, lock-free cache.
/// [`shared`](Self::shared) makes a cache whose *store* is shared by
/// every handle [`clone_handle`](Self::clone_handle) produces — the
/// engine gives each worker a handle of one per-run store, so the
/// replay tax is paid once per span across the whole pool.
/// Hit/miss/replay counters always stay per-handle.
///
/// A capacity of `0` disables caching: every request replays, which is
/// exactly the pre-cache behaviour (the equivalence suites exploit this
/// to pin verdict digests across cache configurations). Dense traces
/// never touch the cache — their windows borrow the stored trace.
#[derive(Debug)]
pub struct WindowCache {
    capacity: usize,
    /// LRU order: least-recent first, most-recent last.
    store: CacheStore,
    hits: u64,
    misses: u64,
    replayed_cycles: u64,
}

impl WindowCache {
    /// A private (lock-free) cache holding up to `capacity` spans.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        WindowCache {
            capacity,
            store: CacheStore::Local(Vec::with_capacity(capacity.min(64))),
            hits: 0,
            misses: 0,
            replayed_cycles: 0,
        }
    }

    /// A cache whose span store is shared with every handle cloned off
    /// it via [`clone_handle`](Self::clone_handle).
    #[must_use]
    pub fn shared(capacity: usize) -> Self {
        WindowCache {
            capacity,
            store: CacheStore::Shared(Arc::new(Mutex::new(Vec::with_capacity(
                capacity.min(64),
            )))),
            hits: 0,
            misses: 0,
            replayed_cycles: 0,
        }
    }

    /// A new handle with zeroed counters. For a [`shared`](Self::shared)
    /// cache the handle uses the *same* span store; for a private cache
    /// it is simply a fresh empty cache of the same capacity.
    #[must_use]
    pub fn clone_handle(&self) -> Self {
        let store = match &self.store {
            CacheStore::Local(_) => {
                CacheStore::Local(Vec::with_capacity(self.capacity.min(64)))
            }
            CacheStore::Shared(store) => CacheStore::Shared(Arc::clone(store)),
        };
        WindowCache { capacity: self.capacity, store, hits: 0, misses: 0, replayed_cycles: 0 }
    }

    /// A capacity-0 cache: every span request replays from a checkpoint.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Maximum number of spans held.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Span requests this handle served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Span requests through this handle that had to replay from a
    /// checkpoint (capacity-0 requests count here too).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total golden cycles re-simulated on behalf of this handle — the
    /// replay tax actually paid. Each miss adds the distance from the
    /// nearest stored checkpoint to the span's end.
    #[must_use]
    pub fn replayed_cycles(&self) -> u64 {
        self.replayed_cycles
    }

    fn store_lookup(
        entries: &mut Vec<((usize, usize), Arc<SpanData>)>,
        key: (usize, usize),
    ) -> Option<Arc<SpanData>> {
        let pos = entries.iter().position(|(k, _)| *k == key)?;
        let entry = entries.remove(pos);
        let span = Arc::clone(&entry.1);
        entries.push(entry);
        Some(span)
    }

    fn store_insert(
        entries: &mut Vec<((usize, usize), Arc<SpanData>)>,
        capacity: usize,
        key: (usize, usize),
        span: Arc<SpanData>,
    ) {
        if entries.iter().any(|(k, _)| *k == key) {
            // A racing handle replayed the same span first; keep its copy.
            return;
        }
        if entries.len() == capacity {
            entries.remove(0);
        }
        entries.push((key, span));
    }

    fn lookup(&mut self, key: (usize, usize)) -> Option<Arc<SpanData>> {
        let hit = match &mut self.store {
            CacheStore::Local(entries) => Self::store_lookup(entries, key),
            CacheStore::Shared(store) => {
                let mut entries =
                    store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                Self::store_lookup(&mut entries, key)
            }
        };
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    fn insert(&mut self, key: (usize, usize), span: Arc<SpanData>) {
        if self.capacity == 0 {
            return;
        }
        match &mut self.store {
            CacheStore::Local(entries) => {
                Self::store_insert(entries, self.capacity, key, span);
            }
            CacheStore::Shared(store) => {
                let mut entries =
                    store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                Self::store_insert(&mut entries, self.capacity, key, span);
            }
        }
    }
}

impl TraceWindow<'_> {
    /// First cycle covered by the window.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last covered cycle. Outputs are available for
    /// `start()..end()`, states for `start()..=end()`.
    #[must_use]
    pub fn end(&self) -> usize {
        let n = match &self.data {
            WindowData::Borrowed { outputs, .. } => outputs.len(),
            WindowData::Owned { outputs, .. } => outputs.len(),
            WindowData::Shared(span) => span.outputs.len(),
        };
        self.start + n
    }

    /// Outputs observed during (absolute) cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `start()..end()`.
    #[must_use]
    pub fn output_at(&self, t: usize) -> &[bool] {
        assert!(
            t >= self.start && t < self.end(),
            "cycle {t} outside window {}..{}",
            self.start,
            self.end()
        );
        match &self.data {
            WindowData::Borrowed { outputs, .. } => &outputs[t - self.start],
            WindowData::Owned { outputs, .. } => &outputs[t - self.start],
            WindowData::Shared(span) => &span.outputs[t - self.start],
        }
    }

    /// Flip-flop state at the start of (absolute) cycle `t`;
    /// `t = end()` gives the state after the window's last cycle.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `start()..=end()`.
    #[must_use]
    pub fn state_at(&self, t: usize) -> &[bool] {
        assert!(
            t >= self.start && t <= self.end(),
            "state cycle {t} outside window {}..={}",
            self.start,
            self.end()
        );
        match &self.data {
            WindowData::Borrowed { states, .. } => &states[t - self.start],
            WindowData::Owned { states, .. } => &states[t - self.start],
            WindowData::Shared(span) => &span.states[t - self.start],
        }
    }
}

impl GoldenTrace {
    pub(crate) fn new_dense(outputs: Vec<Vec<bool>>, states: Vec<Vec<bool>>) -> Self {
        assert_eq!(states.len(), outputs.len() + 1, "trace shape mismatch");
        GoldenTrace {
            num_outputs: outputs.first().map_or(0, Vec::len),
            num_ffs: states.first().map_or(0, Vec::len),
            num_cycles: outputs.len(),
            repr: Repr::Dense { outputs, states },
        }
    }

    pub(crate) fn new_checkpoint(
        num_outputs: usize,
        num_cycles: usize,
        interval: usize,
        checkpoints: Vec<Vec<bool>>,
        final_state: Vec<bool>,
    ) -> Self {
        assert!(interval >= 1, "checkpoint interval must be at least 1");
        assert_eq!(
            checkpoints.len(),
            num_cycles / interval + 1,
            "checkpoint count mismatch"
        );
        GoldenTrace {
            num_outputs,
            num_ffs: final_state.len(),
            num_cycles,
            repr: Repr::Checkpoint { interval, checkpoints, final_state },
        }
    }

    /// Number of test-bench cycles in the trace.
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.num_cycles
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// The storage policy this trace was captured under.
    #[must_use]
    pub fn policy(&self) -> TracePolicy {
        match &self.repr {
            Repr::Dense { .. } => TracePolicy::Dense,
            Repr::Checkpoint { interval, .. } => TracePolicy::Checkpoint(*interval),
        }
    }

    /// Outputs observed during cycle `t`.
    ///
    /// Random access requires [`TracePolicy::Dense`]; checkpointed
    /// traces serve data through [`window`](Self::window).
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_cycles()` or the trace is checkpointed.
    #[must_use]
    pub fn output_at(&self, t: usize) -> &[bool] {
        match &self.repr {
            Repr::Dense { outputs, .. } => &outputs[t],
            Repr::Checkpoint { .. } => {
                panic!("output_at requires TracePolicy::Dense; use window()")
            }
        }
    }

    /// Flip-flop state at the start of cycle `t`; `t = num_cycles()`
    /// gives the end-of-run state.
    ///
    /// Random access requires [`TracePolicy::Dense`]; checkpointed
    /// traces serve data through [`window`](Self::window).
    ///
    /// # Panics
    ///
    /// Panics if `t > num_cycles()` or the trace is checkpointed.
    #[must_use]
    pub fn state_at(&self, t: usize) -> &[bool] {
        match &self.repr {
            Repr::Dense { states, .. } => &states[t],
            Repr::Checkpoint { .. } => {
                panic!("state_at requires TracePolicy::Dense; use window()")
            }
        }
    }

    /// The state after the last cycle (available under every policy).
    #[must_use]
    pub fn final_state(&self) -> &[bool] {
        match &self.repr {
            Repr::Dense { states, .. } => {
                states.last().expect("trace has at least the initial state")
            }
            Repr::Checkpoint { final_state, .. } => final_state,
        }
    }

    /// A window of golden data covering cycles `start..end` (outputs)
    /// and `start..=end` (states).
    ///
    /// Under [`TracePolicy::Dense`] the window borrows the stored trace;
    /// under [`TracePolicy::Checkpoint`] it is reconstructed by replaying
    /// `sim` from the nearest stored checkpoint — `sim` and `tb` must be
    /// the pair the trace was captured from (same compiled circuit, same
    /// stimuli), which the graders guarantee by construction.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`, `end > num_cycles()`, or `sim`/`tb`
    /// dimensions do not match the trace.
    #[must_use]
    pub fn window<'a>(
        &'a self,
        sim: &CompiledSim,
        tb: &Testbench,
        start: usize,
        end: usize,
    ) -> TraceWindow<'a> {
        assert!(start < end, "empty trace window {start}..{end}");
        assert!(end <= self.num_cycles, "window end {end} beyond trace");
        assert_eq!(sim.num_ffs(), self.num_ffs, "window sim flip-flop count");
        assert_eq!(sim.num_outputs(), self.num_outputs, "window sim output count");
        assert_eq!(tb.num_cycles(), self.num_cycles, "window test-bench length");
        match &self.repr {
            Repr::Dense { outputs, states } => TraceWindow {
                start,
                data: WindowData::Borrowed {
                    outputs: &outputs[start..end],
                    states: &states[start..=end],
                },
            },
            Repr::Checkpoint { interval, checkpoints, .. } => {
                let cp = start / interval;
                let (outputs, states) =
                    sim.replay_span(tb, &checkpoints[cp], cp * interval, start, end);
                TraceWindow { start, data: WindowData::Owned { outputs, states } }
            }
        }
    }

    /// Like [`window`](Self::window), but under
    /// [`TracePolicy::Checkpoint`] the replayed span is served through
    /// (and retained in) `cache`, so repeated requests for the same span
    /// are zero-copy [`Arc`] clones instead of fresh replays.
    ///
    /// Dense traces bypass the cache entirely — their windows already
    /// borrow the stored trace at zero cost. With a
    /// [disabled](WindowCache::disabled) cache the behaviour (and the
    /// produced window data) is identical to `window`; only the miss
    /// counters move.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`window`](Self::window).
    #[must_use]
    pub fn window_cached<'a>(
        &'a self,
        sim: &CompiledSim,
        tb: &Testbench,
        start: usize,
        end: usize,
        cache: &mut WindowCache,
    ) -> TraceWindow<'a> {
        let Repr::Checkpoint { interval, .. } = &self.repr else {
            return self.window(sim, tb, start, end);
        };
        let key = (start, end);
        if let Some(span) = cache.lookup(key) {
            return TraceWindow { start, data: WindowData::Shared(span) };
        }
        let replay_from = (start / interval) * interval;
        let win = self.window(sim, tb, start, end);
        cache.misses += 1;
        cache.replayed_cycles += (end - replay_from) as u64;
        let WindowData::Owned { outputs, states } = win.data else {
            unreachable!("checkpoint windows are owned replays");
        };
        let span = Arc::new(SpanData { outputs, states });
        cache.insert(key, Arc::clone(&span));
        TraceWindow { start, data: WindowData::Shared(span) }
    }

    /// The nearest stored flip-flop vector at or before cycle `start`,
    /// plus the cycle it belongs to — the replay seed for reconstructing
    /// golden data from `start` onward. Dense traces seed at `start`
    /// itself (zero replay distance).
    pub(crate) fn seed_for(&self, start: usize) -> (&[bool], usize) {
        match &self.repr {
            Repr::Dense { states, .. } => (&states[start], start),
            Repr::Checkpoint { interval, checkpoints, .. } => {
                let cp = start / interval;
                (&checkpoints[cp], cp * interval)
            }
        }
    }

    /// Golden-output storage in bits as the *emulator* sees it:
    /// `num_outputs × num_cycles` (the on-FPGA golden-response region for
    /// mask- and state-scan) — a property of the run, not of this trace's
    /// storage policy.
    #[must_use]
    pub fn golden_output_bits(&self) -> u64 {
        self.num_outputs as u64 * self.num_cycles as u64
    }

    /// Golden-state storage in bits as the *emulator* sees it:
    /// `num_ffs × num_cycles` (what state-scan needs to derive its
    /// per-fault scan-in vectors).
    #[must_use]
    pub fn golden_state_bits(&self) -> u64 {
        self.num_ffs as u64 * self.num_cycles as u64
    }

    /// Bits a [`TracePolicy::Dense`] trace of this run would store —
    /// the baseline the checkpoint policies'
    /// [`stored_bits`](Self::stored_bits) are compared against:
    /// per-cycle outputs plus the `num_cycles + 1` flip-flop vectors of
    /// the state trajectory.
    #[must_use]
    pub fn dense_equivalent_bits(&self) -> u64 {
        self.golden_output_bits() + self.num_ffs as u64 * (self.num_cycles as u64 + 1)
    }

    /// Bits this trace actually stores in host memory under its policy:
    /// `(FFs + outputs) × cycles` for dense, `FFs × (cycles / K + 2)` for
    /// `Checkpoint(K)` — the `O(FFs × cycles / K)` bound the streaming
    /// campaign core is built on.
    #[must_use]
    pub fn stored_bits(&self) -> u64 {
        match &self.repr {
            Repr::Dense { outputs, states } => {
                let o: usize = outputs.iter().map(Vec::len).sum();
                let s: usize = states.iter().map(Vec::len).sum();
                (o + s) as u64
            }
            Repr::Checkpoint { checkpoints, final_state, .. } => {
                let c: usize = checkpoints.iter().map(Vec::len).sum();
                (c + final_state.len()) as u64
            }
        }
    }
}

impl fmt::Debug for GoldenTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GoldenTrace")
            .field("num_cycles", &self.num_cycles())
            .field("num_outputs", &self.num_outputs)
            .field("num_ffs", &self.num_ffs)
            .field("policy", &self.policy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::NetlistBuilder;

    use super::*;

    fn toy_trace() -> GoldenTrace {
        GoldenTrace::new_dense(
            vec![vec![false, true], vec![true, true]],
            vec![vec![false], vec![true], vec![false]],
        )
    }

    /// 3-bit counter netlist with all bits observed.
    fn counter3() -> seugrade_netlist::Netlist {
        let mut b = NetlistBuilder::new("cnt3");
        let ffs: Vec<_> = (0..3).map(|_| b.dff(false)).collect();
        let mut carry = b.constant(true);
        for &q in &ffs {
            let next = b.xor2(q, carry);
            carry = b.and2(q, carry);
            b.connect_dff(q, next).unwrap();
        }
        for (i, &q) in ffs.iter().enumerate() {
            b.output(format!("c{i}"), q);
        }
        b.finish().unwrap()
    }

    #[test]
    fn golden_trace_is_send_sync() {
        // Shared read-only across the engine's worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GoldenTrace>();
        assert_send_sync::<TraceWindow<'_>>();
    }

    #[test]
    fn accessors() {
        let t = toy_trace();
        assert_eq!(t.num_cycles(), 2);
        assert_eq!(t.num_outputs(), 2);
        assert_eq!(t.num_ffs(), 1);
        assert_eq!(t.output_at(1), &[true, true]);
        assert_eq!(t.state_at(0), &[false]);
        assert_eq!(t.final_state(), &[false]);
        assert_eq!(t.golden_output_bits(), 4);
        assert_eq!(t.golden_state_bits(), 2);
        assert_eq!(t.policy(), TracePolicy::Dense);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = GoldenTrace::new_dense(vec![vec![true]], vec![vec![false]]);
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in [TracePolicy::Dense, TracePolicy::Checkpoint(1), TracePolicy::Checkpoint(64)] {
            assert_eq!(TracePolicy::from_label(&p.label()), Some(p));
        }
        assert_eq!(TracePolicy::from_label("checkpoint:0"), None);
        assert_eq!(TracePolicy::from_label("checkpoint:"), None);
        assert_eq!(TracePolicy::from_label("sparse"), None);
        assert_eq!(TracePolicy::Checkpoint(8).to_string(), "checkpoint:8");
    }

    #[test]
    fn checkpoint_windows_match_dense_everywhere() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 21);
        let dense = sim.run_golden(&tb);
        for k in [1, 2, 3, 5, 8, 21, 100] {
            let cp = sim.run_golden_with(&tb, TracePolicy::Checkpoint(k));
            assert_eq!(cp.policy(), TracePolicy::Checkpoint(k));
            assert_eq!(cp.final_state(), dense.final_state(), "K={k}");
            for start in 0..21 {
                for end in start + 1..=21 {
                    let w = cp.window(&sim, &tb, start, end);
                    assert_eq!(w.start(), start);
                    assert_eq!(w.end(), end);
                    for t in start..end {
                        assert_eq!(w.output_at(t), dense.output_at(t), "K={k} t={t}");
                        assert_eq!(w.state_at(t), dense.state_at(t), "K={k} t={t}");
                    }
                    assert_eq!(w.state_at(end), dense.state_at(end), "K={k} end={end}");
                }
            }
        }
    }

    #[test]
    fn dense_windows_borrow_the_trace() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 8);
        let dense = sim.run_golden(&tb);
        let w = dense.window(&sim, &tb, 2, 6);
        for t in 2..6 {
            assert_eq!(w.output_at(t), dense.output_at(t));
        }
        assert_eq!(w.state_at(6), dense.state_at(6));
    }

    #[test]
    fn stored_bits_shrink_with_checkpointing() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 64);
        let dense = sim.run_golden(&tb);
        let cp = sim.run_golden_with(&tb, TracePolicy::Checkpoint(16));
        // Dense: (3 outs + 3 ffs) * 64 cycles + 3 (end state).
        assert_eq!(dense.stored_bits(), (3 + 3) * 64 + 3);
        // Checkpoint(16): 5 checkpoints (0,16,32,48,64... 64/16+1 = 5) + end.
        assert_eq!(cp.stored_bits(), 3 * (5 + 1));
        // Emulator-facing quantities are policy independent, and the
        // dense-equivalent baseline matches what Dense actually stores.
        assert_eq!(cp.golden_state_bits(), dense.golden_state_bits());
        assert_eq!(cp.golden_output_bits(), dense.golden_output_bits());
        assert_eq!(cp.dense_equivalent_bits(), dense.stored_bits());
        assert_eq!(dense.dense_equivalent_bits(), dense.stored_bits());
    }

    #[test]
    #[should_panic(expected = "requires TracePolicy::Dense")]
    fn checkpoint_random_access_rejected() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 8);
        let cp = sim.run_golden_with(&tb, TracePolicy::Checkpoint(4));
        let _ = cp.state_at(3);
    }

    #[test]
    #[should_panic(expected = "empty trace window")]
    fn empty_window_rejected() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 8);
        let g = sim.run_golden(&tb);
        let _ = g.window(&sim, &tb, 3, 3);
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn out_of_window_access_rejected() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 8);
        let g = sim.run_golden(&tb);
        let w = g.window(&sim, &tb, 2, 4);
        let _ = w.output_at(4);
    }

    #[test]
    fn cached_windows_match_replayed_windows() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 21);
        let dense = sim.run_golden(&tb);
        for k in [1, 3, 5, 21] {
            let cp = sim.run_golden_with(&tb, TracePolicy::Checkpoint(k));
            for capacity in [0, 1, 2, 64] {
                let mut cache = WindowCache::new(capacity);
                for start in (0..21).step_by(k) {
                    let end = (start + k).min(21);
                    let w = cp.window_cached(&sim, &tb, start, end, &mut cache);
                    for t in start..end {
                        assert_eq!(w.output_at(t), dense.output_at(t));
                        assert_eq!(w.state_at(t), dense.state_at(t));
                    }
                    assert_eq!(w.state_at(end), dense.state_at(end));
                }
            }
        }
    }

    #[test]
    fn shared_handles_serve_each_others_spans() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 20);
        let cp = sim.run_golden_with(&tb, TracePolicy::Checkpoint(4));
        let root = WindowCache::shared(4);
        let mut a = root.clone_handle();
        let mut b = root.clone_handle();
        let wa = cp.window_cached(&sim, &tb, 4, 8, &mut a);
        let wb = cp.window_cached(&sim, &tb, 4, 8, &mut b);
        // Worker A paid the replay; worker B got the very same span.
        assert_eq!((a.misses(), a.hits()), (1, 0));
        assert_eq!((b.misses(), b.hits()), (0, 1));
        assert_eq!(b.replayed_cycles(), 0);
        for t in 4..8 {
            assert_eq!(wa.output_at(t), wb.output_at(t));
            assert_eq!(wa.state_at(t), wb.state_at(t));
        }
        // Handles of a *private* cache share nothing.
        let mut c = WindowCache::new(4);
        let _ = cp.window_cached(&sim, &tb, 4, 8, &mut c);
        let mut d = c.clone_handle();
        let _ = cp.window_cached(&sim, &tb, 4, 8, &mut d);
        assert_eq!((d.misses(), d.hits()), (1, 0));
    }

    #[test]
    fn cache_serves_repeat_spans_without_replaying() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 20);
        let cp = sim.run_golden_with(&tb, TracePolicy::Checkpoint(4));
        let mut cache = WindowCache::new(2);
        for _ in 0..5 {
            let _ = cp.window_cached(&sim, &tb, 4, 8, &mut cache);
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.replayed_cycles(), 4);
        // A second span fits alongside; a third evicts the oldest.
        let _ = cp.window_cached(&sim, &tb, 8, 12, &mut cache);
        let _ = cp.window_cached(&sim, &tb, 12, 16, &mut cache);
        let _ = cp.window_cached(&sim, &tb, 4, 8, &mut cache);
        assert_eq!(cache.misses(), 4, "evicted span must replay again");
    }

    #[test]
    fn disabled_cache_always_replays() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 20);
        let cp = sim.run_golden_with(&tb, TracePolicy::Checkpoint(4));
        let mut cache = WindowCache::disabled();
        for _ in 0..3 {
            let _ = cp.window_cached(&sim, &tb, 0, 4, &mut cache);
        }
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn dense_windows_bypass_the_cache() {
        let n = counter3();
        let sim = crate::CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 8);
        let dense = sim.run_golden(&tb);
        let mut cache = WindowCache::new(8);
        let w = dense.window_cached(&sim, &tb, 0, 8, &mut cache);
        assert_eq!(w.output_at(3), dense.output_at(3));
        assert_eq!(cache.hits() + cache.misses(), 0);
    }
}
