//! The fault-free reference ("golden") run.

use std::fmt;

/// Captured golden run: outputs at every cycle and the full state
/// trajectory.
///
/// Produced by [`CompiledSim::run_golden`](crate::CompiledSim::run_golden).
/// This is the reference against which every faulty run is compared, and
/// it is also what the autonomous emulator stores in its campaign RAM
/// (golden outputs for mask-scan/state-scan, golden states for
/// state-scan's scan-in vectors).
#[derive(Clone, PartialEq, Eq)]
pub struct GoldenTrace {
    num_outputs: usize,
    num_ffs: usize,
    /// `outputs[t]` = outputs observed during cycle `t`.
    outputs: Vec<Vec<bool>>,
    /// `states[t]` = flip-flop vector at the *start* of cycle `t`;
    /// has `num_cycles + 1` entries, the last being the end state.
    states: Vec<Vec<bool>>,
}

impl GoldenTrace {
    pub(crate) fn new(outputs: Vec<Vec<bool>>, states: Vec<Vec<bool>>) -> Self {
        assert_eq!(states.len(), outputs.len() + 1, "trace shape mismatch");
        GoldenTrace {
            num_outputs: outputs.first().map_or(0, Vec::len),
            num_ffs: states.first().map_or(0, Vec::len),
            outputs,
            states,
        }
    }

    /// Number of test-bench cycles in the trace.
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.outputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// Outputs observed during cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_cycles()`.
    #[must_use]
    pub fn output_at(&self, t: usize) -> &[bool] {
        &self.outputs[t]
    }

    /// Flip-flop state at the start of cycle `t`; `t = num_cycles()` gives
    /// the end-of-run state.
    ///
    /// # Panics
    ///
    /// Panics if `t > num_cycles()`.
    #[must_use]
    pub fn state_at(&self, t: usize) -> &[bool] {
        &self.states[t]
    }

    /// The state after the last cycle.
    #[must_use]
    pub fn final_state(&self) -> &[bool] {
        self.states.last().expect("trace has at least the initial state")
    }

    /// Golden-output storage in bits: `num_outputs × num_cycles` (the
    /// emulator's on-FPGA golden-response region for mask- and state-scan).
    #[must_use]
    pub fn golden_output_bits(&self) -> u64 {
        self.num_outputs as u64 * self.outputs.len() as u64
    }

    /// Golden-state storage in bits: `num_ffs × num_cycles` (what
    /// state-scan needs to derive its per-fault scan-in vectors).
    #[must_use]
    pub fn golden_state_bits(&self) -> u64 {
        self.num_ffs as u64 * self.outputs.len() as u64
    }
}

impl fmt::Debug for GoldenTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GoldenTrace")
            .field("num_cycles", &self.num_cycles())
            .field("num_outputs", &self.num_outputs)
            .field("num_ffs", &self.num_ffs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> GoldenTrace {
        GoldenTrace::new(
            vec![vec![false, true], vec![true, true]],
            vec![vec![false], vec![true], vec![false]],
        )
    }

    #[test]
    fn golden_trace_is_send_sync() {
        // Shared read-only across the engine's worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GoldenTrace>();
    }

    #[test]
    fn accessors() {
        let t = toy_trace();
        assert_eq!(t.num_cycles(), 2);
        assert_eq!(t.num_outputs(), 2);
        assert_eq!(t.num_ffs(), 1);
        assert_eq!(t.output_at(1), &[true, true]);
        assert_eq!(t.state_at(0), &[false]);
        assert_eq!(t.final_state(), &[false]);
        assert_eq!(t.golden_output_bits(), 4);
        assert_eq!(t.golden_state_bits(), 2);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = GoldenTrace::new(vec![vec![true]], vec![vec![false]]);
    }
}
