//! Compiled, levelized, 64-lane logic simulator.

use seugrade_netlist::{CellKind, FanoutAdjacency, FfIndex, GateKind, Netlist, SigId};

use crate::tape::{self, Tape};
use crate::{broadcast, GoldenTrace, Testbench, TracePolicy};

/// One evaluation step of the generic tape.
#[derive(Clone, Debug)]
pub(crate) struct Instr {
    pub(crate) kind: GateKind,
    pub(crate) out: u32,
    /// Range into the pin pool.
    pub(crate) pin_start: u32,
    pub(crate) pin_len: u32,
}

/// A netlist compiled into a linear evaluation tape.
///
/// Signal values live in a separate [`SimState`], so one compiled program
/// can drive many concurrent machine states (golden vs faulty, or pools of
/// 64-lane fault groups). Every value is a `u64` of 64 independent lanes.
///
/// The tape is produced by levelization, so a single forward pass
/// ([`eval`](Self::eval)) settles all combinational logic;
/// [`step`](Self::step) then latches flip-flops.
#[derive(Clone, Debug)]
pub struct CompiledSim {
    pub(crate) num_cells: usize,
    pub(crate) instrs: Vec<Instr>,
    pub(crate) pin_pool: Vec<u32>,
    pub(crate) inputs: Vec<u32>,
    pub(crate) outputs: Vec<u32>,
    /// Flip-flop output slot per [`FfIndex`].
    pub(crate) ffs: Vec<u32>,
    /// Flip-flop data-input slot per [`FfIndex`].
    pub(crate) ff_d: Vec<u32>,
    ff_init: Vec<bool>,
    consts: Vec<(u32, bool)>,
    /// The specialized SoA evaluation tape behind [`eval`](Self::eval).
    tape: Tape,
    /// Levelized fanout rows: signal slot → consumer instruction
    /// positions, ascending — the traversal structure of the
    /// differential kernel.
    pub(crate) fanout: FanoutAdjacency,
    /// CSR rows mapping a signal slot to the output slots of the
    /// flip-flops whose `D` pin reads it (the dev-space step relation).
    pub(crate) ff_q_start: Vec<u32>,
    pub(crate) ff_q_targets: Vec<u32>,
}

/// The mutable value store for a [`CompiledSim`]: one 64-lane word per
/// signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimState {
    pub(crate) values: Vec<u64>,
    /// Scratch buffer for the two-phase flip-flop latch in
    /// [`CompiledSim::step`].
    ff_next: Vec<u64>,
}

impl SimState {
    /// Raw access to a signal word (all 64 lanes).
    #[must_use]
    pub fn raw(&self, sig: SigId) -> u64 {
        self.values[sig.index()]
    }
}

impl CompiledSim {
    /// Compiles a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop — impossible
    /// for netlists produced by
    /// [`NetlistBuilder::finish`](seugrade_netlist::NetlistBuilder::finish),
    /// which validates acyclicity.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let lv = netlist
            .levelize()
            .expect("compiled simulation requires an acyclic netlist");
        let mut instrs = Vec::with_capacity(lv.order().len());
        let mut pin_pool = Vec::new();
        for &id in lv.order() {
            let cell = netlist.cell(id);
            let CellKind::Gate(kind) = cell.kind() else {
                unreachable!("levelize order contains only gates")
            };
            let pin_start = pin_pool.len() as u32;
            pin_pool.extend(cell.pins().iter().map(|p| p.index() as u32));
            instrs.push(Instr {
                kind,
                out: id.index() as u32,
                pin_start,
                pin_len: cell.pins().len() as u32,
            });
        }
        let mut consts = Vec::new();
        for (id, cell) in netlist.iter_cells() {
            if let CellKind::Const(v) = cell.kind() {
                consts.push((id.index() as u32, v));
            }
        }
        let ffs: Vec<u32> = netlist.ffs().iter().map(|f| f.index() as u32).collect();
        let ff_d: Vec<u32> = netlist
            .ffs()
            .iter()
            .map(|&f| netlist.cell(f).pins()[0].index() as u32)
            .collect();
        let num_cells = netlist.num_cells();
        // CSR: signal slot → the Q slots latching it (dev-space step).
        let mut ff_q_start = vec![0u32; num_cells + 1];
        for &d in &ff_d {
            ff_q_start[d as usize + 1] += 1;
        }
        for i in 0..num_cells {
            ff_q_start[i + 1] += ff_q_start[i];
        }
        let mut cursor = ff_q_start.clone();
        let mut ff_q_targets = vec![0u32; ff_d.len()];
        for (i, &d) in ff_d.iter().enumerate() {
            let c = &mut cursor[d as usize];
            ff_q_targets[*c as usize] = ffs[i];
            *c += 1;
        }
        CompiledSim {
            num_cells,
            instrs,
            pin_pool,
            inputs: netlist.inputs().iter().map(|i| i.index() as u32).collect(),
            outputs: netlist
                .outputs()
                .iter()
                .map(|(_, s)| s.index() as u32)
                .collect(),
            ffs,
            ff_d,
            ff_init: netlist.ff_init_values(),
            consts,
            tape: Tape::build(netlist, &lv),
            fanout: netlist.levelized_fanout(&lv),
            ff_q_start,
            ff_q_targets,
        }
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Number of compiled gate instructions.
    #[must_use]
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// Creates a state with flip-flops at their initial values (broadcast
    /// to all lanes), constants driven, and inputs low.
    #[must_use]
    pub fn new_state(&self) -> SimState {
        let mut st = SimState {
            values: vec![0u64; self.num_cells],
            ff_next: vec![0u64; self.ffs.len()],
        };
        self.reset(&mut st);
        st
    }

    /// Resets a state in place: flip-flops to their initial values on all
    /// lanes, inputs low, constants re-driven.
    pub fn reset(&self, state: &mut SimState) {
        for v in &mut state.values {
            *v = 0;
        }
        for &(slot, v) in &self.consts {
            state.values[slot as usize] = broadcast(v);
        }
        for (i, &slot) in self.ffs.iter().enumerate() {
            state.values[slot as usize] = broadcast(self.ff_init[i]);
        }
    }

    /// Applies one input vector to all 64 lanes.
    ///
    /// # Panics
    ///
    /// Panics if `vector` length differs from the input count.
    pub fn set_inputs(&self, state: &mut SimState, vector: &[bool]) {
        assert_eq!(vector.len(), self.inputs.len(), "input vector width");
        for (&slot, &bit) in self.inputs.iter().zip(vector) {
            state.values[slot as usize] = broadcast(bit);
        }
    }

    /// Applies raw 64-lane words to the inputs (lane-varying stimuli).
    ///
    /// # Panics
    ///
    /// Panics if `words` length differs from the input count.
    pub fn set_inputs_raw(&self, state: &mut SimState, words: &[u64]) {
        assert_eq!(words.len(), self.inputs.len(), "input word width");
        for (&slot, &w) in self.inputs.iter().zip(words) {
            state.values[slot as usize] = w;
        }
    }

    /// Propagates all combinational logic (one levelized pass).
    ///
    /// Runs the specialized SoA tape — homogeneous opcode runs with
    /// `Not`/`Buf` folded into consumer pins as negation masks. Golden
    /// runs, windowed trace replay and full faulty evaluation all go
    /// through here, so every consumer sees the same (bit-exact) kernel;
    /// [`eval_generic`](Self::eval_generic) keeps the historical
    /// per-instruction walk selectable as a baseline.
    pub fn eval(&self, state: &mut SimState) {
        self.tape.eval(&mut state.values);
    }

    /// Propagates all combinational logic through the generic
    /// per-instruction tape — the pre-specialization kernel, kept as the
    /// reference baseline (`kernel: generic`) and for benchmarking the
    /// specialized tape against.
    pub fn eval_generic(&self, state: &mut SimState) {
        let values = &mut state.values;
        for instr in &self.instrs {
            let pins = &self.pin_pool
                [instr.pin_start as usize..(instr.pin_start + instr.pin_len) as usize];
            let v = tape::eval_gate(instr.kind, pins, |p| values[p as usize]);
            values[instr.out as usize] = v;
        }
    }

    /// Latches every flip-flop: `Q <= D`. Call after [`eval`](Self::eval).
    ///
    /// The latch is two-phase (all `D` values are sampled before any `Q`
    /// is written) so flip-flops feeding flip-flops directly — shift
    /// chains, scan chains — behave like real edge-triggered registers.
    pub fn step(&self, state: &mut SimState) {
        for (i, &d) in self.ff_d.iter().enumerate() {
            state.ff_next[i] = state.values[d as usize];
        }
        for (i, &slot) in self.ffs.iter().enumerate() {
            state.values[slot as usize] = state.ff_next[i];
        }
    }

    /// Convenience: `set_inputs` + `eval` + `step` for one cycle.
    pub fn cycle(&self, state: &mut SimState, vector: &[bool]) {
        self.set_inputs(state, vector);
        self.eval(state);
        self.step(state);
    }

    /// Reads the outputs of lane `lane` (after [`eval`](Self::eval)).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    #[must_use]
    pub fn outputs_lane(&self, state: &SimState, lane: u32) -> Vec<bool> {
        assert!(lane < 64);
        self.outputs
            .iter()
            .map(|&slot| state.values[slot as usize] >> lane & 1 == 1)
            .collect()
    }

    /// Reads the raw 64-lane output words (after [`eval`](Self::eval)).
    #[must_use]
    pub fn outputs_raw(&self, state: &SimState) -> Vec<u64> {
        self.outputs
            .iter()
            .map(|&slot| state.values[slot as usize])
            .collect()
    }

    /// Reads the flip-flop vector of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    #[must_use]
    pub fn state_lane(&self, state: &SimState, lane: u32) -> Vec<bool> {
        assert!(lane < 64);
        self.ffs
            .iter()
            .map(|&slot| state.values[slot as usize] >> lane & 1 == 1)
            .collect()
    }

    /// Overwrites a flip-flop's 64-lane word.
    pub fn set_ff_raw(&self, state: &mut SimState, ff: FfIndex, word: u64) {
        state.values[self.ffs[ff.index()] as usize] = word;
    }

    /// Reads a flip-flop's 64-lane word.
    #[must_use]
    pub fn ff_raw(&self, state: &SimState, ff: FfIndex) -> u64 {
        state.values[self.ffs[ff.index()] as usize]
    }

    /// Loads a scalar state vector, broadcast to all lanes.
    ///
    /// # Panics
    ///
    /// Panics if `bits` length differs from the flip-flop count.
    pub fn load_state(&self, state: &mut SimState, bits: &[bool]) {
        assert_eq!(bits.len(), self.ffs.len(), "state vector width");
        for (&slot, &bit) in self.ffs.iter().zip(bits) {
            state.values[slot as usize] = broadcast(bit);
        }
    }

    /// Flips flip-flop `ff` in exactly one lane — the SEU bit-flip
    /// primitive of the whole toolkit.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn flip_ff_lane(&self, state: &mut SimState, ff: FfIndex, lane: u32) {
        assert!(lane < 64);
        state.values[self.ffs[ff.index()] as usize] ^= 1u64 << lane;
    }

    /// Runs the full test bench from reset, capturing outputs and the
    /// state trajectory — the golden reference run, stored densely
    /// ([`TracePolicy::Dense`]).
    #[must_use]
    pub fn run_golden(&self, tb: &Testbench) -> GoldenTrace {
        self.run_golden_with(tb, TracePolicy::Dense)
    }

    /// Runs the full test bench from reset, capturing the golden
    /// reference run under the given [`TracePolicy`].
    ///
    /// `Dense` stores every cycle's outputs and state;
    /// `Checkpoint(K)` stores only the flip-flop state at cycles
    /// `0, K, 2K, …` plus the end state — everything else is replayed on
    /// demand through [`GoldenTrace::window`].
    ///
    /// # Panics
    ///
    /// Panics if the policy is `Checkpoint(0)`.
    #[must_use]
    pub fn run_golden_with(&self, tb: &Testbench, policy: TracePolicy) -> GoldenTrace {
        let mut state = self.new_state();
        match policy {
            TracePolicy::Dense => {
                let mut outputs = Vec::with_capacity(tb.num_cycles());
                let mut states = Vec::with_capacity(tb.num_cycles() + 1);
                states.push(self.state_lane(&state, 0));
                for vector in tb.iter() {
                    self.set_inputs(&mut state, vector);
                    self.eval(&mut state);
                    outputs.push(self.outputs_lane(&state, 0));
                    self.step(&mut state);
                    states.push(self.state_lane(&state, 0));
                }
                GoldenTrace::new_dense(outputs, states)
            }
            TracePolicy::Checkpoint(k) => {
                assert!(k >= 1, "checkpoint interval must be at least 1");
                let mut checkpoints = Vec::with_capacity(tb.num_cycles() / k + 1);
                checkpoints.push(self.state_lane(&state, 0));
                for (t, vector) in tb.iter().enumerate() {
                    self.set_inputs(&mut state, vector);
                    self.eval(&mut state);
                    self.step(&mut state);
                    if (t + 1) % k == 0 && t + 1 < tb.num_cycles() {
                        checkpoints.push(self.state_lane(&state, 0));
                    }
                }
                // When the run length is a multiple of K the final state
                // doubles as the last checkpoint.
                let final_state = self.state_lane(&state, 0);
                if tb.num_cycles() % k == 0 && tb.num_cycles() > 0 {
                    checkpoints.push(final_state.clone());
                }
                GoldenTrace::new_checkpoint(
                    self.num_outputs(),
                    tb.num_cycles(),
                    k,
                    checkpoints,
                    final_state,
                )
            }
        }
    }

    /// Replays the golden run from a known state at cycle `from`,
    /// discarding cycles before `start` and capturing outputs for
    /// `start..end` and states for `start..=end` — the reconstruction
    /// primitive behind checkpointed [`GoldenTrace::window`]s.
    pub(crate) fn replay_span(
        &self,
        tb: &Testbench,
        state_at_from: &[bool],
        from: usize,
        start: usize,
        end: usize,
    ) -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
        debug_assert!(from <= start && start < end && end <= tb.num_cycles());
        let mut state = self.new_state();
        self.load_state(&mut state, state_at_from);
        // Silent advance up to the window start.
        for t in from..start {
            self.set_inputs(&mut state, tb.cycle(t));
            self.eval(&mut state);
            self.step(&mut state);
        }
        let mut outputs = Vec::with_capacity(end - start);
        let mut states = Vec::with_capacity(end - start + 1);
        states.push(self.state_lane(&state, 0));
        for t in start..end {
            self.set_inputs(&mut state, tb.cycle(t));
            self.eval(&mut state);
            outputs.push(self.outputs_lane(&state, 0));
            self.step(&mut state);
            states.push(self.state_lane(&state, 0));
        }
        (outputs, states)
    }
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::NetlistBuilder;

    use super::*;

    /// Full adder with registered sum: s = a^b^cin, latched each cycle.
    fn adder_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("cin");
        let t = b.xor2(a, x);
        let s = b.xor2(t, cin);
        let c1 = b.and2(a, x);
        let c2 = b.and2(t, cin);
        let cout = b.or2(c1, c2);
        let sr = b.dff(false);
        b.connect_dff(sr, s).unwrap();
        b.output("s_comb", s);
        b.output("cout", cout);
        b.output("s_reg", sr);
        b.finish().unwrap()
    }

    #[test]
    fn compiled_sim_is_send_sync() {
        // One compiled program drives many worker threads, each with its
        // own (Send) state; both auto-traits are load-bearing for the
        // sharded campaign engine.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledSim>();
        assert_send_sync::<SimState>();
    }

    #[test]
    fn combinational_truth_table() {
        let n = adder_netlist();
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        for a in [false, true] {
            for x in [false, true] {
                for c in [false, true] {
                    sim.set_inputs(&mut st, &[a, x, c]);
                    sim.eval(&mut st);
                    let o = sim.outputs_lane(&st, 0);
                    let sum = (a as u8 + x as u8 + c as u8) & 1 == 1;
                    let carry = (a as u8 + x as u8 + c as u8) >= 2;
                    assert_eq!(o[0], sum, "sum({a},{x},{c})");
                    assert_eq!(o[1], carry, "carry({a},{x},{c})");
                }
            }
        }
    }

    #[test]
    fn register_latches_on_step() {
        let n = adder_netlist();
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        sim.set_inputs(&mut st, &[true, false, false]);
        sim.eval(&mut st);
        assert!(!sim.outputs_lane(&st, 0)[2], "s_reg still reset");
        sim.step(&mut st);
        sim.eval(&mut st);
        assert!(sim.outputs_lane(&st, 0)[2], "s_reg latched 1");
    }

    #[test]
    fn golden_trace_counter() {
        let mut b = NetlistBuilder::new("cnt");
        let q0 = b.dff(false);
        let q1 = b.dff(false);
        let n0 = b.not(q0);
        let n1 = b.xor2(q1, q0);
        b.connect_dff(q0, n0).unwrap();
        b.connect_dff(q1, n1).unwrap();
        b.output("b0", q0);
        b.output("b1", q1);
        let n = b.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let tb = Testbench::constant_low(0, 6);
        let trace = sim.run_golden(&tb);
        for t in 0..6 {
            let expect0 = t & 1 == 1;
            let expect1 = t >> 1 & 1 == 1;
            assert_eq!(trace.output_at(t), &[expect0, expect1], "cycle {t}");
            assert_eq!(trace.state_at(t), &[expect0, expect1]);
        }
        assert_eq!(trace.final_state(), &[false, true]); // 6 mod 4 = 2
    }

    #[test]
    fn lanes_are_independent() {
        // A single dff fed by its inversion; flip lane 3 and verify only
        // lane 3 diverges, and re-converges never (toggle keeps distance).
        let mut b = NetlistBuilder::new("t");
        let q = b.dff(false);
        let inv = b.not(q);
        b.connect_dff(q, inv).unwrap();
        b.output("q", q);
        let n = b.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        sim.flip_ff_lane(&mut st, FfIndex::new(0), 3);
        for _ in 0..5 {
            sim.eval(&mut st);
            let word = sim.outputs_raw(&st)[0];
            let lane0 = word & 1;
            let lane3 = word >> 3 & 1;
            assert_ne!(lane0, lane3, "faulty lane must stay inverted");
            sim.step(&mut st);
        }
    }

    #[test]
    fn load_state_roundtrip() {
        let mut b = NetlistBuilder::new("r");
        let q0 = b.dff(false);
        let q1 = b.dff(false);
        let c = b.constant(false);
        b.connect_dff(q0, c).unwrap();
        b.connect_dff(q1, c).unwrap();
        b.output("q0", q0);
        b.output("q1", q1);
        let n = b.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        sim.load_state(&mut st, &[true, false]);
        assert_eq!(sim.state_lane(&st, 0), vec![true, false]);
        assert_eq!(sim.state_lane(&st, 17), vec![true, false]);
    }

    #[test]
    fn reset_restores_init_values() {
        let mut b = NetlistBuilder::new("init");
        let q0 = b.dff(true);
        let q1 = b.dff(false);
        let c = b.constant(false);
        b.connect_dff(q0, c).unwrap();
        b.connect_dff(q1, c).unwrap();
        b.output("q0", q0);
        let n = b.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        sim.eval(&mut st);
        sim.step(&mut st);
        assert_eq!(sim.state_lane(&st, 0), vec![false, false]);
        sim.reset(&mut st);
        assert_eq!(sim.state_lane(&st, 0), vec![true, false]);
    }

    #[test]
    fn wide_gate_instruction() {
        let mut b = NetlistBuilder::new("wide");
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let i3 = b.input("i3");
        let g = b.gate(GateKind::And, &[i0, i1, i2, i3]);
        let g2 = b.gate(GateKind::Nor, &[i0, i1, i2]);
        b.output("and4", g);
        b.output("nor3", g2);
        let n = b.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        sim.set_inputs(&mut st, &[true, true, true, true]);
        sim.eval(&mut st);
        assert_eq!(sim.outputs_lane(&st, 0), vec![true, false]);
        sim.set_inputs(&mut st, &[false, false, false, true]);
        sim.eval(&mut st);
        assert_eq!(sim.outputs_lane(&st, 0), vec![false, true]);
    }

    #[test]
    fn tape_matches_generic_on_every_slot() {
        // Inverter chains, reconvergence, wide gates, muxes: the
        // specialized tape must leave every signal word — not just
        // outputs — identical to the generic interpreter's.
        let mut b = NetlistBuilder::new("mix");
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let q = b.dff(true);
        let n1 = b.not(i0);
        let n2 = b.not(n1);
        let n3 = b.not(n2);
        let bf = b.buf(n3);
        let a = b.and2(bf, i1);
        let o = b.gate(GateKind::Nor, &[n1, i2, a]);
        let x = b.xor2(n3, q);
        let xn = b.gate(GateKind::Xnor, &[n1, bf]);
        let m = b.mux(x, o, xn);
        b.connect_dff(q, m).unwrap();
        b.output("m", m);
        b.output("o", o);
        let n = b.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let mut st_t = sim.new_state();
        let mut st_g = sim.new_state();
        for step in 0..32u32 {
            let vec: Vec<bool> = (0..3).map(|i| step >> i & 1 == 1).collect();
            sim.set_inputs(&mut st_t, &vec);
            sim.set_inputs(&mut st_g, &vec);
            sim.eval(&mut st_t);
            sim.eval_generic(&mut st_g);
            assert_eq!(st_t.values, st_g.values, "step {step}");
            sim.step(&mut st_t);
            sim.step(&mut st_g);
        }
    }

    #[test]
    fn tape_specializes_the_common_gates() {
        let n = adder_netlist();
        let sim = CompiledSim::new(&n);
        // Every gate of the adder is a 2-input and/or/xor: no generic
        // fallback instructions should remain.
        assert_eq!(sim.tape.specialized_gates(), sim.num_instrs());
    }

    #[test]
    fn set_inputs_raw_lane_varying() {
        let mut b = NetlistBuilder::new("raw");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        sim.set_inputs_raw(&mut st, &[0b1010]);
        sim.eval(&mut st);
        assert!(!sim.outputs_lane(&st, 0)[0]);
        assert!(sim.outputs_lane(&st, 1)[0]);
        assert!(sim.outputs_lane(&st, 3)[0]);
    }
}
