//! Value-change-dump (VCD) export.
//!
//! Dumps a golden run of a netlist to the IEEE 1364 VCD text format so any
//! waveform viewer (GTKWave etc.) can inspect inputs, outputs and
//! flip-flops cycle by cycle.

use std::fmt::Write as _;

use seugrade_netlist::Netlist;

use crate::{CompiledSim, Testbench};

/// Generates a VCD identifier for a variable index (printable ASCII 33..127).
fn vcd_id(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// Simulates `netlist` over `tb` and renders the run as a VCD document.
///
/// The dump contains three scopes: `inputs`, `outputs` and `state` (one
/// wire per flip-flop, labelled with its debug name when available). The
/// timescale maps one test-bench cycle to 10 ns (a 100 MHz view).
///
/// # Example
///
/// ```
/// # use seugrade_netlist::NetlistBuilder;
/// # use seugrade_sim::{vcd, Testbench};
/// # fn main() -> Result<(), seugrade_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// let q = b.dff(false);
/// let inv = b.not(q);
/// b.connect_dff(q, inv)?;
/// b.output("q", q);
/// let n = b.finish()?;
/// let dump = vcd::dump_golden(&n, &Testbench::constant_low(0, 4));
/// assert!(dump.contains("$enddefinitions"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn dump_golden(netlist: &Netlist, tb: &Testbench) -> String {
    let mut out = String::new();
    // Formatting into a `String` cannot fail; the `_into` body threads
    // `fmt::Result` so every line uses `?` behind this single audited
    // boundary instead of an unwrap per `writeln!`.
    dump_golden_into(netlist, tb, &mut out).expect("formatting into a String never fails");
    out
}

/// The `?`-based body of [`dump_golden`].
fn dump_golden_into(
    netlist: &Netlist,
    tb: &Testbench,
    out: &mut String,
) -> std::fmt::Result {
    let sim = CompiledSim::new(netlist);
    let mut state = sim.new_state();

    writeln!(out, "$date seugrade $end")?;
    writeln!(out, "$version seugrade-sim $end")?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module {} $end", netlist.name())?;

    let mut var = 0usize;
    let mut input_ids = Vec::new();
    writeln!(out, " $scope module inputs $end")?;
    for name in netlist.input_names() {
        let id = vcd_id(var);
        var += 1;
        writeln!(out, "  $var wire 1 {id} {name} $end")?;
        input_ids.push(id);
    }
    writeln!(out, " $upscope $end")?;

    let mut output_ids = Vec::new();
    writeln!(out, " $scope module outputs $end")?;
    for (name, _) in netlist.outputs() {
        let id = vcd_id(var);
        var += 1;
        writeln!(out, "  $var wire 1 {id} {name} $end")?;
        output_ids.push(id);
    }
    writeln!(out, " $upscope $end")?;

    let mut ff_ids = Vec::new();
    writeln!(out, " $scope module state $end")?;
    for (i, &sig) in netlist.ffs().iter().enumerate() {
        let id = vcd_id(var);
        var += 1;
        let label = netlist
            .cell_name(sig)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("ff{i}"));
        writeln!(out, "  $var reg 1 {id} {label} $end")?;
        ff_ids.push(id);
    }
    writeln!(out, " $upscope $end")?;
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    let mut prev: Option<(Vec<bool>, Vec<bool>, Vec<bool>)> = None;
    for (t, vector) in tb.iter().enumerate() {
        sim.set_inputs(&mut state, vector);
        sim.eval(&mut state);
        let outs = sim.outputs_lane(&state, 0);
        let ffs = sim.state_lane(&state, 0);
        writeln!(out, "#{}", t * 10)?;
        let emit_changes =
            |out: &mut String, ids: &[String], now: &[bool], before: Option<&[bool]>| {
                for (i, (&v, id)) in now.iter().zip(ids).enumerate() {
                    if before.map_or(true, |b| b[i] != v) {
                        writeln!(out, "{}{id}", u8::from(v))?;
                    }
                }
                Ok(())
            };
        emit_changes(out, &input_ids, vector, prev.as_ref().map(|p| p.0.as_slice()))?;
        emit_changes(out, &output_ids, &outs, prev.as_ref().map(|p| p.1.as_slice()))?;
        emit_changes(out, &ff_ids, &ffs, prev.as_ref().map(|p| p.2.as_slice()))?;
        prev = Some((vector.to_vec(), outs, ffs));
        sim.step(&mut state);
    }
    writeln!(out, "#{}", tb.num_cycles() * 10)?;
    Ok(())
}

/// Simulates a golden and a faulty run side by side and renders both in
/// one VCD document: every signal appears twice, under `golden` and
/// `faulty` scopes, plus a `diff` scope with per-output mismatch flags.
///
/// The fault flips flip-flop `ff` at the start of cycle `fault_cycle`
/// (the workspace's SEU semantics).
///
/// # Panics
///
/// Panics if `fault_cycle` is outside the test bench or `ff` outside the
/// circuit.
#[must_use]
pub fn dump_fault(
    netlist: &Netlist,
    tb: &Testbench,
    ff: seugrade_netlist::FfIndex,
    fault_cycle: usize,
) -> String {
    assert!(fault_cycle < tb.num_cycles(), "fault cycle out of range");
    assert!(
        ff.index() < netlist.num_ffs(),
        "flip-flop {} out of range (circuit has {})",
        ff.index(),
        netlist.num_ffs()
    );
    let mut out = String::new();
    // Same single-expect boundary as `dump_golden`: the `_into` body is
    // pure `?`-threaded formatting.
    dump_fault_into(netlist, tb, ff, fault_cycle, &mut out)
        .expect("formatting into a String never fails");
    out
}

/// The `?`-based body of [`dump_fault`]; bounds already checked.
fn dump_fault_into(
    netlist: &Netlist,
    tb: &Testbench,
    ff: seugrade_netlist::FfIndex,
    fault_cycle: usize,
    out: &mut String,
) -> std::fmt::Result {
    let sim = CompiledSim::new(netlist);
    // Lane 0 = golden, lane 1 = faulty; inject by flipping lane 1 at the
    // start of the fault cycle.
    let mut state = sim.new_state();

    writeln!(out, "$date seugrade $end")?;
    writeln!(out, "$version seugrade-sim fault dump $end")?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module {} $end", netlist.name())?;
    let mut var = 0usize;
    let mut declare = |out: &mut String,
                       scope: &str,
                       names: &[String],
                       kind: &str|
     -> Result<Vec<String>, std::fmt::Error> {
        writeln!(out, " $scope module {scope} $end")?;
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            let id = vcd_id(var);
            var += 1;
            writeln!(out, "  $var {kind} 1 {id} {name} $end")?;
            ids.push(id);
        }
        writeln!(out, " $upscope $end")?;
        Ok(ids)
    };
    let out_names: Vec<String> = netlist.outputs().iter().map(|(n, _)| n.clone()).collect();
    let ff_names: Vec<String> = (0..netlist.num_ffs()).map(|i| format!("ff{i}")).collect();
    let g_out = declare(out, "golden_outputs", &out_names, "wire")?;
    let f_out = declare(out, "faulty_outputs", &out_names, "wire")?;
    let g_ff = declare(out, "golden_state", &ff_names, "reg")?;
    let f_ff = declare(out, "faulty_state", &ff_names, "reg")?;
    let diff_names: Vec<String> = out_names.iter().map(|n| format!("diff_{n}")).collect();
    let d_out = declare(out, "diff", &diff_names, "wire")?;
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    let mut prev: Option<Vec<bool>> = None;
    for (t, vector) in tb.iter().enumerate() {
        if t == fault_cycle {
            sim.flip_ff_lane(&mut state, ff, 1);
        }
        sim.set_inputs(&mut state, vector);
        sim.eval(&mut state);
        let go = sim.outputs_lane(&state, 0);
        let fo = sim.outputs_lane(&state, 1);
        let gs = sim.state_lane(&state, 0);
        let fs = sim.state_lane(&state, 1);
        let diff: Vec<bool> = go.iter().zip(&fo).map(|(a, b)| a != b).collect();
        let now: Vec<bool> = go
            .iter()
            .chain(&fo)
            .chain(&gs)
            .chain(&fs)
            .chain(&diff)
            .copied()
            .collect();
        let ids: Vec<&String> = g_out
            .iter()
            .chain(&f_out)
            .chain(&g_ff)
            .chain(&f_ff)
            .chain(&d_out)
            .collect();
        writeln!(out, "#{}", t * 10)?;
        for (i, (&v, id)) in now.iter().zip(&ids).enumerate() {
            if prev.as_ref().map_or(true, |p| p[i] != v) {
                writeln!(out, "{}{id}", u8::from(v))?;
            }
        }
        prev = Some(now);
        sim.step(&mut state);
    }
    writeln!(out, "#{}", tb.num_cycles() * 10)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::{FfIndex, NetlistBuilder};

    use super::*;

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..300).map(vcd_id).collect();
        let set: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        assert!(ids.iter().all(|s| s.bytes().all(|b| (33..127).contains(&b))));
    }

    #[test]
    fn dump_structure() {
        let mut b = NetlistBuilder::new("wave");
        let a = b.input("a");
        let q = b.dff(false);
        let g = b.xor2(a, q);
        b.connect_dff(q, g).unwrap();
        b.name_signal(q, "toggler");
        b.output("y", g);
        let n = b.finish().unwrap();
        let dump = dump_golden(&n, &Testbench::random(1, 8, 3));
        assert!(dump.contains("$var wire 1"));
        assert!(dump.contains("toggler"));
        assert!(dump.contains("$enddefinitions"));
        assert!(dump.contains("#0"));
        assert!(dump.contains("#70"));
    }

    #[test]
    fn only_changes_are_dumped() {
        let mut b = NetlistBuilder::new("still");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish().unwrap();
        // Input constant low: after time 0 there are no value changes.
        let dump = dump_golden(&n, &Testbench::constant_low(1, 5));
        let changes: Vec<&str> = dump
            .lines()
            .filter(|l| l.starts_with('0') || l.starts_with('1'))
            .collect();
        // one change for input + one for output at t=0 only
        assert_eq!(changes.len(), 2, "dump: {dump}");
    }

    #[test]
    fn fault_dump_shows_divergence() {
        // Toggler: flipping its single ff inverts the phase forever.
        let mut b = NetlistBuilder::new("tgl");
        let q = b.dff(false);
        let inv = b.not(q);
        b.connect_dff(q, inv).unwrap();
        b.output("q", q);
        let n = b.finish().unwrap();
        let dump = dump_fault(&n, &Testbench::constant_low(0, 6), FfIndex::new(0), 2);
        assert!(dump.contains("golden_outputs"));
        assert!(dump.contains("faulty_outputs"));
        assert!(dump.contains("diff_q"));
        // The diff signal must go high at the injection time (#20).
        let after_20 = dump.split("#20").nth(1).expect("time marker");
        let first_block: String = after_20.lines().take(6).collect::<Vec<_>>().join("\n");
        assert!(first_block.contains('1'), "diff should rise at t=20: {first_block}");
    }

    #[test]
    fn fault_dump_identical_lanes_before_injection() {
        let mut b = NetlistBuilder::new("cnt");
        let q = b.dff(false);
        let inv = b.not(q);
        b.connect_dff(q, inv).unwrap();
        b.output("q", q);
        let n = b.finish().unwrap();
        let dump = dump_fault(&n, &Testbench::constant_low(0, 8), FfIndex::new(0), 5);
        // Before #50 no diff_* signal may be 1; diff ids are declared in
        // the `diff` scope — find its id and scan the timeline.
        let diff_id = dump
            .lines()
            .skip_while(|l| !l.contains("module diff"))
            .find(|l| l.contains("$var"))
            .and_then(|l| l.split_whitespace().nth(3))
            .expect("diff var declared")
            .to_owned();
        let mut time = 0usize;
        for line in dump.lines() {
            if let Some(t) = line.strip_prefix('#') {
                time = t.parse().unwrap_or(time);
            } else if time < 50 && line == format!("1{diff_id}") {
                panic!("diff asserted before injection at t={time}");
            }
        }
    }
}
