//! The sharded campaign runtime.

use std::time::Instant;

use seugrade_faultsim::{
    sampling, Collapse, FaultList, FaultOutcome, GradeScratch, Grader, GradingSummary, MultiFault,
};
use seugrade_netlist::Netlist;
use seugrade_sim::{BitCache, Kernel, Testbench, TracePolicy, WindowCache};

use crate::error::EngineError;
use crate::plan::{CampaignPlan, FaultSource, Technique};
use crate::pool::{run_folded, run_folded_ctl, run_indexed, FoldControl};
use crate::progress::{EngineStats, ProgressEvent, ProgressHook};
use crate::resume::{Checkpoint, Fingerprint, PersistentSink, ResumeError, ResumeOptions};
use crate::stream::{ChunkPlan, StreamAccumulator, VerdictSink};

/// Per-worker grading scratch of the streamed paths: the grader's
/// scratch (simulator state + window cache + collapse mode), the chunk
/// fault buffer, and the 64-lane outcome array.
type StreamedScratch = (GradeScratch, Vec<seugrade_faultsim::Fault>, [FaultOutcome; 64]);

/// The materialized faults of one campaign run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Single-bit faults, in submission order.
    Single(FaultList),
    /// Multi-bit upsets, in submission order.
    Multi(Vec<MultiFault>),
}

impl FaultPlan {
    /// Number of faults in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            FaultPlan::Single(l) => l.len(),
            FaultPlan::Multi(v) => v.len(),
        }
    }

    /// True when the plan grades nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One finished campaign: the faults, their verdicts (in submission
/// order), the pooled summary and the runtime statistics.
#[derive(Clone, Debug)]
pub struct CampaignRun {
    faults: FaultPlan,
    outcomes: Vec<FaultOutcome>,
    summary: GradingSummary,
    stats: EngineStats,
    techniques: Vec<Technique>,
}

impl CampaignRun {
    /// The materialized faults.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The single-fault list, if this was a single-fault campaign.
    #[must_use]
    pub fn single(&self) -> Option<&FaultList> {
        match &self.faults {
            FaultPlan::Single(l) => Some(l),
            FaultPlan::Multi(_) => None,
        }
    }

    /// The multi-bit faults, if this was an MBU campaign.
    #[must_use]
    pub fn multi(&self) -> Option<&[MultiFault]> {
        match &self.faults {
            FaultPlan::Single(_) => None,
            FaultPlan::Multi(v) => Some(v),
        }
    }

    /// Per-fault verdicts, parallel to the fault plan's order.
    #[must_use]
    pub fn outcomes(&self) -> &[FaultOutcome] {
        &self.outcomes
    }

    /// Pooled classification tallies.
    #[must_use]
    pub fn summary(&self) -> &GradingSummary {
        &self.summary
    }

    /// What the run cost.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The techniques the plan targeted.
    #[must_use]
    pub fn techniques(&self) -> &[Technique] {
        &self.techniques
    }

    /// Consumes the run into `(fault list, outcomes)` for single-fault
    /// campaigns (`None` for MBU campaigns).
    #[must_use]
    pub fn into_single(self) -> Option<(FaultList, Vec<FaultOutcome>)> {
        match self.faults {
            FaultPlan::Single(l) => Some((l, self.outcomes)),
            FaultPlan::Multi(_) => None,
        }
    }
}

/// One finished **streamed** campaign: the pooled summary, failure map
/// and verdict digest — never the faults or per-fault outcomes, which
/// is the point (campaign memory stays `O(threads × FFs)` however large
/// the fault space).
///
/// Produced by [`Engine::run_streamed`] /
/// [`CampaignPlan::execute_streamed`].
#[derive(Clone, Debug)]
pub struct StreamedRun {
    acc: StreamAccumulator,
    stats: EngineStats,
}

impl StreamedRun {
    /// Pooled classification tallies.
    #[must_use]
    pub fn summary(&self) -> &GradingSummary {
        self.acc.summary()
    }

    /// Failure count per flip-flop index (the weak-area map the paper's
    /// introduction motivates); trailing never-failing flip-flops may be
    /// absent.
    #[must_use]
    pub fn failure_map(&self) -> &[usize] {
        self.acc.failure_map()
    }

    /// Order-independent fingerprint of every `(fault, verdict)` pair;
    /// compare against [`StreamAccumulator::digest_of`] over a
    /// materialized reference run to prove bit-identity without storing
    /// the streamed verdicts.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.acc.digest()
    }

    /// What the run cost.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }
}

/// One invocation of the **resumable** streaming path: the folded sink
/// so far, the thread-count-independent chunk cursor, and whether the
/// run stopped early (cancelled or chunk-limited) or finished.
///
/// Produced by [`Engine::run_streamed_resumable`]. The cursor counts an
/// exact prefix of the cycle-major chunk queue, so `chunks_done`
/// identifies precisely which faults the sink has folded — the
/// invariant that lets a later invocation continue from a checkpoint
/// and land on the uninterrupted run's digest bit-for-bit.
#[derive(Clone, Debug)]
pub struct ResumableRun<A> {
    /// The folded sink — cumulative across all resumed invocations.
    pub sink: A,
    /// This invocation's cost (`faults`/`shards` are cumulative counts;
    /// `wall_ns` covers only this invocation).
    pub stats: EngineStats,
    /// Chunks completed so far (cumulative).
    pub chunks_done: usize,
    /// Total chunks in the campaign.
    pub chunks_total: usize,
    /// Faults folded so far (cumulative).
    pub faults_done: usize,
    /// Total faults in the campaign.
    pub faults_total: usize,
    /// Cursor position this invocation started from (0 for fresh runs).
    pub resumed_from: usize,
    /// True when the run stopped before the last chunk (cancellation or
    /// a chunk limit); a final checkpoint was written if one was
    /// configured.
    pub interrupted: bool,
}

impl<A> ResumableRun<A> {
    /// True when every chunk has been graded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.chunks_done == self.chunks_total
    }
}

impl ResumableRun<StreamAccumulator> {
    /// Converts a **complete** run into the plain streamed-run result;
    /// `None` while chunks remain.
    #[must_use]
    pub fn into_streamed_run(self) -> Option<StreamedRun> {
        self.is_complete().then(|| StreamedRun { acc: self.sink, stats: self.stats })
    }
}

/// The campaign engine: a compiled simulator plus golden trace, reusable
/// across many plan executions (each [`run`](Self::run) may use a
/// different fault source or shard policy).
///
/// # Determinism
///
/// Shards are same-cycle 64-lane batches dispatched through a chunk
/// queue; which worker grades which shard varies run to run, but verdicts
/// depend only on the fault itself, and the engine merges per-shard
/// results back into submission order. Every `(fault source, seed)` pair
/// therefore produces **bit-identical outcomes at every thread count**,
/// equal to the serial reference engine — a property the cross-engine
/// agreement suite enforces.
#[derive(Debug)]
pub struct Engine {
    grader: Grader,
    /// Identity of the compiled circuit, kept so [`run`](Self::run) can
    /// reject plans for a *different* circuit that happens to share
    /// dimensions with this one.
    circuit_name: String,
    num_cells: usize,
}

impl Engine {
    /// Builds the runtime for a plan's circuit, test bench and
    /// golden-trace storage policy (runs the golden reference once).
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the circuit.
    #[must_use]
    pub fn new(plan: &CampaignPlan<'_>) -> Self {
        Self::for_circuit_with_policy(plan.circuit(), plan.testbench(), plan.trace_policy())
    }

    /// Builds the runtime directly from a circuit / test-bench pair,
    /// with a dense golden trace.
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the circuit.
    #[must_use]
    pub fn for_circuit(circuit: &Netlist, tb: &Testbench) -> Self {
        Self::for_circuit_with_policy(circuit, tb, TracePolicy::Dense)
    }

    /// Builds the runtime with an explicit [`TracePolicy`].
    ///
    /// Under [`TracePolicy::Checkpoint`] the engine's golden-trace
    /// memory is `O(FFs × cycles / K)` and every grading shard holds at
    /// most one `K`-cycle window; verdicts are bit-identical to the
    /// dense engine and to the serial reference (the agreement suites
    /// enforce both).
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the circuit or the
    /// policy is `Checkpoint(0)`.
    #[must_use]
    pub fn for_circuit_with_policy(
        circuit: &Netlist,
        tb: &Testbench,
        policy: TracePolicy,
    ) -> Self {
        Engine {
            grader: Grader::with_policy(circuit, tb, policy),
            circuit_name: circuit.name().to_owned(),
            num_cells: circuit.num_cells(),
        }
    }

    /// The underlying grader (compiled simulator + golden trace).
    #[must_use]
    pub fn grader(&self) -> &Grader {
        &self.grader
    }

    /// Executes a plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan's dimensions do not match the engine's circuit
    /// and test bench, or if a fault targets an out-of-range cycle or
    /// flip-flop.
    #[must_use]
    pub fn run(&self, plan: &CampaignPlan<'_>) -> CampaignRun {
        self.run_with_progress(plan, |_| {})
    }

    /// Executes a plan, invoking `on_shard` from worker threads as each
    /// shard completes (see [`ProgressEvent`] for ordering caveats).
    ///
    /// # Panics
    ///
    /// Same conditions as [`run`](Self::run).
    #[must_use]
    pub fn run_with_progress(
        &self,
        plan: &CampaignPlan<'_>,
        on_shard: impl Fn(ProgressEvent) + Sync,
    ) -> CampaignRun {
        assert_eq!(
            plan.testbench(),
            self.grader.testbench(),
            "plan test bench does not match engine"
        );
        assert!(
            plan.circuit().name() == self.circuit_name
                && plan.circuit().num_cells() == self.num_cells
                && plan.circuit().num_ffs() == self.grader.sim().num_ffs(),
            "plan circuit does not match engine"
        );

        let num_ffs = self.grader.sim().num_ffs();
        let num_cycles = self.grader.testbench().num_cycles();
        let faults = match plan.source() {
            FaultSource::Exhaustive => FaultPlan::Single(FaultList::exhaustive(num_ffs, num_cycles)),
            FaultSource::Sampled { count, seed } => {
                FaultPlan::Single(FaultList::sampled(num_ffs, num_cycles, *count, *seed))
            }
            FaultSource::List(list) => FaultPlan::Single(list.clone()),
            FaultSource::Multi(list) => FaultPlan::Multi(list.clone()),
        };

        let mut threads = plan.policy().resolved_threads().max(1);
        if faults.len() < plan.policy().serial_below {
            threads = 1;
        }

        let (outcomes, summary, stats) = match &faults {
            FaultPlan::Single(list) => {
                // The exhaustive space chunks arithmetically (and its
                // submission order is already cycle-major); anything
                // else goes through the counting-sorted plan.
                let lanes = self.grader.chunk_lanes();
                let chunks = match plan.source() {
                    FaultSource::Exhaustive => ChunkPlan::exhaustive(num_ffs, num_cycles, lanes),
                    _ => ChunkPlan::ordered(list.as_slice(), num_cycles, lanes),
                };
                self.grade_single(
                    &chunks,
                    threads,
                    plan.collapse(),
                    plan.window_cache(),
                    plan.kernel(),
                    &on_shard,
                )
            }
            FaultPlan::Multi(list) => self.grade_multi(list, threads, &on_shard),
        };
        CampaignRun {
            faults,
            outcomes,
            summary,
            stats,
            techniques: plan.techniques().to_vec(),
        }
    }

    /// Executes a single-fault plan through the **memory-bounded
    /// streaming path**: chunks are pulled lazily from the cycle-major
    /// chunk plan (the exhaustive space is never materialized) and
    /// verdicts fold into per-worker [`StreamAccumulator`]s that are
    /// order-merged after the join — campaign memory is
    /// `O(threads × FFs)` on top of the golden trace, independent of
    /// `faults × cycles`.
    ///
    /// Combined with [`TracePolicy::Checkpoint`] this is the
    /// configuration that grades s5378-class circuits over multi-
    /// thousand-cycle benches without ever holding the campaign in RAM;
    /// the [digest](StreamedRun::digest) proves the verdicts
    /// bit-identical to the materialized and serial engines.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run`](Self::run), or if the
    /// plan's source is [`FaultSource::Multi`] (MBU campaigns go through
    /// the materialized path), or if a worker panic survives the retry
    /// budget ([`try_run_streamed`](Self::try_run_streamed) reports that
    /// as an error instead).
    #[must_use]
    pub fn run_streamed(&self, plan: &CampaignPlan<'_>) -> StreamedRun {
        self.try_run_streamed(plan).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_streamed`](Self::run_streamed) with a caller-supplied
    /// [`VerdictSink`] — the hook the emulation models use to fold their
    /// technique timing online instead of re-walking a materialized
    /// outcome vector.
    ///
    /// One sink is `Default`-created per worker; sinks must be
    /// order-insensitive for the result to be schedule-independent.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_streamed`](Self::run_streamed).
    #[must_use]
    pub fn run_streamed_with<A: VerdictSink>(
        &self,
        plan: &CampaignPlan<'_>,
    ) -> (A, EngineStats) {
        self.try_run_streamed_with(plan).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-tolerant [`run_streamed`](Self::run_streamed): worker
    /// panics are contained, retried up to a bounded budget, and
    /// surfaced as [`EngineError::WorkerPanic`] instead of propagating.
    ///
    /// # Panics
    ///
    /// Panics on plan/engine mismatch or a [`FaultSource::Multi`] source
    /// (programmer errors); grading failures are `Err`.
    pub fn try_run_streamed(
        &self,
        plan: &CampaignPlan<'_>,
    ) -> Result<StreamedRun, EngineError> {
        let (acc, stats) = self.try_run_streamed_with::<StreamAccumulator>(plan)?;
        Ok(StreamedRun { acc, stats })
    }

    /// Fault-tolerant [`run_streamed_with`](Self::run_streamed_with).
    ///
    /// # Panics
    ///
    /// Same conditions as [`try_run_streamed`](Self::try_run_streamed).
    pub fn try_run_streamed_with<A: VerdictSink>(
        &self,
        plan: &CampaignPlan<'_>,
    ) -> Result<(A, EngineStats), EngineError> {
        self.check_streamed_plan(plan);
        let num_ffs = self.grader.sim().num_ffs();
        let num_cycles = self.grader.testbench().num_cycles();
        // Drawing a sample is the one source that inherently
        // materializes its fault list (a uniform draw needs the whole
        // space); explicit lists are borrowed, the exhaustive space is
        // arithmetic.
        let lanes = self.grader.chunk_lanes();
        let sample: FaultList;
        let chunks = match plan.source() {
            FaultSource::Exhaustive => ChunkPlan::exhaustive(num_ffs, num_cycles, lanes),
            FaultSource::Sampled { count, seed } => {
                sample = FaultList::sampled(num_ffs, num_cycles, *count, *seed);
                ChunkPlan::ordered(sample.as_slice(), num_cycles, lanes)
            }
            FaultSource::List(list) => ChunkPlan::ordered(list.as_slice(), num_cycles, lanes),
            FaultSource::Multi(_) => {
                panic!("streamed execution grades single-fault sources; use run() for MBUs")
            }
        };

        let threads = self.streamed_threads(plan, chunks.num_faults());
        let start = Instant::now();
        let cache_root = WindowCache::shared(plan.window_cache());
        let bits_root = BitCache::shared(plan.window_cache());
        let accs: Vec<A> = run_folded(
            chunks.num_chunks(),
            threads,
            || self.streamed_scratch(plan, &cache_root, &bits_root),
            A::default,
            |a: &mut A, b| a.merge(b),
            |scratch, acc: &mut A, i| self.grade_streamed_chunk(&chunks, scratch, acc, i, None),
        )?;
        let merged = accs
            .into_iter()
            .reduce(|mut a, b| {
                a.merge(b);
                a
            })
            .unwrap_or_default();
        let stats = EngineStats {
            faults: chunks.num_faults(),
            shards: chunks.num_chunks(),
            threads: threads.min(chunks.num_chunks()).max(1),
            wall_ns: start.elapsed().as_nanos(),
        };
        Ok((merged, stats))
    }

    /// The **interruption-safe** streaming path: grades in rounds of
    /// [`ResumeOptions::every`] chunks, persisting an atomic checkpoint
    /// (fingerprint + chunk cursor + folded sink) after every round, and
    /// stopping cleanly at chunk boundaries on cancellation or a chunk
    /// limit. With [`ResumeOptions::resume`] the campaign continues from
    /// the checkpoint's cursor instead of starting over — completed
    /// chunks are skipped arithmetically, never re-graded.
    ///
    /// Because completed chunks always form an exact queue prefix and
    /// the sink is order-insensitive, any interleaving of interruptions
    /// and resumes reproduces the uninterrupted run's digest exactly, at
    /// every thread count and trace policy.
    ///
    /// # Panics
    ///
    /// Panics on plan/engine mismatch, a [`FaultSource::Multi`] source,
    /// or `resume` without a checkpoint path (programmer errors). All
    /// checkpoint and grading failures are `Err`.
    pub fn run_streamed_resumable(
        &self,
        plan: &CampaignPlan<'_>,
        opts: &ResumeOptions,
    ) -> Result<ResumableRun<StreamAccumulator>, EngineError> {
        self.run_streamed_resumable_with(plan, opts)
    }

    /// [`run_streamed_resumable`](Self::run_streamed_resumable) with a
    /// caller-supplied [`PersistentSink`].
    ///
    /// # Panics
    ///
    /// Same conditions as
    /// [`run_streamed_resumable`](Self::run_streamed_resumable).
    pub fn run_streamed_resumable_with<A: PersistentSink>(
        &self,
        plan: &CampaignPlan<'_>,
        opts: &ResumeOptions,
    ) -> Result<ResumableRun<A>, EngineError> {
        self.check_streamed_plan(plan);
        assert!(
            !opts.resume || opts.checkpoint.is_some(),
            "resuming requires a checkpoint path"
        );
        let num_ffs = self.grader.sim().num_ffs();
        let num_cycles = self.grader.testbench().num_cycles();
        let lanes = self.grader.chunk_lanes();
        let sample: FaultList;
        let chunks = match plan.source() {
            FaultSource::Exhaustive => ChunkPlan::exhaustive(num_ffs, num_cycles, lanes),
            FaultSource::Sampled { count, seed } => {
                sample = FaultList::sampled(num_ffs, num_cycles, *count, *seed);
                ChunkPlan::ordered(sample.as_slice(), num_cycles, lanes)
            }
            FaultSource::List(list) => ChunkPlan::ordered(list.as_slice(), num_cycles, lanes),
            FaultSource::Multi(_) => {
                panic!("streamed execution grades single-fault sources; use run() for MBUs")
            }
        };
        let total_chunks = chunks.num_chunks();
        let fingerprint = Fingerprint::of(plan, total_chunks, chunks.num_faults());

        let mut sink = A::default();
        let mut meta = opts.meta.clone();
        let mut start_chunk = 0usize;
        if opts.resume {
            let path = opts.checkpoint.as_ref().expect("checked above");
            let ck = Checkpoint::load(path)?;
            ck.verify(&fingerprint)?;
            // The cursor must sit on a real chunk boundary of *this*
            // plan; the fingerprint matched, so a disagreement here
            // means the file's cursor line was rewritten.
            if ck.faults_done() != chunks.faults_before(ck.chunks_done()) {
                return Err(ResumeError::Corrupt {
                    line: 8,
                    msg: format!(
                        "cursor {} {} does not sit on a chunk boundary of this plan",
                        ck.chunks_done(),
                        ck.faults_done()
                    ),
                }
                .into());
            }
            start_chunk = ck.chunks_done();
            sink = ck.restore_sink::<A>()?;
            meta = ck.meta().to_vec();
        }

        let threads = self.streamed_threads(plan, chunks.num_faults());
        let every = opts.every.max(1);
        let ctl = FoldControl { cancel: opts.cancel.as_ref(), retry_budget: opts.retry_budget };
        let cancelled =
            || opts.cancel.as_ref().is_some_and(crate::cancel::CancelToken::is_cancelled);

        let start = Instant::now();
        let mut done = start_chunk;
        let mut interrupted = false;
        // One shared span store across every round: the per-round scratch
        // rebuild must not throw replayed golden spans away.
        let cache_root = WindowCache::shared(plan.window_cache());
        let bits_root = BitCache::shared(plan.window_cache());
        while done < total_chunks {
            let budget = opts
                .limit
                .map_or(usize::MAX, |l| l.saturating_sub(done - start_chunk));
            if budget == 0 || cancelled() {
                interrupted = true;
                break;
            }
            let round = every.min(total_chunks - done).min(budget);
            let status = run_folded_ctl(
                round,
                threads,
                || self.streamed_scratch(plan, &cache_root, &bits_root),
                A::default,
                |a: &mut A, b| a.merge(b),
                |scratch, acc: &mut A, i| {
                    self.grade_streamed_chunk(
                        &chunks,
                        scratch,
                        acc,
                        done + i,
                        opts.progress.as_ref(),
                    )
                },
                &ctl,
            )?;
            for acc in status.accs {
                sink.merge(acc);
            }
            done += status.completed;
            if status.completed < round {
                interrupted = true;
            }
            if let Some(path) = &opts.checkpoint {
                Checkpoint::new(
                    fingerprint.clone(),
                    done,
                    chunks.faults_before(done),
                    meta.clone(),
                    &sink,
                )
                .write_atomic(path)?;
            }
            if interrupted {
                break;
            }
        }
        // Zero-round invocations (already complete, limit 0, pre-
        // cancelled) still leave a valid checkpoint behind.
        if let Some(path) = &opts.checkpoint {
            if done == start_chunk {
                Checkpoint::new(
                    fingerprint.clone(),
                    done,
                    chunks.faults_before(done),
                    meta.clone(),
                    &sink,
                )
                .write_atomic(path)?;
            }
        }

        let faults_done = chunks.faults_before(done);
        Ok(ResumableRun {
            stats: EngineStats {
                faults: faults_done,
                shards: done,
                threads: threads.min(total_chunks.max(1)),
                wall_ns: start.elapsed().as_nanos(),
            },
            sink,
            chunks_done: done,
            chunks_total: total_chunks,
            faults_done,
            faults_total: chunks.num_faults(),
            resumed_from: start_chunk,
            interrupted,
        })
    }

    /// Rejects plans built for a different circuit or test bench.
    fn check_streamed_plan(&self, plan: &CampaignPlan<'_>) {
        assert_eq!(
            plan.testbench(),
            self.grader.testbench(),
            "plan test bench does not match engine"
        );
        assert!(
            plan.circuit().name() == self.circuit_name
                && plan.circuit().num_cells() == self.num_cells
                && plan.circuit().num_ffs() == self.grader.sim().num_ffs(),
            "plan circuit does not match engine"
        );
    }

    /// Worker count for a streamed run of `num_faults` faults.
    fn streamed_threads(&self, plan: &CampaignPlan<'_>, num_faults: usize) -> usize {
        let threads = plan.policy().resolved_threads().max(1);
        if num_faults < plan.policy().serial_below {
            1
        } else {
            threads
        }
    }

    /// Per-worker grading scratch: the grader's scratch configured from
    /// the plan's collapse mode and window-cache capacity, the chunk
    /// fault buffer, and the 64-lane outcome array. Cheap to rebuild —
    /// the pool recreates it after a contained worker panic.
    fn streamed_scratch(
        &self,
        plan: &CampaignPlan<'_>,
        root: &WindowCache,
        bits: &BitCache,
    ) -> StreamedScratch {
        (
            self.grader
                .new_scratch_with_cache(plan.collapse(), root.clone_handle())
                .with_kernel(plan.kernel())
                .with_bit_cache(bits.clone_handle()),
            Vec::with_capacity(64),
            [FaultOutcome::latent(); 64],
        )
    }

    /// Grades one chunk of the streamed plan into `acc`, reporting the
    /// chunk's tallies through `progress` when a hook is installed.
    fn grade_streamed_chunk<A: VerdictSink>(
        &self,
        chunks: &ChunkPlan<'_>,
        (st, buf, out): &mut StreamedScratch,
        acc: &mut A,
        i: usize,
        progress: Option<&ProgressHook>,
    ) {
        chunks.fill(i, buf);
        let out = &mut out[..buf.len()];
        self.grader.grade_chunk(st, buf, out);
        for (&f, &o) in buf.iter().zip(out.iter()) {
            acc.observe(f, o);
        }
        if let Some(hook) = progress {
            hook.call(ProgressEvent {
                shard: i,
                faults: buf.len(),
                summary: GradingSummary::from_outcomes(out),
            });
        }
    }

    /// Single-fault path: dispatch the plan's same-cycle 64-lane chunks
    /// through the chunk queue, scatter the per-chunk verdicts back into
    /// submission order and pool the per-shard tallies.
    fn grade_single(
        &self,
        chunks: &ChunkPlan<'_>,
        threads: usize,
        collapse: Collapse,
        cache_spans: usize,
        kernel: Kernel,
        on_shard: &(impl Fn(ProgressEvent) + Sync),
    ) -> (Vec<FaultOutcome>, GradingSummary, EngineStats) {
        let start = Instant::now();
        // One span store for the whole pool: each worker gets a handle,
        // so a span is replayed once per run, not once per worker.
        let cache_root = WindowCache::shared(cache_spans);
        let bits_root = BitCache::shared(cache_spans);
        let graded: Vec<(Vec<FaultOutcome>, GradingSummary)> = run_indexed(
            chunks.num_chunks(),
            threads,
            || {
                (
                    self.grader
                        .new_scratch_with_cache(collapse, cache_root.clone_handle())
                        .with_kernel(kernel)
                        .with_bit_cache(bits_root.clone_handle()),
                    Vec::with_capacity(64),
                )
            },
            |(st, buf): &mut _, i| {
                chunks.fill(i, buf);
                let mut out = vec![FaultOutcome::latent(); buf.len()];
                self.grader.grade_chunk(st, buf, &mut out);
                let summary = GradingSummary::from_outcomes(&out);
                on_shard(ProgressEvent {
                    shard: i,
                    faults: out.len(),
                    summary: summary.clone(),
                });
                (out, summary)
            },
        );

        let mut outcomes = vec![FaultOutcome::latent(); chunks.num_faults()];
        for (i, (out, _)) in graded.iter().enumerate() {
            chunks.scatter(i, out, &mut outcomes);
        }
        let summaries: Vec<GradingSummary> = graded.into_iter().map(|(_, s)| s).collect();
        let summary = sampling::pool_summaries(&summaries);
        let stats = EngineStats {
            faults: chunks.num_faults(),
            shards: chunks.num_chunks(),
            threads: threads.min(chunks.num_chunks()).max(1),
            wall_ns: start.elapsed().as_nanos(),
        };
        (outcomes, summary, stats)
    }

    /// MBU path: contiguous slices of the fault vector are the shards;
    /// each worker grades its slice serially with the multi-bit engine.
    fn grade_multi(
        &self,
        list: &[MultiFault],
        threads: usize,
        on_shard: &(impl Fn(ProgressEvent) + Sync),
    ) -> (Vec<FaultOutcome>, GradingSummary, EngineStats) {
        // A few shards per thread keeps the queue balanced without
        // making progress events too chatty.
        let shard_count = (threads * 4).clamp(1, list.len().max(1));
        let base = list.len() / shard_count;
        let extra = list.len() % shard_count;
        let mut ranges = Vec::with_capacity(shard_count);
        let mut lo = 0;
        for i in 0..shard_count {
            let len = base + usize::from(i < extra);
            ranges.push((lo, lo + len));
            lo += len;
        }

        let start = Instant::now();
        let graded: Vec<(Vec<FaultOutcome>, GradingSummary)> = run_indexed(
            ranges.len(),
            threads,
            || (),
            |(), i| {
                let (lo, hi) = ranges[i];
                let out: Vec<FaultOutcome> = list[lo..hi]
                    .iter()
                    .map(|f| self.grader.classify_multi(f))
                    .collect();
                let summary = GradingSummary::from_outcomes(&out);
                on_shard(ProgressEvent {
                    shard: i,
                    faults: out.len(),
                    summary: summary.clone(),
                });
                (out, summary)
            },
        );
        let (outcome_vecs, summaries): (Vec<_>, Vec<_>) = graded.into_iter().unzip();
        let outcomes: Vec<FaultOutcome> = outcome_vecs.into_iter().flatten().collect();
        let summary = sampling::pool_summaries(&summaries);
        let stats = EngineStats {
            faults: list.len(),
            shards: ranges.len(),
            threads: threads.min(ranges.len()).max(1),
            wall_ns: start.elapsed().as_nanos(),
        };
        (outcomes, summary, stats)
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::{generators, registry};
    use seugrade_faultsim::{Fault, FaultClass};

    use crate::plan::ShardPolicy;
    use crate::progress::ProgressCounter;
    use super::*;

    #[test]
    fn exhaustive_matches_serial_engine_at_every_thread_count() {
        let circuit = registry::build("b03s").unwrap();
        let tb = Testbench::random(circuit.num_inputs(), 25, 3);
        let grader = Grader::new(&circuit, &tb);
        let faults = FaultList::exhaustive(circuit.num_ffs(), 25);
        let serial = grader.run_serial(faults.as_slice());
        for threads in [1, 2, 4, 8] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .policy(ShardPolicy::with_threads(threads))
                .build();
            let run = plan.execute();
            assert_eq!(run.outcomes(), serial.as_slice(), "{threads} threads");
            assert_eq!(run.summary(), &GradingSummary::from_outcomes(&serial));
            assert_eq!(run.stats().threads, threads.min(run.stats().shards.max(1)));
        }
    }

    #[test]
    fn worker_count_is_capped_at_shard_count() {
        let circuit = generators::counter(2);
        let tb = Testbench::constant_low(0, 4); // 8 faults -> 4 same-cycle shards
        let plan = CampaignPlan::builder(&circuit, &tb)
            .policy(ShardPolicy::with_threads(8))
            .build();
        let run = plan.execute();
        assert_eq!(run.stats().shards, 4);
        assert_eq!(run.stats().threads, 4, "stats report actual workers, not the request");
    }

    #[test]
    fn sampled_runs_are_seed_deterministic() {
        let circuit = registry::build("b06s").unwrap();
        let tb = Testbench::random(circuit.num_inputs(), 30, 11);
        let engine = Engine::for_circuit(&circuit, &tb);
        let a = engine.run(
            &CampaignPlan::builder(&circuit, &tb).sampled(50, 23).threads(4).build(),
        );
        let b = engine.run(&CampaignPlan::builder(&circuit, &tb).sampled(50, 23).build());
        assert_eq!(a.single(), b.single(), "same sample whatever the policy");
        assert_eq!(a.outcomes(), b.outcomes());
        assert_eq!(a.single().unwrap().len(), 50);
    }

    #[test]
    fn explicit_list_roundtrips_in_submission_order() {
        let circuit = generators::shift_register(6);
        let tb = Testbench::random(1, 15, 3);
        let grader = Grader::new(&circuit, &tb);
        // A deliberately shuffled (reverse cycle-major) list.
        let mut faults: Vec<Fault> = FaultList::exhaustive(6, 15).iter().collect();
        faults.reverse();
        let list = FaultList::from_faults(faults.clone(), 6, 15);
        let serial = grader.run_serial(&faults);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .faults(list)
            .policy(ShardPolicy::with_threads(3))
            .build();
        let run = plan.execute();
        assert_eq!(run.outcomes(), serial.as_slice());
    }

    #[test]
    fn multi_fault_campaign_matches_serial_multi_engine() {
        let circuit = generators::lfsr(6, &[5, 2]);
        let tb = Testbench::constant_low(0, 12);
        let grader = Grader::new(&circuit, &tb);
        let faults = MultiFault::adjacent_pairs(6, 12, 2);
        let serial = grader.run_multi(&faults);
        for threads in [1, 3] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .multi(faults.clone())
                .policy(ShardPolicy::with_threads(threads))
                .build();
            let run = plan.execute();
            assert_eq!(run.outcomes(), serial.as_slice(), "{threads} threads");
            assert_eq!(run.multi().unwrap().len(), faults.len());
            assert!(run.single().is_none());
        }
    }

    #[test]
    fn progress_events_cover_every_fault_exactly_once() {
        let circuit = registry::build("b06s").unwrap();
        let tb = Testbench::random(circuit.num_inputs(), 20, 5);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .policy(ShardPolicy::with_threads(2))
            .build();
        let counter = ProgressCounter::new();
        let run = Engine::new(&plan).run_with_progress(&plan, |e| counter.observe(&e));
        assert_eq!(counter.faults_done(), run.faults().len());
        assert_eq!(counter.shards_done(), run.stats().shards);
    }

    #[test]
    fn serial_below_forces_inline_execution() {
        let circuit = generators::counter(3);
        let tb = Testbench::constant_low(0, 6);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .policy(ShardPolicy { threads: 8, serial_below: 1_000 })
            .build();
        let run = plan.execute();
        assert_eq!(run.stats().threads, 1, "18 faults < serial_below");
        assert_eq!(run.summary().count(FaultClass::Failure), run.faults().len());
    }

    #[test]
    fn empty_campaign_is_fine() {
        let circuit = generators::counter(2);
        let tb = Testbench::constant_low(0, 4);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .faults(FaultList::from_faults(Vec::new(), 2, 4))
            .build();
        let run = plan.execute();
        assert!(run.outcomes().is_empty());
        assert_eq!(run.stats().shards, 0);
        assert_eq!(run.summary().total(), 0);
    }

    #[test]
    fn engine_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<CampaignRun>();
        assert_send_sync::<FaultPlan>();
        assert_send_sync::<EngineStats>();
        assert_send_sync::<StreamedRun>();
    }

    #[test]
    fn streamed_run_matches_materialized_at_every_thread_count() {
        let circuit = registry::build("b06s").unwrap();
        let tb = Testbench::random(circuit.num_inputs(), 24, 7);
        let engine = Engine::for_circuit(&circuit, &tb);
        let reference = engine.run(&CampaignPlan::builder(&circuit, &tb).build());
        let ref_digest = StreamAccumulator::digest_of(
            reference.single().unwrap().as_slice(),
            reference.outcomes(),
        );
        for threads in [1, 2, 4, 8] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .policy(crate::ShardPolicy::with_threads(threads))
                .build();
            let streamed = engine.run_streamed(&plan);
            assert_eq!(streamed.summary(), reference.summary(), "{threads} threads");
            assert_eq!(streamed.digest(), ref_digest, "{threads} threads");
            assert_eq!(streamed.stats().faults, reference.faults().len());
            assert_eq!(streamed.stats().shards, reference.stats().shards);
        }
        // Failure map agrees with the grader's materialized one.
        let map = engine
            .grader()
            .failure_map(reference.single().unwrap().as_slice(), reference.outcomes());
        let streamed = engine.run_streamed(&CampaignPlan::builder(&circuit, &tb).build());
        assert_eq!(&map[..streamed.failure_map().len()], streamed.failure_map());
        assert!(map[streamed.failure_map().len()..].iter().all(|&c| c == 0));
    }

    #[test]
    fn streamed_checkpoint_engine_matches_dense_and_serial() {
        use seugrade_sim::TracePolicy;
        let circuit = registry::build("b03s").unwrap();
        let tb = Testbench::random(circuit.num_inputs(), 40, 11);
        let grader = Grader::new(&circuit, &tb);
        let faults = FaultList::exhaustive(circuit.num_ffs(), 40);
        let serial = grader.run_serial(faults.as_slice());
        let serial_digest = StreamAccumulator::digest_of(faults.as_slice(), &serial);
        for k in [1, 7, 40, 64] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .trace_policy(TracePolicy::Checkpoint(k))
                .threads(2)
                .build();
            let engine = Engine::new(&plan);
            assert_eq!(engine.grader().trace_policy(), TracePolicy::Checkpoint(k));
            let streamed = engine.run_streamed(&plan);
            assert_eq!(streamed.digest(), serial_digest, "K={k}");
            // The materialized path agrees under the same policy too.
            let run = engine.run(&plan);
            assert_eq!(run.outcomes(), serial.as_slice(), "K={k} materialized");
        }
    }

    #[test]
    fn streamed_sampled_and_list_sources_agree_with_run() {
        let circuit = registry::build("b06s").unwrap();
        let tb = Testbench::random(circuit.num_inputs(), 20, 3);
        let engine = Engine::for_circuit(&circuit, &tb);
        for source in [
            FaultSource::Sampled { count: 50, seed: 23 },
            FaultSource::List(FaultList::sampled(circuit.num_ffs(), 20, 30, 5)),
        ] {
            let plan = CampaignPlan::builder(&circuit, &tb)
                .source(source)
                .threads(3)
                .build();
            let run = engine.run(&plan);
            let streamed = engine.run_streamed(&plan);
            assert_eq!(streamed.summary(), run.summary());
            assert_eq!(
                streamed.digest(),
                StreamAccumulator::digest_of(run.single().unwrap().as_slice(), run.outcomes())
            );
        }
    }

    #[test]
    #[should_panic(expected = "single-fault sources")]
    fn streamed_multi_source_rejected() {
        let circuit = generators::counter(3);
        let tb = Testbench::constant_low(0, 6);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .multi(MultiFault::adjacent_pairs(3, 6, 2))
            .build();
        let _ = plan.execute_streamed();
    }

    #[test]
    fn streamed_empty_campaign_is_fine() {
        let circuit = generators::counter(2);
        let tb = Testbench::constant_low(0, 4);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .faults(FaultList::from_faults(Vec::new(), 2, 4))
            .build();
        let run = plan.execute_streamed();
        assert_eq!(run.summary().total(), 0);
        assert_eq!(run.digest(), 0);
        assert_eq!(run.stats().shards, 0);
    }

    #[test]
    #[should_panic(expected = "does not match engine")]
    fn mismatched_plan_rejected() {
        let c1 = generators::counter(2);
        let tb1 = Testbench::constant_low(0, 4);
        let tb2 = Testbench::constant_low(0, 9);
        let engine = Engine::for_circuit(&c1, &tb1);
        let plan = CampaignPlan::builder(&c1, &tb2).build();
        let _ = engine.run(&plan);
    }

    #[test]
    #[should_panic(expected = "test bench does not match")]
    fn same_shape_different_stimuli_rejected() {
        // Same width and cycle count, different input vectors: grading
        // against the wrong golden trace must not happen silently.
        let circuit = generators::shift_register(4);
        let tb1 = Testbench::random(1, 10, 1);
        let tb2 = Testbench::random(1, 10, 2);
        let engine = Engine::for_circuit(&circuit, &tb1);
        let plan = CampaignPlan::builder(&circuit, &tb2).build();
        let _ = engine.run(&plan);
    }

    #[test]
    #[should_panic(expected = "circuit does not match")]
    fn different_circuit_with_same_dimensions_rejected() {
        // Both circuits: 0 inputs, 4 flip-flops — dimensions alone would
        // not catch the swap.
        let c1 = generators::counter(4);
        let c2 = generators::lfsr(4, &[3, 2]);
        let tb = Testbench::constant_low(0, 8);
        let engine = Engine::for_circuit(&c1, &tb);
        let plan = CampaignPlan::builder(&c2, &tb).build();
        let _ = engine.run(&plan);
    }
}
