//! `seugrade-engine` — the sharded, multi-threaded campaign runtime.
//!
//! The paper's core argument is that fault grading must be *fast at
//! campaign scale*: autonomous emulation removes the per-fault host
//! bottleneck and grades all 34,400 b14 faults in bulk. This crate is the
//! software analogue of that move for the workspace's own engines — where
//! [`Grader`](seugrade_faultsim::Grader) runs one fault list on one core,
//! this runtime shards a campaign into same-cycle 64-lane batches,
//! dispatches them across a home-grown chunk-queue thread pool
//! (`std::thread::scope`, no external dependencies), and merges the
//! per-shard verdicts **deterministically**: every thread count produces
//! bit-identical outcomes, equal to the serial reference engine.
//!
//! | module | role |
//! |--------|------|
//! | [`plan`] | [`CampaignPlan`] builder: circuit × test bench × fault source × techniques × [`ShardPolicy`] × `TracePolicy` |
//! | [`runtime`] | [`Engine`]: shard, dispatch, merge; [`CampaignRun`] / [`StreamedRun`] results |
//! | [`stream`] | cycle-major chunk plans and online [`VerdictSink`]s — the memory-bounded campaign core |
//! | [`resume`] | `seugrade-campaign-ckpt/v1` checkpoints, [`Fingerprint`] verification, [`PersistentSink`] — the interruption-safety layer |
//! | [`error`] | [`EngineError`]: structured failures (worker panics, checkpoint problems) |
//! | [`cancel`] | [`CancelToken`]: cooperative chunk-boundary cancellation |
//! | [`progress`] | per-shard [`ProgressEvent`]s, [`ProgressCounter`], [`EngineStats`] |
//! | [`mod@bench`] | [`throughput_harness`] and the stable `BENCH_engine.json` schema |
//!
//! # Example
//!
//! ```
//! use seugrade_circuits::generators;
//! use seugrade_engine::{CampaignPlan, ShardPolicy};
//! use seugrade_sim::Testbench;
//!
//! let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
//! let tb = Testbench::constant_low(0, 20);
//! let plan = CampaignPlan::builder(&circuit, &tb)
//!     .policy(ShardPolicy::with_threads(2))
//!     .build();
//! let run = plan.execute();
//! assert_eq!(run.summary().total(), 8 * 20);
//! println!("{}", run.stats());
//! ```
//!
//! # Determinism guarantees
//!
//! Fault verdicts depend only on the fault itself (a property the
//! bit-parallel engine already has: lanes are independent), so the only
//! thing scheduling can change is *order*. The runtime pins order down by
//! tagging every shard with its queue index and scattering per-shard
//! outcome vectors back into submission order after the join. Progress
//! events are the one observable that *does* vary run to run — they fire
//! as shards finish.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cancel;
pub mod error;
pub mod plan;
mod pool;
pub mod progress;
pub mod resume;
pub mod runtime;
pub mod stream;

pub use bench::{
    host_cores, throughput_harness, BenchRecord, BenchReport, GradeBenchReport, GradeRecord,
    BENCH_SCHEMA, GRADE_BENCH_SCHEMA,
};
pub use cancel::CancelToken;
pub use error::EngineError;
pub use plan::{CampaignPlan, CampaignPlanBuilder, FaultSource, ShardPolicy, Technique};
pub use progress::{EngineStats, ProgressCounter, ProgressEvent, ProgressHook};
pub use resume::{
    Checkpoint, Fingerprint, PersistentSink, ResumeError, ResumeOptions, CKPT_SCHEMA,
    DEFAULT_CHECKPOINT_EVERY,
};
pub use runtime::{CampaignRun, Engine, FaultPlan, ResumableRun, StreamedRun};
pub use stream::{StreamAccumulator, VerdictSink};
