//! Throughput benchmarking: measured engine runs serialized to a stable
//! JSON schema (`BENCH_engine.json`), so the perf trajectory of the
//! runtime is tracked in data rather than anecdotes.
//!
//! # Schema (`seugrade-engine-bench/v1`)
//!
//! ```json
//! {
//!   "schema": "seugrade-engine-bench/v1",
//!   "records": [
//!     {
//!       "circuit": "viper",
//!       "technique": "engine",
//!       "threads": 4,
//!       "faults": 34400,
//!       "wall_ns": 123456789,
//!       "faults_per_sec": 278662.0,
//!       "speedup_vs_serial": 61.2,
//!       "speedup_vs_single_thread": 2.9
//!     }
//!   ]
//! }
//! ```
//!
//! - `technique` — which grading path produced the row: `"serial"` (the
//!   one-fault-at-a-time reference), `"engine"` (this crate's sharded
//!   runtime), or a modelled autonomous-emulation technique appended by
//!   the `repro` binary.
//! - `speedup_vs_serial` — per-fault speedup over the scalar serial
//!   engine (row-to-row comparable even when fault counts differ).
//! - `speedup_vs_single_thread` — wall-clock speedup over the same
//!   engine at one thread; the thread-scaling signal.

use std::fmt::Write as _;
use std::time::Instant;

use seugrade_faultsim::FaultList;
use seugrade_netlist::Netlist;
use seugrade_sim::Testbench;

use crate::plan::{CampaignPlan, ShardPolicy};
use crate::runtime::{CampaignRun, Engine};

/// The schema identifier embedded in every report.
pub const BENCH_SCHEMA: &str = "seugrade-engine-bench/v1";

/// The schema identifier of the streamed-grading scaling report
/// (`BENCH_grade.json`).
pub const GRADE_BENCH_SCHEMA: &str = "seugrade-grade-bench/v1";

/// One measured streamed-campaign row: throughput *and* golden-trace
/// memory, the two axes the streaming core trades against each other.
#[derive(Clone, Debug, PartialEq)]
pub struct GradeRecord {
    /// Circuit label.
    pub circuit: String,
    /// Golden-trace storage policy label (`dense` / `checkpoint:K`).
    pub policy: String,
    /// Worker threads used.
    pub threads: usize,
    /// Circuit flip-flops.
    pub ffs: usize,
    /// Test-bench cycles.
    pub cycles: usize,
    /// Faults graded by this row.
    pub faults: usize,
    /// Fault source label (`exhaustive` / `sampled:N`).
    pub source: String,
    /// Wall-clock nanoseconds of the streamed run.
    pub wall_ns: u128,
    /// Throughput in faults per second.
    pub faults_per_sec: f64,
    /// Bits of golden-trace state actually held in host memory under
    /// the policy.
    pub golden_stored_bits: u64,
    /// What a dense golden trace of the same run would store.
    pub golden_dense_bits: u64,
    /// Early-collapse label (`on` / `off`) the row was measured under.
    /// Additive `seugrade-grade-bench/v1` field: appended after the v1
    /// columns so existing consumers are unaffected.
    pub collapse: String,
    /// Faulty-evaluation kernel label (`generic` / `tape` /
    /// `differential`) the row was measured under. Additive field,
    /// appended after `collapse`.
    pub kernel: String,
    /// Logical cores of the measuring host (see [`host_cores`]), so
    /// committed rows carry the hardware context of their thread counts.
    /// Additive field, appended after `kernel`.
    pub host_cores: usize,
}

/// A streamed-grading scaling report, serializable to the stable
/// `seugrade-grade-bench/v1` JSON schema.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GradeBenchReport {
    /// The rows, in measurement order.
    pub records: Vec<GradeRecord>,
}

impl GradeBenchReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, record: GradeRecord) {
        self.records.push(record);
    }

    /// Finds a row by policy label.
    #[must_use]
    pub fn find(&self, policy: &str) -> Option<&GradeRecord> {
        self.records.iter().find(|r| r.policy == policy)
    }

    /// Serializes the report with a stable field order; the output is
    /// valid JSON (non-finite floats are clamped to `0.0`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_string(GRADE_BENCH_SCHEMA));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(
                s,
                "\"circuit\": {}, \"policy\": {}, \"threads\": {}, \"ffs\": {}, \
                 \"cycles\": {}, \"faults\": {}, \"source\": {}, \"wall_ns\": {}, \
                 \"faults_per_sec\": {}, \"golden_stored_bits\": {}, \
                 \"golden_dense_bits\": {}, \"collapse\": {}, \"kernel\": {}, \
                 \"host_cores\": {}",
                json_string(&r.circuit),
                json_string(&r.policy),
                r.threads,
                r.ffs,
                r.cycles,
                r.faults,
                json_string(&r.source),
                r.wall_ns,
                json_number(r.faults_per_sec),
                r.golden_stored_bits,
                r.golden_dense_bits,
                json_string(&r.collapse),
                json_string(&r.kernel),
                r.host_cores,
            );
            s.push('}');
            if i + 1 < self.records.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// One measured (or modelled) throughput row.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Circuit label.
    pub circuit: String,
    /// Grading path: `"serial"`, `"engine"`, or a modelled technique.
    pub technique: String,
    /// Worker threads used (1 for serial and modelled rows).
    pub threads: usize,
    /// Faults graded by this row.
    pub faults: usize,
    /// Wall-clock (or modelled) nanoseconds.
    pub wall_ns: u128,
    /// Throughput in faults per second.
    pub faults_per_sec: f64,
    /// Per-fault speedup over the scalar serial engine.
    pub speedup_vs_serial: f64,
    /// Wall-clock speedup over the single-threaded engine run.
    pub speedup_vs_single_thread: f64,
    /// Logical cores of the measuring host (see [`host_cores`]).
    /// Additive `seugrade-engine-bench/v1` field, appended last.
    pub host_cores: usize,
}

impl BenchRecord {
    /// Average nanoseconds per fault.
    #[must_use]
    pub fn ns_per_fault(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.wall_ns as f64 / self.faults as f64
        }
    }
}

/// A full benchmark report, serializable to the stable JSON schema.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// The rows, in measurement order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// Finds a row by technique and thread count.
    #[must_use]
    pub fn find(&self, technique: &str, threads: usize) -> Option<&BenchRecord> {
        self.records
            .iter()
            .find(|r| r.technique == technique && r.threads == threads)
    }

    /// Serializes the report with a stable field order; the output is
    /// valid JSON (non-finite floats are clamped to `0.0`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_string(BENCH_SCHEMA));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(
                s,
                "\"circuit\": {}, \"technique\": {}, \"threads\": {}, \"faults\": {}, \
                 \"wall_ns\": {}, \"faults_per_sec\": {}, \"speedup_vs_serial\": {}, \
                 \"speedup_vs_single_thread\": {}, \"host_cores\": {}",
                json_string(&r.circuit),
                json_string(&r.technique),
                r.threads,
                r.faults,
                r.wall_ns,
                json_number(r.faults_per_sec),
                json_number(r.speedup_vs_serial),
                json_number(r.speedup_vs_single_thread),
                r.host_cores,
            );
            s.push('}');
            if i + 1 < self.records.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_string(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_owned()
    }
}

/// Measures campaign throughput on one circuit: the scalar serial engine
/// on a bounded sample, then the sharded engine over the exhaustive list
/// at each requested thread count.
///
/// The engine (golden run included) is built once and reused, so rows
/// differ only in scheduling. `serial_sample` bounds the serial
/// measurement (the slowest engine; its per-fault cost extrapolates
/// linearly). Returns the report together with the **last** engine run
/// (the highest thread count) so callers can reuse the graded outcomes
/// — e.g. to derive emulation-technique reports — without grading the
/// campaign again.
///
/// # Panics
///
/// Panics if `thread_counts` is empty or contains zero, or if the test
/// bench does not match the circuit.
#[must_use]
pub fn throughput_harness(
    circuit: &Netlist,
    tb: &Testbench,
    circuit_label: &str,
    thread_counts: &[usize],
    serial_sample: usize,
) -> (BenchReport, CampaignRun) {
    assert!(!thread_counts.is_empty(), "need at least one thread count");
    assert!(
        thread_counts.iter().all(|&t| t > 0),
        "thread counts must be positive"
    );
    let engine = Engine::for_circuit(circuit, tb);
    let exhaustive = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
    let mut report = BenchReport::new();

    // Scalar serial reference on a bounded sample.
    let sample = FaultList::sampled(
        circuit.num_ffs(),
        tb.num_cycles(),
        serial_sample.max(1),
        7,
    );
    let start = Instant::now();
    let serial_outcomes = engine.grader().run_serial(sample.as_slice());
    let serial_wall = start.elapsed().as_nanos();
    assert_eq!(serial_outcomes.len(), sample.len());
    let serial_ns_per_fault = serial_wall as f64 / sample.len().max(1) as f64;
    report.push(BenchRecord {
        circuit: circuit_label.to_owned(),
        technique: "serial".to_owned(),
        threads: 1,
        faults: sample.len(),
        wall_ns: serial_wall,
        faults_per_sec: rate(sample.len(), serial_wall),
        speedup_vs_serial: 1.0,
        speedup_vs_single_thread: 0.0,
        host_cores: host_cores(),
    });

    // The sharded engine at each thread count (1 first, as the scaling
    // baseline).
    let mut counts: Vec<usize> = thread_counts.to_vec();
    if !counts.contains(&1) {
        counts.insert(0, 1);
    }
    counts.sort_unstable();
    counts.dedup();
    let mut single_thread_wall = 0u128;
    let mut last_run = None;
    for &threads in &counts {
        let plan = CampaignPlan::builder(circuit, tb)
            .policy(ShardPolicy { threads, serial_below: 0 })
            .build();
        let run = engine.run(&plan);
        let wall = run.stats().wall_ns;
        if threads == 1 {
            single_thread_wall = wall;
        }
        let ns_per_fault = wall as f64 / exhaustive.len().max(1) as f64;
        report.push(BenchRecord {
            circuit: circuit_label.to_owned(),
            technique: "engine".to_owned(),
            threads,
            faults: exhaustive.len(),
            wall_ns: wall,
            faults_per_sec: rate(exhaustive.len(), wall),
            speedup_vs_serial: ratio(serial_ns_per_fault, ns_per_fault),
            speedup_vs_single_thread: ratio(single_thread_wall as f64, wall as f64),
            host_cores: host_cores(),
        });
        last_run = Some(run);
    }
    (report, last_run.expect("at least one thread count measured"))
}

/// Logical cores of the measuring host
/// (`std::thread::available_parallelism`, 1 when undetectable).
///
/// Recorded in every bench row so a committed `BENCH_*.json` carries the
/// hardware context its thread counts were measured on.
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Throughput in faults per second (0 for a zero-duration measurement).
///
/// Public so every producer of [`BenchRecord`] rows — this harness, the
/// `repro` binary's modelled rows — shares one zero-guarded formula.
#[must_use]
pub fn rate(faults: usize, wall_ns: u128) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        faults as f64 * 1e9 / wall_ns as f64
    }
}

/// Speedup ratio with a zero/negative-denominator guard (returns 0).
#[must_use]
pub fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::registry;

    use super::*;

    #[test]
    fn harness_produces_serial_and_engine_rows() {
        let circuit = registry::build("b06s").unwrap();
        let tb = Testbench::random(circuit.num_inputs(), 24, 42);
        let (report, run) = throughput_harness(&circuit, &tb, "b06s", &[1, 2], 32);
        assert!(report.find("serial", 1).is_some());
        let e1 = report.find("engine", 1).expect("single-thread row");
        let e2 = report.find("engine", 2).expect("two-thread row");
        assert_eq!(e1.faults, circuit.num_ffs() * 24);
        assert_eq!(e1.faults, e2.faults);
        assert!((e1.speedup_vs_single_thread - 1.0).abs() < 1e-9);
        assert!(e1.speedup_vs_serial > 0.0);
        assert!(e2.wall_ns > 0);
        // The returned run is the last (highest thread count) one.
        assert_eq!(run.stats().threads, 2);
        assert_eq!(run.outcomes().len(), e2.faults);
    }

    #[test]
    fn json_is_schema_stable() {
        let mut report = BenchReport::new();
        report.push(BenchRecord {
            circuit: "b06s".into(),
            technique: "engine".into(),
            threads: 2,
            faults: 100,
            wall_ns: 1_000,
            faults_per_sec: 1e8,
            speedup_vs_serial: 2.5,
            speedup_vs_single_thread: f64::NAN,
            host_cores: 8,
        });
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"seugrade-engine-bench/v1\""));
        assert!(json.contains("\"circuit\": \"b06s\""));
        assert!(json.contains("\"technique\": \"engine\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"faults\": 100"));
        assert!(json.contains("\"wall_ns\": 1000"));
        assert!(json.contains("\"faults_per_sec\": 100000000.000"));
        assert!(json.contains("\"speedup_vs_single_thread\": 0.000"), "NaN clamped");
        assert!(json.contains("\"host_cores\": 8"));
        // Field order is part of the schema contract; the additive
        // `host_cores` column stays last.
        let c = json.find("\"circuit\"").unwrap();
        let t = json.find("\"technique\"").unwrap();
        let th = json.find("\"threads\"").unwrap();
        let st = json.find("\"speedup_vs_single_thread\"").unwrap();
        let hc = json.find("\"host_cores\"").unwrap();
        assert!(c < t && t < th && st < hc);
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn grade_json_is_schema_stable() {
        let mut report = GradeBenchReport::new();
        report.push(GradeRecord {
            circuit: "s5378g".into(),
            policy: "checkpoint:64".into(),
            threads: 2,
            ffs: 1536,
            cycles: 4096,
            faults: 65536,
            source: "sampled:65536".into(),
            wall_ns: 5_000,
            faults_per_sec: 1e6,
            golden_stored_bits: 101_376,
            golden_dense_bits: 6_390_720,
            collapse: "on".into(),
            kernel: "differential".into(),
            host_cores: 4,
        });
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"seugrade-grade-bench/v1\""));
        assert!(json.contains("\"policy\": \"checkpoint:64\""));
        assert!(json.contains("\"golden_stored_bits\": 101376"));
        assert!(json.contains("\"source\": \"sampled:65536\""));
        assert!(json.contains("\"collapse\": \"on\""));
        assert!(json.contains("\"kernel\": \"differential\""));
        assert!(json.contains("\"host_cores\": 4"));
        assert_eq!(report.find("checkpoint:64").unwrap().cycles, 4096);
        assert!(report.find("dense").is_none());
        // Field order is part of the schema contract; additive columns
        // stay after every v1 field, in `collapse`, `kernel`,
        // `host_cores` order.
        let p = json.find("\"policy\"").unwrap();
        let f = json.find("\"ffs\"").unwrap();
        let d = json.find("\"golden_dense_bits\"").unwrap();
        let cl = json.find("\"collapse\"").unwrap();
        let k = json.find("\"kernel\"").unwrap();
        let hc = json.find("\"host_cores\"").unwrap();
        assert!(p < f && d < cl && cl < k && k < hc);
    }

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }
}
