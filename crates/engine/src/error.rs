//! Structured engine failures.
//!
//! Until this module existed the engine had exactly two failure modes:
//! panic (worker died, poisoning the whole campaign) or silence. A
//! multi-hour campaign deserves better — every fault-tolerant entry
//! point ([`Engine::try_run_streamed`](crate::Engine::try_run_streamed),
//! [`Engine::run_streamed_resumable`](crate::Engine::run_streamed_resumable))
//! reports through [`EngineError`] instead, so callers can retry, resume
//! from a checkpoint, or surface a precise diagnostic.

use std::error::Error;
use std::fmt;

use crate::resume::ResumeError;

/// Errors produced by the fault-tolerant campaign entry points.
///
/// The `Display` form is a single lower-case sentence per the Rust API
/// guidelines.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A worker panicked grading one chunk and the chunk kept panicking
    /// after every retry of its bounded budget.
    ///
    /// The engine contains worker panics: the panicked chunk's partial
    /// fold is discarded, the worker's scratch state is rebuilt, and the
    /// chunk is requeued — only when the *same chunk* exhausts its retry
    /// budget does the campaign stop, and then with this structured
    /// error rather than a propagated panic.
    WorkerPanic {
        /// Queue index of the chunk that kept panicking.
        chunk: usize,
        /// Total grading attempts the chunk received (1 + retries).
        attempts: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Loading or validating a campaign checkpoint failed.
    Resume(ResumeError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanic { chunk, attempts, message } => write!(
                f,
                "worker panicked grading chunk {chunk} on all {attempts} attempts: {message}"
            ),
            EngineError::Resume(e) => e.fmt(f),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Resume(e) => Some(e),
            EngineError::WorkerPanic { .. } => None,
        }
    }
}

impl From<ResumeError> for EngineError {
    fn from(e: ResumeError) -> Self {
        EngineError::Resume(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_carries_the_chunk() {
        let e = EngineError::WorkerPanic { chunk: 17, attempts: 3, message: "boom".into() };
        let text = e.to_string();
        assert!(text.contains("chunk 17"), "{text}");
        assert!(text.contains("3 attempts"), "{text}");
        assert!(text.contains("boom"), "{text}");
    }

    #[test]
    fn resume_errors_pass_through() {
        let e = EngineError::from(ResumeError::Corrupt { line: 4, msg: "bad cursor".into() });
        assert!(e.to_string().contains("line 4"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<EngineError>();
    }
}
