//! A home-grown chunk-queue thread pool on `std::thread::scope`.
//!
//! Work items are indices `0..items` pulled from a shared atomic counter,
//! so fast workers naturally steal the load of slow ones (long-tail
//! injection cycles cost more than late ones). Each worker owns private
//! scratch state created by `init` — for fault grading, a `SimState` —
//! and every item's result is tagged with its index, so the caller can
//! merge results **deterministically** regardless of which worker graded
//! what and in which order.
//!
//! The folded entry points additionally provide the robustness layer the
//! resumable campaign path builds on:
//!
//! - **Worker-panic containment.** Each item runs under
//!   [`std::panic::catch_unwind`] with a *chunk-local* accumulator that
//!   is merged into the worker's accumulator only on success, so a
//!   panicked chunk never leaks a partial fold. The panicked chunk is
//!   requeued (the worker's scratch is rebuilt first — a panic may have
//!   left it mid-update) up to a bounded retry budget; a chunk that
//!   panics on every attempt surfaces as
//!   [`EngineError::WorkerPanic`] instead of poisoning the campaign.
//! - **Cooperative cancellation.** A [`CancelToken`] is polled at chunk
//!   boundaries only: on cancellation every worker finishes the chunk it
//!   already claimed (and any requeued retries) before stopping, which
//!   keeps the set of completed chunks an exact prefix `0..completed` of
//!   the queue — the invariant that makes a checkpoint cursor
//!   meaningful at any thread count.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cancel::CancelToken;
use crate::error::EngineError;

/// Default number of times a panicked chunk is requeued before the
/// campaign gives up on it (total attempts = budget + 1).
pub(crate) const DEFAULT_RETRY_BUDGET: usize = 2;

/// Knobs of a fault-tolerant folded run.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FoldControl<'a> {
    /// Polled at chunk boundaries; `None` never cancels.
    pub cancel: Option<&'a CancelToken>,
    /// Requeues per panicking chunk before [`EngineError::WorkerPanic`].
    pub retry_budget: usize,
}

impl Default for FoldControl<'_> {
    fn default() -> Self {
        FoldControl { cancel: None, retry_budget: DEFAULT_RETRY_BUDGET }
    }
}

/// Result of a cancellable folded run.
#[derive(Debug)]
pub(crate) struct FoldStatus<A> {
    /// Per-worker accumulators, in worker-index order.
    pub accs: Vec<A>,
    /// Chunks completed — always the exact prefix `0..completed` of the
    /// queue (equals `items` unless the run was cancelled).
    pub completed: usize,
}

/// Renders a caught panic payload (`&str` / `String` payloads; anything
/// else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `work` over every index in `0..items` on up to `threads` workers
/// and returns the results in index order.
///
/// `init` creates one private scratch state per worker; `work` maps
/// `(scratch, index)` to that item's result. With `threads == 1` (or a
/// single item) everything runs inline on the calling thread — the
/// reference schedule the multi-threaded runs are compared against.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker panics.
pub(crate) fn run_indexed<S, T, I, W>(items: usize, threads: usize, init: I, work: W) -> Vec<T>
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    assert!(threads > 0, "the pool needs at least one thread");
    if items == 0 {
        return Vec::new();
    }
    let threads = threads.min(items);
    if threads == 1 {
        let mut scratch = init();
        return (0..items).map(|i| work(&mut scratch, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        done.push((i, work(&mut scratch, i)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });

    // Deterministic merge: scatter by index, then unwrap in order.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(items);
    slots.resize_with(items, || None);
    for batch in per_worker {
        for (i, t) in batch {
            debug_assert!(slots[i].is_none(), "item {i} graded twice");
            slots[i] = Some(t);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item claimed exactly once"))
        .collect()
}

/// Runs `work` over every index in `0..items` on up to `threads` workers,
/// folding each item into a per-worker accumulator instead of collecting
/// per-item results — the memory shape of the streaming campaign path.
///
/// Returns the worker accumulators in worker-index order (a single
/// accumulator when everything ran inline). The caller merges them;
/// because workers race for items, only **order-insensitive**
/// accumulators produce schedule-independent results. Worker panics are
/// contained and retried under the default budget (see the module docs).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub(crate) fn run_folded<S, A, I, F, M, W>(
    items: usize,
    threads: usize,
    init: I,
    init_acc: F,
    merge: M,
    work: W,
) -> Result<Vec<A>, EngineError>
where
    A: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn() -> A + Sync,
    M: Fn(&mut A, A) + Sync,
    W: Fn(&mut S, &mut A, usize) + Sync,
{
    run_folded_ctl(items, threads, init, init_acc, merge, work, &FoldControl::default())
        .map(|s| s.accs)
}

/// [`run_folded`] with explicit cancellation and retry control; reports
/// how many chunks actually completed (an exact queue prefix).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub(crate) fn run_folded_ctl<S, A, I, F, M, W>(
    items: usize,
    threads: usize,
    init: I,
    init_acc: F,
    merge: M,
    work: W,
    ctl: &FoldControl<'_>,
) -> Result<FoldStatus<A>, EngineError>
where
    A: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn() -> A + Sync,
    M: Fn(&mut A, A) + Sync,
    W: Fn(&mut S, &mut A, usize) + Sync,
{
    assert!(threads > 0, "the pool needs at least one thread");
    let threads = threads.min(items).max(1);
    let cancelled = || ctl.cancel.is_some_and(CancelToken::is_cancelled);

    if items == 0 || threads == 1 {
        // Inline reference schedule: immediate retries, cancellation
        // between chunks.
        let mut scratch = init();
        let mut acc = init_acc();
        let mut completed = 0usize;
        for i in 0..items {
            if cancelled() {
                break;
            }
            let mut attempts = 0usize;
            loop {
                attempts += 1;
                let run = catch_unwind(AssertUnwindSafe(|| {
                    let mut local = init_acc();
                    work(&mut scratch, &mut local, i);
                    local
                }));
                match run {
                    Ok(local) => {
                        merge(&mut acc, local);
                        completed += 1;
                        break;
                    }
                    Err(payload) => {
                        // The panic may have left the scratch mid-update.
                        scratch = init();
                        if attempts > ctl.retry_budget {
                            return Err(EngineError::WorkerPanic {
                                chunk: i,
                                attempts,
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
            }
        }
        return Ok(FoldStatus { accs: vec![acc], completed });
    }

    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let fatal_flag = AtomicBool::new(false);
    let fatal: Mutex<Option<EngineError>> = Mutex::new(None);
    // Requeued chunks plus their panic counts. Retries are drained with
    // priority — even after cancellation — so every *claimed* chunk
    // eventually completes and the completed set stays a queue prefix.
    let retries: Mutex<(Vec<usize>, HashMap<usize, usize>)> =
        Mutex::new((Vec::new(), HashMap::new()));

    let accs: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut acc = init_acc();
                    loop {
                        if fatal_flag.load(Ordering::SeqCst) {
                            break;
                        }
                        let requeued =
                            retries.lock().expect("retry queue lock").0.pop();
                        let item = match requeued {
                            Some(i) => i,
                            None => {
                                if cancelled() {
                                    break;
                                }
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= items {
                                    break;
                                }
                                i
                            }
                        };
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            let mut local = init_acc();
                            work(&mut scratch, &mut local, item);
                            local
                        }));
                        match run {
                            Ok(local) => {
                                merge(&mut acc, local);
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(payload) => {
                                scratch = init();
                                let mut r = retries.lock().expect("retry queue lock");
                                let attempts = r.1.entry(item).or_insert(0);
                                *attempts += 1;
                                if *attempts > ctl.retry_budget {
                                    *fatal.lock().expect("fatal lock") =
                                        Some(EngineError::WorkerPanic {
                                            chunk: item,
                                            attempts: *attempts,
                                            message: panic_message(payload.as_ref()),
                                        });
                                    fatal_flag.store(true, Ordering::SeqCst);
                                } else {
                                    r.0.push(item);
                                }
                            }
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked outside the contained region"))
            .collect()
    });

    if let Some(err) = fatal.into_inner().expect("fatal lock") {
        return Err(err);
    }
    Ok(FoldStatus { accs, completed: completed.into_inner() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_folded(
        items: usize,
        threads: usize,
        ctl: &FoldControl<'_>,
        work: impl Fn(usize) + Sync,
    ) -> Result<FoldStatus<Vec<usize>>, EngineError> {
        run_folded_ctl(
            items,
            threads,
            || (),
            Vec::new,
            |a: &mut Vec<usize>, b| a.extend(b),
            |(), acc: &mut Vec<usize>, i| {
                work(i);
                acc.push(i);
            },
            ctl,
        )
    }

    #[test]
    fn folded_accumulators_cover_every_item_once() {
        for threads in [1, 2, 4, 8] {
            let accs = run_folded(
                100,
                threads,
                || (),
                Vec::new,
                |a: &mut Vec<usize>, b| a.extend(b),
                |(), acc: &mut Vec<usize>, i| acc.push(i),
            )
            .unwrap();
            assert!(accs.len() <= threads);
            let mut all: Vec<usize> = accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn folded_empty_queue_yields_one_empty_accumulator() {
        let accs = run_folded(
            0,
            4,
            || (),
            || 0usize,
            |a, b| *a += b,
            |(), acc, _| *acc += 1,
        )
        .unwrap();
        assert_eq!(accs, vec![0]);
    }

    #[test]
    fn panicking_chunk_is_retried_and_contained() {
        // Item 7 panics on its first attempt at every thread count; the
        // retry must re-run it so the fold still covers the queue exactly
        // once, with no partial observation from the failed attempt.
        for threads in [1, 2, 4] {
            let first_attempt = AtomicBool::new(true);
            let status = collect_folded(20, threads, &FoldControl::default(), |i| {
                if i == 7 && first_attempt.swap(false, Ordering::SeqCst) {
                    panic!("injected chunk failure");
                }
            })
            .unwrap();
            assert_eq!(status.completed, 20, "{threads} threads");
            let mut all: Vec<usize> = status.accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..20).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn exhausted_retry_budget_surfaces_worker_panic() {
        for threads in [1, 3] {
            let err = collect_folded(10, threads, &FoldControl::default(), |i| {
                assert!(i != 3, "always-fatal chunk");
            })
            .unwrap_err();
            match err {
                EngineError::WorkerPanic { chunk, attempts, .. } => {
                    assert_eq!(chunk, 3, "{threads} threads");
                    assert_eq!(attempts, DEFAULT_RETRY_BUDGET + 1, "{threads} threads");
                }
                other => panic!("expected WorkerPanic, got {other}"),
            }
        }
    }

    #[test]
    fn cancellation_completes_an_exact_prefix() {
        for threads in [1, 2, 4] {
            let token = CancelToken::new();
            let ctl = FoldControl { cancel: Some(&token), retry_budget: 0 };
            let status = collect_folded(200, threads, &ctl, |i| {
                if i == 10 {
                    token.cancel();
                }
            })
            .unwrap();
            assert!(status.completed >= 11, "{threads} threads: in-flight chunks drain");
            assert!(status.completed < 200, "{threads} threads: cancellation stops the queue");
            let mut all: Vec<usize> = status.accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..status.completed).collect::<Vec<_>>(),
                "{threads} threads: completed chunks form the exact queue prefix"
            );
        }
    }

    #[test]
    fn pre_cancelled_run_completes_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let ctl = FoldControl { cancel: Some(&token), retry_budget: 0 };
        let status = collect_folded(50, 4, &ctl, |_| {}).unwrap();
        assert_eq!(status.completed, 0);
        assert!(status.accs.into_iter().all(|a| a.is_empty()));
    }

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_indexed(100, threads, || (), |(), i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn empty_queue_is_fine() {
        let out: Vec<usize> = run_indexed(0, 4, || (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn scratch_state_is_per_worker() {
        // Each worker counts the items it grades; totals must cover the
        // queue exactly once whatever the interleaving.
        let out = run_indexed(
            64,
            3,
            || 0usize,
            |count, i| {
                *count += 1;
                (i, *count)
            },
        );
        assert_eq!(out.len(), 64);
        let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_indexed(3, 16, || (), |(), i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_indexed(1, 0, || (), |(), i| i);
    }
}
