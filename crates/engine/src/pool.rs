//! A home-grown chunk-queue thread pool on `std::thread::scope`.
//!
//! Work items are indices `0..items` pulled from a shared atomic counter,
//! so fast workers naturally steal the load of slow ones (long-tail
//! injection cycles cost more than late ones). Each worker owns private
//! scratch state created by `init` — for fault grading, a `SimState` —
//! and every item's result is tagged with its index, so the caller can
//! merge results **deterministically** regardless of which worker graded
//! what and in which order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work` over every index in `0..items` on up to `threads` workers
/// and returns the results in index order.
///
/// `init` creates one private scratch state per worker; `work` maps
/// `(scratch, index)` to that item's result. With `threads == 1` (or a
/// single item) everything runs inline on the calling thread — the
/// reference schedule the multi-threaded runs are compared against.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker panics.
pub(crate) fn run_indexed<S, T, I, W>(items: usize, threads: usize, init: I, work: W) -> Vec<T>
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    assert!(threads > 0, "the pool needs at least one thread");
    if items == 0 {
        return Vec::new();
    }
    let threads = threads.min(items);
    if threads == 1 {
        let mut scratch = init();
        return (0..items).map(|i| work(&mut scratch, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        done.push((i, work(&mut scratch, i)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });

    // Deterministic merge: scatter by index, then unwrap in order.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(items);
    slots.resize_with(items, || None);
    for batch in per_worker {
        for (i, t) in batch {
            debug_assert!(slots[i].is_none(), "item {i} graded twice");
            slots[i] = Some(t);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item claimed exactly once"))
        .collect()
}

/// Runs `work` over every index in `0..items` on up to `threads` workers,
/// folding each item into a per-worker accumulator instead of collecting
/// per-item results — the memory shape of the streaming campaign path.
///
/// Returns the worker accumulators in worker-index order (a single
/// accumulator when everything ran inline). The caller merges them;
/// because workers race for items, only **order-insensitive**
/// accumulators produce schedule-independent results.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker panics.
pub(crate) fn run_folded<S, A, I, F, W>(
    items: usize,
    threads: usize,
    init: I,
    init_acc: F,
    work: W,
) -> Vec<A>
where
    A: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn() -> A + Sync,
    W: Fn(&mut S, &mut A, usize) + Sync,
{
    assert!(threads > 0, "the pool needs at least one thread");
    let threads = threads.min(items).max(1);
    if items == 0 || threads == 1 {
        let mut scratch = init();
        let mut acc = init_acc();
        for i in 0..items {
            work(&mut scratch, &mut acc, i);
        }
        return vec![acc];
    }

    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut acc = init_acc();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        work(&mut scratch, &mut acc, i);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_accumulators_cover_every_item_once() {
        for threads in [1, 2, 4, 8] {
            let accs = run_folded(
                100,
                threads,
                || (),
                Vec::new,
                |(), acc: &mut Vec<usize>, i| acc.push(i),
            );
            assert!(accs.len() <= threads);
            let mut all: Vec<usize> = accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn folded_empty_queue_yields_one_empty_accumulator() {
        let accs = run_folded(0, 4, || (), || 0usize, |(), acc, _| *acc += 1);
        assert_eq!(accs, vec![0]);
    }

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_indexed(100, threads, || (), |(), i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn empty_queue_is_fine() {
        let out: Vec<usize> = run_indexed(0, 4, || (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn scratch_state_is_per_worker() {
        // Each worker counts the items it grades; totals must cover the
        // queue exactly once whatever the interleaving.
        let out = run_indexed(
            64,
            3,
            || 0usize,
            |count, i| {
                *count += 1;
                (i, *count)
            },
        );
        assert_eq!(out.len(), 64);
        let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_indexed(3, 16, || (), |(), i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_indexed(1, 0, || (), |(), i| i);
    }
}
