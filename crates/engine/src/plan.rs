//! Campaign plans: what to grade, how to shard it.

use std::fmt;

use seugrade_faultsim::{Collapse, FaultList, MultiFault, DEFAULT_WINDOW_CACHE_SPANS};
use seugrade_netlist::Netlist;
use seugrade_sim::{Kernel, Testbench, TracePolicy};

/// The three autonomous fault-injection techniques of the paper.
///
/// The enum lives in the engine crate because campaign plans are
/// technique-aware; `seugrade-emulation` re-exports it from its historical
/// home (`campaign::Technique`), so both paths name the same type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Mask flip-flop per circuit flip-flop; full test-bench replay per
    /// fault.
    MaskScan,
    /// Shadow scan chain inserting precomputed faulty states.
    StateScan,
    /// Figure-1 instruments; golden/faulty time multiplexing with
    /// checkpointing and early classification.
    TimeMux,
}

impl Technique {
    /// All techniques in the paper's presentation order.
    pub const ALL: [Technique; 3] =
        [Technique::MaskScan, Technique::StateScan, Technique::TimeMux];

    /// Table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Technique::MaskScan => "Mask Scan",
            Technique::StateScan => "State Scan",
            Technique::TimeMux => "Time Multiplex.",
        }
    }

    /// Grading classes the technique can natively distinguish in
    /// hardware: mask-scan sees only failure/no-failure (1 result bit in
    /// Table 1), the others all three.
    #[must_use]
    pub fn native_classes(self) -> usize {
        match self {
            Technique::MaskScan => 2,
            _ => 3,
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a campaign's faults come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSource {
    /// The complete `flip-flops × cycles` single-fault list (the paper's
    /// 34,400 for b14/160).
    Exhaustive,
    /// A deterministic uniform sample of the exhaustive list.
    Sampled {
        /// Number of faults to draw.
        count: usize,
        /// Sampling seed (same seed ⇒ same faults, any thread count).
        seed: u64,
    },
    /// An explicit fault list supplied by the caller.
    List(FaultList),
    /// Multi-bit upsets (each fault flips several flip-flops at once).
    Multi(Vec<MultiFault>),
}

/// How a fault list is split across worker threads.
///
/// Shards are 64-lane batches of faults sharing an injection cycle,
/// pulled from a shared chunk queue by each worker; the policy only
/// controls how many workers pull and when sharding is worth it at all.
/// Outcomes never depend on the policy — the engine merges per-shard
/// results back into submission order, so every thread count produces
/// bit-identical verdicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Worker threads; `0` means "use all available parallelism".
    pub threads: usize,
    /// Campaigns smaller than this run on the calling thread (spawning
    /// workers costs more than it saves on tiny fault lists).
    pub serial_below: usize,
}

impl ShardPolicy {
    /// All available parallelism, serial fallback for small campaigns.
    #[must_use]
    pub fn auto() -> Self {
        ShardPolicy { threads: 0, serial_below: 256 }
    }

    /// Single-threaded execution (the deterministic reference schedule).
    #[must_use]
    pub fn serial() -> Self {
        ShardPolicy { threads: 1, serial_below: 0 }
    }

    /// Exactly `threads` workers, sharding even the smallest campaigns
    /// (used by the agreement tests to exercise the queue).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "a shard policy needs at least one thread");
        ShardPolicy { threads, serial_below: 0 }
    }

    /// The concrete worker count this policy resolves to.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        }
    }
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self::auto()
    }
}

/// A fully-specified campaign: circuit × test bench × fault source ×
/// techniques × shard policy.
///
/// Built with [`CampaignPlan::builder`]; executed by an
/// [`Engine`](crate::Engine) (or the [`execute`](Self::execute)
/// convenience).
#[derive(Clone, Debug)]
pub struct CampaignPlan<'a> {
    circuit: &'a Netlist,
    tb: &'a Testbench,
    source: FaultSource,
    techniques: Vec<Technique>,
    policy: ShardPolicy,
    trace_policy: TracePolicy,
    collapse: Collapse,
    window_cache: usize,
    kernel: Kernel,
}

impl<'a> CampaignPlan<'a> {
    /// Starts a plan for one circuit / test-bench pair.
    ///
    /// Defaults: exhaustive fault list, all three techniques,
    /// [`ShardPolicy::auto`], [`TracePolicy::Dense`],
    /// [`Collapse::Early`], a
    /// [`DEFAULT_WINDOW_CACHE_SPANS`]-span window cache per worker,
    /// [`Kernel::Auto`].
    #[must_use]
    pub fn builder(circuit: &'a Netlist, tb: &'a Testbench) -> CampaignPlanBuilder<'a> {
        CampaignPlanBuilder {
            circuit,
            tb,
            source: FaultSource::Exhaustive,
            techniques: Technique::ALL.to_vec(),
            policy: ShardPolicy::auto(),
            trace_policy: TracePolicy::Dense,
            collapse: Collapse::Early,
            window_cache: DEFAULT_WINDOW_CACHE_SPANS,
            kernel: Kernel::Auto,
        }
    }

    /// The circuit under test.
    #[must_use]
    pub fn circuit(&self) -> &'a Netlist {
        self.circuit
    }

    /// The test bench driving the campaign.
    #[must_use]
    pub fn testbench(&self) -> &'a Testbench {
        self.tb
    }

    /// The fault source.
    #[must_use]
    pub fn source(&self) -> &FaultSource {
        &self.source
    }

    /// The techniques this campaign targets (informational; grading
    /// verdicts are technique-independent).
    #[must_use]
    pub fn techniques(&self) -> &[Technique] {
        &self.techniques
    }

    /// The shard policy.
    #[must_use]
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// The golden-trace storage policy an engine built for this plan
    /// grades under (verdicts are policy-independent; memory and replay
    /// cost are not).
    #[must_use]
    pub fn trace_policy(&self) -> TracePolicy {
        self.trace_policy
    }

    /// The early-collapse mode grading runs under (verdicts are
    /// collapse-independent; the work done is not).
    #[must_use]
    pub fn collapse(&self) -> Collapse {
        self.collapse
    }

    /// Per-worker window-cache capacity in spans (0 disables caching).
    /// Affects replay cost only, never verdicts — which is also why it
    /// is excluded from resume fingerprints: a campaign checkpointed
    /// under one cache size (or collapse mode) can resume under another.
    #[must_use]
    pub fn window_cache(&self) -> usize {
        self.window_cache
    }

    /// The faulty-evaluation [`Kernel`] workers grade with. A pure speed
    /// knob: every kernel produces bit-identical verdicts (the
    /// equivalence suites pin the digests), so — like the window cache —
    /// it is excluded from resume fingerprints: a campaign checkpointed
    /// under one kernel can resume under another.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Builds an engine for this plan and runs it once.
    #[must_use]
    pub fn execute(&self) -> crate::CampaignRun {
        crate::Engine::new(self).run(self)
    }

    /// Builds an engine for this plan and runs it once through the
    /// memory-bounded streaming path (see
    /// [`Engine::run_streamed`](crate::Engine::run_streamed)).
    #[must_use]
    pub fn execute_streamed(&self) -> crate::StreamedRun {
        crate::Engine::new(self).run_streamed(self)
    }
}

/// Builder for [`CampaignPlan`].
#[derive(Clone, Debug)]
pub struct CampaignPlanBuilder<'a> {
    circuit: &'a Netlist,
    tb: &'a Testbench,
    source: FaultSource,
    techniques: Vec<Technique>,
    policy: ShardPolicy,
    trace_policy: TracePolicy,
    collapse: Collapse,
    window_cache: usize,
    kernel: Kernel,
}

impl<'a> CampaignPlanBuilder<'a> {
    /// Sets an arbitrary fault source.
    #[must_use]
    pub fn source(mut self, source: FaultSource) -> Self {
        self.source = source;
        self
    }

    /// Grades a deterministic uniform sample of `count` faults.
    #[must_use]
    pub fn sampled(self, count: usize, seed: u64) -> Self {
        self.source(FaultSource::Sampled { count, seed })
    }

    /// Grades an explicit fault list.
    #[must_use]
    pub fn faults(self, list: FaultList) -> Self {
        self.source(FaultSource::List(list))
    }

    /// Grades multi-bit upsets.
    #[must_use]
    pub fn multi(self, faults: Vec<MultiFault>) -> Self {
        self.source(FaultSource::Multi(faults))
    }

    /// Restricts the campaign to the given techniques.
    ///
    /// # Panics
    ///
    /// Panics if `techniques` is empty.
    #[must_use]
    pub fn techniques(mut self, techniques: &[Technique]) -> Self {
        assert!(!techniques.is_empty(), "a campaign needs at least one technique");
        self.techniques = techniques.to_vec();
        self
    }

    /// Sets the shard policy.
    #[must_use]
    pub fn policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for [`ShardPolicy::with_threads`].
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.policy(ShardPolicy::with_threads(threads))
    }

    /// Sets the golden-trace storage policy
    /// ([`TracePolicy::Checkpoint`] bounds golden memory at
    /// `O(FFs × cycles / K)`; verdicts never change).
    ///
    /// # Panics
    ///
    /// Panics if the policy is `Checkpoint(0)`.
    #[must_use]
    pub fn trace_policy(mut self, policy: TracePolicy) -> Self {
        assert!(
            !matches!(policy, TracePolicy::Checkpoint(0)),
            "checkpoint interval must be at least 1"
        );
        self.trace_policy = policy;
        self
    }

    /// Sets the [`Collapse`] mode ([`Collapse::Horizon`] disables early
    /// fault collapse — useful only as a benchmark baseline; verdicts
    /// never change).
    #[must_use]
    pub fn collapse(mut self, collapse: Collapse) -> Self {
        self.collapse = collapse;
        self
    }

    /// Sets the per-worker window-cache capacity in replayed spans
    /// (0 disables caching; verdicts never change).
    #[must_use]
    pub fn window_cache(mut self, spans: usize) -> Self {
        self.window_cache = spans;
        self
    }

    /// Sets the faulty-evaluation [`Kernel`] ([`Kernel::Auto`] lets the
    /// grader pick; verdicts never change).
    #[must_use]
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Finalizes the plan.
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the circuit's
    /// inputs.
    #[must_use]
    pub fn build(self) -> CampaignPlan<'a> {
        assert_eq!(
            self.tb.num_inputs(),
            self.circuit.num_inputs(),
            "test bench width does not match circuit"
        );
        CampaignPlan {
            circuit: self.circuit,
            tb: self.tb,
            source: self.source,
            techniques: self.techniques,
            policy: self.policy,
            trace_policy: self.trace_policy,
            collapse: self.collapse,
            window_cache: self.window_cache,
            kernel: self.kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;

    use super::*;

    #[test]
    fn builder_defaults() {
        let circuit = generators::counter(3);
        let tb = Testbench::constant_low(0, 8);
        let plan = CampaignPlan::builder(&circuit, &tb).build();
        assert_eq!(plan.source(), &FaultSource::Exhaustive);
        assert_eq!(plan.techniques(), &Technique::ALL);
        assert_eq!(plan.policy(), &ShardPolicy::auto());
        assert_eq!(plan.collapse(), Collapse::Early);
        assert_eq!(plan.window_cache(), DEFAULT_WINDOW_CACHE_SPANS);
        assert_eq!(plan.kernel(), Kernel::Auto);
    }

    #[test]
    fn builder_overrides() {
        let circuit = generators::counter(3);
        let tb = Testbench::constant_low(0, 8);
        let plan = CampaignPlan::builder(&circuit, &tb)
            .sampled(10, 7)
            .techniques(&[Technique::TimeMux])
            .threads(2)
            .collapse(Collapse::Horizon)
            .window_cache(0)
            .kernel(Kernel::Tape)
            .build();
        assert_eq!(plan.source(), &FaultSource::Sampled { count: 10, seed: 7 });
        assert_eq!(plan.techniques(), &[Technique::TimeMux]);
        assert_eq!(plan.collapse(), Collapse::Horizon);
        assert_eq!(plan.window_cache(), 0);
        assert_eq!(plan.kernel(), Kernel::Tape);
        assert_eq!(plan.policy().threads, 2);
        assert_eq!(plan.policy().serial_below, 0);
    }

    #[test]
    fn policy_resolution() {
        assert_eq!(ShardPolicy::with_threads(3).resolved_threads(), 3);
        assert!(ShardPolicy::auto().resolved_threads() >= 1);
        assert_eq!(ShardPolicy::serial().resolved_threads(), 1);
    }

    #[test]
    fn technique_labels_and_classes() {
        assert_eq!(Technique::MaskScan.label(), "Mask Scan");
        assert_eq!(Technique::TimeMux.to_string(), "Time Multiplex.");
        assert_eq!(Technique::MaskScan.native_classes(), 2);
        assert_eq!(Technique::StateScan.native_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match circuit")]
    fn mismatched_bench_rejected() {
        let circuit = generators::shift_register(4); // 1 input
        let tb = Testbench::constant_low(3, 8);
        let _ = CampaignPlan::builder(&circuit, &tb).build();
    }
}
