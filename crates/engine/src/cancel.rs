//! Cooperative campaign cancellation.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag checked by the engine at chunk boundaries.
///
/// Cancellation is **cooperative**: calling [`cancel`](Self::cancel)
/// never interrupts a worker mid-chunk. Each worker finishes the chunk
/// it already claimed (draining the in-flight work keeps the set of
/// completed chunks an exact prefix of the queue), then stops claiming
/// new ones. The resumable campaign path
/// ([`Engine::run_streamed_resumable`](crate::Engine::run_streamed_resumable))
/// writes a final checkpoint after the drain, so a cancelled multi-hour
/// run loses at most the chunks that were in flight.
///
/// Tokens are cheap to clone (an `Arc<AtomicBool>`); clones observe the
/// same flag. A typical CLI wires a SIGINT/SIGTERM handler to a clone
/// while the engine polls another.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`cancel`](Self::cancel) has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl fmt::Display for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_cancelled() { "cancelled" } else { "running" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
        assert_eq!(a.to_string(), "cancelled");
    }

    #[test]
    fn token_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CancelToken>();
    }
}
