//! Streaming campaign primitives: cycle-major chunk plans and online
//! verdict accumulation.
//!
//! The paper's emulator never materializes a campaign — faults are
//! enumerated cycle-major on the fly and classified results are dropped
//! as soon as they are tallied. This module is the software analogue:
//!
//! - `ChunkPlan` (crate-internal) turns any single-fault
//!   [`FaultSource`](crate::FaultSource) into a sequence of same-cycle
//!   ≤ 64-lane chunks. For the exhaustive source the chunks are
//!   *computed arithmetically* — no `flip-flops × cycles` fault vector
//!   ever exists; workers regenerate their chunk from its index.
//! - [`VerdictSink`] is the online accumulator contract: each worker
//!   folds `(fault, outcome)` pairs into a private sink, and the
//!   per-worker sinks are merged after the join. Sinks must be
//!   **order-insensitive** (commutative observes/merges), which is what
//!   keeps every thread count bit-identical to the serial reference —
//!   a property the agreement suites enforce.
//! - [`StreamAccumulator`] is the standard sink: class tallies, the
//!   per-flip-flop failure map, and an order-independent verdict
//!   [digest](StreamAccumulator::digest) that lets two streamed runs
//!   (or a streamed and a materialized run) be compared fault-for-fault
//!   without either of them storing a single outcome.

use seugrade_faultsim::{Fault, FaultClass, FaultOutcome, GradingSummary};
use seugrade_netlist::FfIndex;

/// A single-fault campaign cut into same-cycle chunks of at most 64
/// faults, in cycle-major order.
///
/// The chunk sequence is the unit the pool's workers pull lazily; a
/// worker holds one chunk (≤ 64 faults) and its grading scratch at a
/// time, so campaign memory is independent of the fault-space size on
/// the exhaustive path.
#[derive(Debug)]
pub(crate) enum ChunkPlan<'a> {
    /// The full `flip-flops × cycles` space; chunk `i` is derived from
    /// its index alone.
    Exhaustive {
        /// Flip-flop dimension.
        num_ffs: usize,
        /// Fault lanes per chunk (64 dense, 63 checkpointed — the
        /// grader's golden companion machine reserves lane 63).
        lanes: usize,
        /// Chunks per cycle: `ceil(num_ffs / lanes)`.
        per_cycle: usize,
        /// Total chunks: `per_cycle × num_cycles`.
        chunks: usize,
        /// Total faults.
        faults: usize,
    },
    /// An explicit list, counting-sorted into same-cycle runs; `order`
    /// maps sorted position → submission index.
    Ordered {
        /// The faults, in submission order.
        faults: &'a [Fault],
        /// Cycle-major permutation of `0..faults.len()`.
        order: Vec<u32>,
        /// `(lo, hi)` ranges into `order`, one per chunk.
        batches: Vec<(usize, usize)>,
    },
}

impl<'a> ChunkPlan<'a> {
    /// Plans the exhaustive `num_ffs × num_cycles` space without
    /// materializing it, cutting each cycle into chunks of at most
    /// `lanes` faults.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds the 64-lane word width.
    pub(crate) fn exhaustive(num_ffs: usize, num_cycles: usize, lanes: usize) -> Self {
        assert!(lanes >= 1 && lanes <= 64, "chunk lanes out of range");
        let per_cycle = num_ffs.div_ceil(lanes);
        ChunkPlan::Exhaustive {
            num_ffs,
            lanes,
            per_cycle,
            chunks: per_cycle * num_cycles,
            faults: num_ffs * num_cycles,
        }
    }

    /// Plans an explicit fault list (stable counting sort by injection
    /// cycle, then runs cut at `lanes`).
    ///
    /// # Panics
    ///
    /// Panics if a fault's cycle is `>= num_cycles`, or if `lanes` is 0
    /// or exceeds the 64-lane word width.
    pub(crate) fn ordered(faults: &'a [Fault], num_cycles: usize, lanes: usize) -> Self {
        assert!(lanes >= 1 && lanes <= 64, "chunk lanes out of range");
        let mut counts = vec![0usize; num_cycles];
        for f in faults {
            assert!((f.cycle as usize) < num_cycles, "fault cycle out of range");
            counts[f.cycle as usize] += 1;
        }
        let mut offsets = vec![0usize; num_cycles + 1];
        for c in 0..num_cycles {
            offsets[c + 1] = offsets[c] + counts[c];
        }
        let mut cursor = offsets.clone();
        let mut order = vec![0u32; faults.len()];
        for (i, f) in faults.iter().enumerate() {
            let c = f.cycle as usize;
            order[cursor[c]] = i as u32;
            cursor[c] += 1;
        }
        let mut batches: Vec<(usize, usize)> = Vec::new();
        for c in 0..num_cycles {
            let (mut start, end) = (offsets[c], offsets[c + 1]);
            while start < end {
                let stop = (start + lanes).min(end);
                batches.push((start, stop));
                start = stop;
            }
        }
        ChunkPlan::Ordered { faults, order, batches }
    }

    /// Number of chunks.
    pub(crate) fn num_chunks(&self) -> usize {
        match self {
            ChunkPlan::Exhaustive { chunks, .. } => *chunks,
            ChunkPlan::Ordered { batches, .. } => batches.len(),
        }
    }

    /// Total faults across all chunks.
    pub(crate) fn num_faults(&self) -> usize {
        match self {
            ChunkPlan::Exhaustive { faults, .. } => *faults,
            ChunkPlan::Ordered { faults, .. } => faults.len(),
        }
    }

    /// Faults covered by the chunks before `chunk` — the fault-space
    /// position of a resume cursor. Pure arithmetic on the exhaustive
    /// plan; a prefix-sum lookup on ordered plans (batches partition the
    /// sorted list contiguously).
    pub(crate) fn faults_before(&self, chunk: usize) -> usize {
        match self {
            ChunkPlan::Exhaustive { num_ffs, lanes, per_cycle, chunks, faults } => {
                if chunk >= *chunks {
                    return *faults;
                }
                // Within a cycle, chunk j starts at flip-flop j*lanes,
                // and j*lanes < num_ffs for every in-cycle index.
                (chunk / per_cycle) * num_ffs + (chunk % per_cycle) * lanes
            }
            ChunkPlan::Ordered { faults, batches, .. } => {
                if chunk == 0 {
                    0
                } else if chunk >= batches.len() {
                    faults.len()
                } else {
                    batches[chunk - 1].1
                }
            }
        }
    }

    /// Writes chunk `i`'s faults (all sharing one injection cycle) into
    /// `buf`.
    pub(crate) fn fill(&self, i: usize, buf: &mut Vec<Fault>) {
        buf.clear();
        match self {
            ChunkPlan::Exhaustive { num_ffs, lanes, per_cycle, .. } => {
                let cycle = (i / per_cycle) as u32;
                let lo = (i % per_cycle) * lanes;
                let hi = (lo + lanes).min(*num_ffs);
                buf.extend((lo..hi).map(|ff| Fault::new(FfIndex::new(ff), cycle)));
            }
            ChunkPlan::Ordered { faults, order, batches } => {
                let (lo, hi) = batches[i];
                buf.extend(order[lo..hi].iter().map(|&fi| faults[fi as usize]));
            }
        }
    }

    /// Scatters chunk `i`'s verdicts back into submission order.
    pub(crate) fn scatter(&self, i: usize, out: &[FaultOutcome], dest: &mut [FaultOutcome]) {
        match self {
            ChunkPlan::Exhaustive { num_ffs, lanes, per_cycle, .. } => {
                // Exhaustive submission order *is* cycle-major, so the
                // chunk lands contiguously.
                let cycle = i / per_cycle;
                let start = cycle * num_ffs + (i % per_cycle) * lanes;
                dest[start..start + out.len()].copy_from_slice(out);
            }
            ChunkPlan::Ordered { order, batches, .. } => {
                let (lo, hi) = batches[i];
                for (&fi, &o) in order[lo..hi].iter().zip(out) {
                    dest[fi as usize] = o;
                }
            }
        }
    }
}

/// An online accumulator of streamed verdicts.
///
/// One sink is created per worker ([`Default`]); the pool folds every
/// graded `(fault, outcome)` pair into the worker's private sink and
/// merges the sinks after the join, in worker order. Because workers
/// race for chunks, `observe`/`merge` **must be order-insensitive**
/// (commutative tallies, sums, maxima, …) — that is what makes a
/// streamed campaign bit-identical at every thread count. The agreement
/// suites enforce the property against the serial reference.
pub trait VerdictSink: Default + Send {
    /// Folds one graded fault into the sink.
    fn observe(&mut self, fault: Fault, outcome: FaultOutcome);

    /// Absorbs another worker's sink.
    fn merge(&mut self, other: Self);
}

/// The standard streaming sink: class tallies, a per-flip-flop failure
/// map, and an order-independent verdict digest.
#[derive(Clone, Debug, Default)]
pub struct StreamAccumulator {
    summary: GradingSummary,
    failure_map: Vec<usize>,
    digest: u64,
}

/// One fault's contribution to the order-independent digest: a
/// SplitMix64-style finalizer over the packed `(fault, outcome)`,
/// combined across faults with wrapping addition (commutative), so the
/// digest is a fault-for-fault fingerprint of the whole verdict set.
fn verdict_hash(fault: Fault, outcome: FaultOutcome) -> u64 {
    let tag = |c: Option<u32>| c.map_or(u64::MAX, u64::from);
    let mut z = ((fault.ff.index() as u64) << 32) | u64::from(fault.cycle);
    z = z
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(match outcome.class {
            FaultClass::Failure => 1,
            FaultClass::Latent => 2,
            FaultClass::Silent => 3,
        })
        .wrapping_add(tag(outcome.detect_cycle).rotate_left(17))
        .wrapping_add(tag(outcome.converge_cycle).rotate_left(41));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StreamAccumulator {
    /// Reassembles an accumulator from persisted parts (the inverse of
    /// reading [`summary`](Self::summary), [`failure_map`](Self::failure_map)
    /// and [`digest`](Self::digest)); used when restoring a campaign
    /// checkpoint.
    pub(crate) fn from_parts(
        summary: GradingSummary,
        failure_map: Vec<usize>,
        digest: u64,
    ) -> Self {
        StreamAccumulator { summary, failure_map, digest }
    }

    /// Pooled classification tallies.
    #[must_use]
    pub fn summary(&self) -> &GradingSummary {
        &self.summary
    }

    /// Failure count per flip-flop index (the weak-area map); indices
    /// past the highest failing flip-flop may be absent.
    #[must_use]
    pub fn failure_map(&self) -> &[usize] {
        &self.failure_map
    }

    /// Order-independent fingerprint of every `(fault, verdict)` pair.
    ///
    /// Two campaigns over the same fault set produced this digest
    /// equally iff they agreed on (essentially) every single verdict —
    /// whatever their thread counts, chunk schedules or
    /// [`TracePolicy`](seugrade_sim::TracePolicy)s.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Computes the digest of a materialized `(faults, outcomes)` pair —
    /// the bridge for comparing a streamed run against a serial or
    /// materialized reference.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn digest_of(faults: &[Fault], outcomes: &[FaultOutcome]) -> u64 {
        assert_eq!(faults.len(), outcomes.len(), "outcomes parallel to faults");
        faults
            .iter()
            .zip(outcomes)
            .fold(0u64, |acc, (&f, &o)| acc.wrapping_add(verdict_hash(f, o)))
    }
}

impl VerdictSink for StreamAccumulator {
    fn observe(&mut self, fault: Fault, outcome: FaultOutcome) {
        self.summary.add(outcome.class);
        if outcome.class == FaultClass::Failure {
            let ff = fault.ff.index();
            if self.failure_map.len() <= ff {
                self.failure_map.resize(ff + 1, 0);
            }
            self.failure_map[ff] += 1;
        }
        self.digest = self.digest.wrapping_add(verdict_hash(fault, outcome));
    }

    fn merge(&mut self, other: Self) {
        self.summary.merge(&other.summary);
        if self.failure_map.len() < other.failure_map.len() {
            self.failure_map.resize(other.failure_map.len(), 0);
        }
        for (dst, src) in self.failure_map.iter_mut().zip(&other.failure_map) {
            *dst += src;
        }
        self.digest = self.digest.wrapping_add(other.digest);
    }
}

#[cfg(test)]
mod tests {
    use seugrade_faultsim::FaultList;

    use super::*;

    #[test]
    fn exhaustive_plan_covers_the_space_in_cycle_major_order() {
        let plan = ChunkPlan::exhaustive(70, 3, 64);
        assert_eq!(plan.num_chunks(), 2 * 3);
        assert_eq!(plan.num_faults(), 210);
        let mut buf = Vec::new();
        let mut all = Vec::new();
        for i in 0..plan.num_chunks() {
            plan.fill(i, &mut buf);
            assert!(buf.len() <= 64 && !buf.is_empty());
            let t = buf[0].cycle;
            assert!(buf.iter().all(|f| f.cycle == t), "same-cycle chunk");
            all.extend_from_slice(&buf);
        }
        let reference = FaultList::exhaustive(70, 3);
        assert_eq!(all, reference.as_slice());
    }

    #[test]
    fn narrower_lane_plans_cover_the_same_space() {
        // 63-lane (companion) plans must enumerate exactly the same
        // faults in the same cycle-major order, just in more chunks.
        for (ffs, cycles) in [(70, 3), (64, 4), (63, 2), (1, 5)] {
            let plan = ChunkPlan::exhaustive(ffs, cycles, 63);
            let mut buf = Vec::new();
            let mut all = Vec::new();
            for i in 0..plan.num_chunks() {
                plan.fill(i, &mut buf);
                assert!(buf.len() <= 63 && !buf.is_empty());
                all.extend_from_slice(&buf);
            }
            let reference = FaultList::exhaustive(ffs, cycles);
            assert_eq!(all, reference.as_slice(), "{ffs}x{cycles}");
        }
    }

    #[test]
    fn ordered_plan_matches_exhaustive_plan_on_the_same_list() {
        let list = FaultList::exhaustive(70, 3);
        let ordered = ChunkPlan::ordered(list.as_slice(), 3, 64);
        let arithmetic = ChunkPlan::exhaustive(70, 3, 64);
        assert_eq!(ordered.num_chunks(), arithmetic.num_chunks());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..ordered.num_chunks() {
            ordered.fill(i, &mut a);
            arithmetic.fill(i, &mut b);
            assert_eq!(a, b, "chunk {i}");
        }
    }

    #[test]
    fn faults_before_matches_walked_prefix_sums() {
        let list = FaultList::sampled(70, 9, 150, 3);
        let plans = [
            ChunkPlan::exhaustive(70, 3, 64),
            ChunkPlan::exhaustive(70, 3, 63),
            ChunkPlan::exhaustive(64, 4, 63),
            ChunkPlan::ordered(list.as_slice(), 9, 64),
            ChunkPlan::ordered(list.as_slice(), 9, 63),
        ];
        for plan in &plans {
            let mut buf = Vec::new();
            let mut walked = 0usize;
            for i in 0..plan.num_chunks() {
                assert_eq!(plan.faults_before(i), walked, "chunk {i}");
                plan.fill(i, &mut buf);
                walked += buf.len();
            }
            assert_eq!(plan.faults_before(plan.num_chunks()), plan.num_faults());
            assert_eq!(plan.faults_before(plan.num_chunks() + 10), plan.num_faults());
        }
    }

    #[test]
    fn scatter_inverts_fill() {
        let list = FaultList::sampled(10, 9, 40, 3);
        let plan = ChunkPlan::ordered(list.as_slice(), 9, 64);
        let mut buf = Vec::new();
        let mut dest = vec![FaultOutcome::latent(); list.len()];
        for i in 0..plan.num_chunks() {
            plan.fill(i, &mut buf);
            // Tag each verdict with its fault's cycle so the scatter is
            // checkable.
            let out: Vec<FaultOutcome> =
                buf.iter().map(|f| FaultOutcome::failure(f.cycle)).collect();
            plan.scatter(i, &out, &mut dest);
        }
        for (f, o) in list.iter().zip(&dest) {
            assert_eq!(o.detect_cycle, Some(f.cycle), "{f}");
        }
    }

    #[test]
    fn accumulator_is_order_insensitive() {
        let list = FaultList::exhaustive(5, 7);
        let outcomes: Vec<FaultOutcome> = list
            .iter()
            .enumerate()
            .map(|(i, _)| match i % 3 {
                0 => FaultOutcome::failure(i as u32 % 7),
                1 => FaultOutcome::silent(i as u32 % 7),
                _ => FaultOutcome::latent(),
            })
            .collect();
        let mut forward = StreamAccumulator::default();
        for (f, &o) in list.iter().zip(&outcomes) {
            forward.observe(f, o);
        }
        let pairs: Vec<(Fault, FaultOutcome)> =
            list.iter().zip(outcomes.iter().copied()).collect();
        let mut halves = (StreamAccumulator::default(), StreamAccumulator::default());
        for (i, &(f, o)) in pairs.iter().enumerate().rev() {
            if i % 2 == 0 {
                halves.0.observe(f, o);
            } else {
                halves.1.observe(f, o);
            }
        }
        let mut merged = StreamAccumulator::default();
        merged.merge(halves.1);
        merged.merge(halves.0);
        assert_eq!(merged.summary(), forward.summary());
        assert_eq!(merged.failure_map(), forward.failure_map());
        assert_eq!(merged.digest(), forward.digest());
        assert_eq!(
            merged.digest(),
            StreamAccumulator::digest_of(list.as_slice(), &outcomes)
        );
    }

    #[test]
    fn digest_distinguishes_single_verdict_flips() {
        let list = FaultList::exhaustive(4, 4);
        let a = vec![FaultOutcome::latent(); list.len()];
        let mut b = a.clone();
        b[7] = FaultOutcome::silent(2);
        assert_ne!(
            StreamAccumulator::digest_of(list.as_slice(), &a),
            StreamAccumulator::digest_of(list.as_slice(), &b)
        );
    }
}
