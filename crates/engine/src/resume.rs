//! Persistent campaign checkpoints: the `seugrade-campaign-ckpt/v1`
//! format, fingerprint verification, and the [`PersistentSink`] contract.
//!
//! A multi-hour exhaustive campaign dies to a single SIGINT unless its
//! progress survives the process. This module gives every streamed
//! campaign a durable cursor:
//!
//! - [`Checkpoint`] is a versioned, dependency-free **line-delimited**
//!   snapshot of a running campaign: the plan's [`Fingerprint`] (circuit
//!   digest, test-bench digest, fault source, trace policy, techniques,
//!   chunk space), a thread-count-independent chunk cursor, caller
//!   metadata, and the folded sink state. Files are written atomically
//!   (sibling temp file + `rename`) and end in a checksum trailer, so a
//!   truncated or bit-flipped file is detected on load — every load
//!   failure is a line-numbered [`ResumeError`], never a panic.
//! - [`Fingerprint`] pins a checkpoint to *one* campaign. Resuming
//!   against a different circuit, test bench, fault source, trace policy
//!   or technique set fails with a field-precise
//!   [`ResumeError::Mismatch`] instead of silently merging incompatible
//!   verdict sets.
//! - [`PersistentSink`] extends [`VerdictSink`] with save/restore —
//!   the folded accumulator itself is checkpointed, so a resume never
//!   re-grades a completed chunk.
//!
//! The cursor works because the pool completes chunks as an **exact
//! queue prefix** (cooperative cancellation drains claimed chunks — see
//! [`CancelToken`]), and chunk boundaries are pure
//! arithmetic on the cycle-major chunk plan — independent of thread
//! count. Interrupted-and-resumed campaigns therefore reproduce the
//! uninterrupted verdict digest bit-for-bit, at any thread count and
//! trace policy; `tests/resume_determinism.rs` enforces this.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use seugrade_faultsim::{Fault, FaultClass};
use seugrade_netlist::{CellKind, Netlist};
use seugrade_sim::{Testbench, TracePolicy};

use crate::cancel::CancelToken;
use crate::plan::{CampaignPlan, FaultSource, Technique};
use crate::progress::ProgressHook;
use crate::stream::{StreamAccumulator, VerdictSink};

/// First line of every checkpoint file; bump the suffix on breaking
/// format changes.
pub const CKPT_SCHEMA: &str = "seugrade-campaign-ckpt/v1";

/// Default chunk interval between checkpoint writes.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 256;

// --------------------------------------------------------------------
// Stable hashing (no `RandomState` — digests must survive processes).

/// FNV-1a 64 over explicit field encodings. Used for the circuit,
/// test-bench and file checksums; stability across runs and platforms is
/// the entire point, so `std::hash` (randomly seeded) is out.
#[derive(Clone, Copy, Debug)]
struct Hasher64(u64);

impl Hasher64 {
    fn new() -> Self {
        Hasher64(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 = (self.0 ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Length-prefixed, so `("ab","c")` and `("a","bc")` differ.
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Stable structural digest of a netlist: name, every cell's kind and
/// pins, input names, outputs, flip-flop power-on values. Two circuits
/// share a digest only if they are the same design — dimensions alone
/// (which collide between e.g. a counter and an LFSR) are not trusted.
fn circuit_digest(c: &Netlist) -> u64 {
    let mut h = Hasher64::new();
    h.str(c.name());
    h.usize(c.num_cells());
    h.usize(c.num_inputs());
    h.usize(c.num_ffs());
    for (sig, cell) in c.iter_cells() {
        h.usize(sig.index());
        match cell.kind() {
            CellKind::Input => h.u64(1),
            CellKind::Const(b) => {
                h.u64(2);
                h.u64(u64::from(b));
            }
            CellKind::Gate(g) => {
                h.u64(3);
                h.str(g.mnemonic());
            }
            CellKind::Dff { init } => {
                h.u64(4);
                h.u64(u64::from(init));
            }
        }
        h.usize(cell.pins().len());
        for p in cell.pins() {
            h.usize(p.index());
        }
    }
    for name in c.input_names() {
        h.str(name);
    }
    for (name, sig) in c.outputs() {
        h.str(name);
        h.usize(sig.index());
    }
    h.finish()
}

/// Stable digest of a test bench's stimuli (dimensions + every bit).
fn bench_digest(tb: &Testbench) -> u64 {
    let mut h = Hasher64::new();
    h.usize(tb.num_inputs());
    h.usize(tb.num_cycles());
    for vector in tb.iter() {
        let mut word = 0u64;
        let mut n = 0u32;
        for &bit in vector {
            word = (word << 1) | u64::from(bit);
            n += 1;
            if n == 64 {
                h.u64(word);
                (word, n) = (0, 0);
            }
        }
        h.u64(word);
        h.u64(u64::from(n));
    }
    h.finish()
}

/// Stable digest of an explicit fault list (for the `list:` source
/// label — two different lists of equal length must not be resumable
/// into each other).
fn fault_list_digest(faults: &[Fault]) -> u64 {
    let mut h = Hasher64::new();
    h.usize(faults.len());
    for f in faults {
        h.usize(f.ff.index());
        h.u64(u64::from(f.cycle));
    }
    h.finish()
}

/// Checksum for the file trailer: FNV-1a over every line before `end`,
/// joined with `\n` (the exact rendered bytes).
fn body_checksum(body: &str) -> u64 {
    let mut h = Hasher64::new();
    h.bytes(body.as_bytes());
    h.finish()
}

fn technique_token(t: Technique) -> &'static str {
    match t {
        Technique::MaskScan => "mask-scan",
        Technique::StateScan => "state-scan",
        Technique::TimeMux => "time-mux",
    }
}

fn technique_from_token(s: &str) -> Option<Technique> {
    Technique::ALL.into_iter().find(|&t| technique_token(t) == s)
}

/// Canonical one-token label of a fault source, as stored on the
/// checkpoint's `source` line.
fn source_label(source: &FaultSource) -> String {
    match source {
        FaultSource::Exhaustive => "exhaustive".to_owned(),
        FaultSource::Sampled { count, seed } => format!("sampled:{count}:{seed}"),
        FaultSource::List(list) => {
            format!("list:{}:{:016x}", list.len(), fault_list_digest(list.as_slice()))
        }
        // The streamed paths reject MBU campaigns before fingerprinting;
        // the label exists only so `Fingerprint::of` is total.
        FaultSource::Multi(list) => format!("multi:{}", list.len()),
    }
}

// --------------------------------------------------------------------
// Errors

/// Why a checkpoint could not be loaded, validated, or written.
///
/// The `Display` form is a single lower-case sentence; corrupt files
/// carry the 1-based line number of the first offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResumeError {
    /// The checkpoint file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        msg: String,
    },
    /// The file is not a well-formed `seugrade-campaign-ckpt/v1`
    /// document: wrong schema line, truncated, checksum mismatch, or a
    /// malformed field.
    Corrupt {
        /// 1-based line number of the first offending line (for a
        /// truncated file, the line the trailer should have been on).
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The file is well-formed but describes a *different* campaign.
    Mismatch {
        /// Which fingerprint field disagreed.
        field: &'static str,
        /// The checkpoint's value.
        expected: String,
        /// The current campaign's value.
        found: String,
    },
}

impl ResumeError {
    /// The offending line for [`Corrupt`](Self::Corrupt) errors.
    #[must_use]
    pub fn line(&self) -> Option<usize> {
        match self {
            ResumeError::Corrupt { line, .. } => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io { path, msg } => {
                write!(f, "cannot access checkpoint {path}: {msg}")
            }
            ResumeError::Corrupt { line, msg } => {
                write!(f, "corrupt checkpoint at line {line}: {msg}")
            }
            ResumeError::Mismatch { field, expected, found } => write!(
                f,
                "checkpoint does not match this campaign: {field} is {expected} \
                 in the checkpoint but {found} in the plan"
            ),
        }
    }
}

impl Error for ResumeError {}

// --------------------------------------------------------------------
// Fingerprint

/// Everything that must be identical for a checkpoint to be resumable
/// into a campaign: the circuit (by structural digest, not just
/// dimensions), the test bench (by stimuli digest), the fault source,
/// trace policy, technique set, and the chunk space they induce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Circuit name.
    pub circuit_name: String,
    /// Circuit flip-flop count.
    pub num_ffs: usize,
    /// Circuit cell count.
    pub num_cells: usize,
    /// Structural circuit digest.
    pub circuit_digest: u64,
    /// Test-bench cycle count.
    pub num_cycles: usize,
    /// Test-bench input width.
    pub num_inputs: usize,
    /// Stimuli digest.
    pub bench_digest: u64,
    /// Fault-source label (`exhaustive`, `sampled:<count>:<seed>`,
    /// `list:<len>:<digest>`).
    pub source: String,
    /// Trace-policy label (`dense`, `checkpoint:<k>`).
    pub trace_policy: String,
    /// Comma-joined technique tokens in plan order.
    pub techniques: String,
    /// Total chunks in the campaign's cycle-major chunk plan.
    pub chunks: usize,
    /// Total faults.
    pub faults: usize,
}

impl Fingerprint {
    /// Fingerprints a plan and the chunk space its engine derived.
    #[must_use]
    pub fn of(plan: &CampaignPlan<'_>, chunks: usize, faults: usize) -> Self {
        let circuit = plan.circuit();
        let tb = plan.testbench();
        let tokens: Vec<&str> =
            plan.techniques().iter().map(|&t| technique_token(t)).collect();
        Fingerprint {
            circuit_name: circuit.name().to_owned(),
            num_ffs: circuit.num_ffs(),
            num_cells: circuit.num_cells(),
            circuit_digest: circuit_digest(circuit),
            num_cycles: tb.num_cycles(),
            num_inputs: tb.num_inputs(),
            bench_digest: bench_digest(tb),
            source: source_label(plan.source()),
            trace_policy: plan.trace_policy().label(),
            techniques: tokens.join(","),
            chunks,
            faults,
        }
    }
}

// --------------------------------------------------------------------
// The checkpoint document

/// A parsed (or about-to-be-written) `seugrade-campaign-ckpt/v1` file.
///
/// ```text
/// seugrade-campaign-ckpt/v1
/// circuit <ffs> <cells> <hex16-digest> <name>
/// bench <cycles> <inputs> <hex16-digest>
/// source <label>
/// trace-policy <label>
/// techniques <comma-tokens>
/// space <total-chunks> <total-faults>
/// cursor <chunks-done> <faults-done>
/// meta <key> <value>              (zero or more; value may contain spaces)
/// sink <n>                        (followed by n sink payload lines)
/// <sink payload…>
/// end <hex16-checksum>
/// ```
///
/// The trailer is an FNV-1a checksum of every preceding line; a file
/// with no trailer is truncated, a file with a wrong trailer is damaged
/// — both are [`ResumeError::Corrupt`] on [`load`](Self::load).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    fingerprint: Fingerprint,
    chunks_done: usize,
    faults_done: usize,
    meta: Vec<(String, String)>,
    sink_lines: Vec<String>,
    /// 1-based file line of the first sink payload line (so sink parse
    /// errors carry real line numbers).
    sink_base_line: usize,
}

impl Checkpoint {
    /// Snapshots a running campaign.
    ///
    /// # Panics
    ///
    /// Panics if a meta key contains whitespace or a meta value or sink
    /// line contains a newline (the format is line-delimited).
    #[must_use]
    pub fn new<S: PersistentSink>(
        fingerprint: Fingerprint,
        chunks_done: usize,
        faults_done: usize,
        meta: Vec<(String, String)>,
        sink: &S,
    ) -> Self {
        for (k, v) in &meta {
            assert!(
                !k.is_empty() && !k.contains(char::is_whitespace),
                "meta key {k:?} must be a single token"
            );
            assert!(!v.contains('\n'), "meta value for {k:?} must be single-line");
        }
        let mut sink_lines = Vec::new();
        sink.save_lines(&mut sink_lines);
        assert!(
            sink_lines.iter().all(|l| !l.contains('\n')),
            "sink payload must be single-line records"
        );
        // Schema + 7 header lines + meta, then `sink <n>`; payload
        // starts on the next line.
        let sink_base_line = 8 + meta.len() + 2;
        Checkpoint { fingerprint, chunks_done, faults_done, meta, sink_lines, sink_base_line }
    }

    /// The campaign identity this checkpoint belongs to.
    #[must_use]
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Chunks completed — always an exact prefix of the chunk queue.
    #[must_use]
    pub fn chunks_done(&self) -> usize {
        self.chunks_done
    }

    /// Faults covered by the completed chunks.
    #[must_use]
    pub fn faults_done(&self) -> usize {
        self.faults_done
    }

    /// True when the campaign already finished.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.chunks_done == self.fingerprint.chunks
    }

    /// Caller-owned metadata, in write order.
    #[must_use]
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// First metadata value stored under `key`.
    #[must_use]
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Rebuilds the persisted sink.
    pub fn restore_sink<S: PersistentSink>(&self) -> Result<S, ResumeError> {
        S::restore_lines(&self.sink_lines, self.sink_base_line)
    }

    /// Renders the full file, trailer included.
    #[must_use]
    pub fn render(&self) -> String {
        let fp = &self.fingerprint;
        let mut lines = vec![
            CKPT_SCHEMA.to_owned(),
            format!(
                "circuit {} {} {:016x} {}",
                fp.num_ffs, fp.num_cells, fp.circuit_digest, fp.circuit_name
            ),
            format!("bench {} {} {:016x}", fp.num_cycles, fp.num_inputs, fp.bench_digest),
            format!("source {}", fp.source),
            format!("trace-policy {}", fp.trace_policy),
            format!("techniques {}", fp.techniques),
            format!("space {} {}", fp.chunks, fp.faults),
            format!("cursor {} {}", self.chunks_done, self.faults_done),
        ];
        for (k, v) in &self.meta {
            lines.push(format!("meta {k} {v}"));
        }
        lines.push(format!("sink {}", self.sink_lines.len()));
        lines.extend(self.sink_lines.iter().cloned());
        let body = lines.join("\n");
        format!("{body}\nend {:016x}\n", body_checksum(&body))
    }

    /// Writes the checkpoint atomically: a sibling `<path>.tmp` is
    /// written in full, then renamed over `path`, so a crash mid-write
    /// never leaves a torn checkpoint behind.
    pub fn write_atomic(&self, path: &Path) -> Result<(), ResumeError> {
        let io = |e: std::io::Error| ResumeError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, self.render()).map_err(io)?;
        fs::rename(&tmp, path).map_err(io)
    }

    /// Loads and validates a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, ResumeError> {
        let text = fs::read_to_string(path).map_err(|e| ResumeError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Parses checkpoint text. Every failure names the first bad line.
    pub fn parse(text: &str) -> Result<Self, ResumeError> {
        let corrupt = |line: usize, msg: String| ResumeError::Corrupt { line, msg };
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return Err(corrupt(1, "empty file".to_owned()));
        }
        if lines[0] != CKPT_SCHEMA {
            return Err(corrupt(
                1,
                format!("unrecognized schema {:?}, expected {CKPT_SCHEMA:?}", lines[0]),
            ));
        }
        let last = lines.len();
        let Some(sum_hex) = lines[last - 1].strip_prefix("end ") else {
            return Err(corrupt(last, "missing end trailer (truncated file?)".to_owned()));
        };
        let stored_sum = u64::from_str_radix(sum_hex, 16)
            .map_err(|_| corrupt(last, format!("malformed checksum {sum_hex:?}")))?;
        let body = lines[..last - 1].join("\n");
        let actual = body_checksum(&body);
        if actual != stored_sum {
            return Err(corrupt(
                last,
                format!("checksum mismatch: file says {stored_sum:016x}, content hashes to {actual:016x}"),
            ));
        }

        // The checksum passed, so the content is what was written; the
        // field parses below catch writer/version skew rather than rot.
        let mut pos = 1; // index into `lines`; line number is pos + 1
        let body_lines = &lines[..last - 1];
        let mut next = |tag: &str| -> Result<(usize, &str), ResumeError> {
            let line_no = pos + 1;
            let Some(&line) = body_lines.get(pos) else {
                return Err(ResumeError::Corrupt {
                    line: line_no,
                    msg: format!("missing {tag} line"),
                });
            };
            pos += 1;
            line.strip_prefix(tag)
                .and_then(|r| r.strip_prefix(' ').or(Some(r).filter(|r| r.is_empty())))
                .map(|rest| (line_no, rest))
                .ok_or_else(|| ResumeError::Corrupt {
                    line: line_no,
                    msg: format!("expected a {tag} line, found {line:?}"),
                })
        };
        fn int(line: usize, what: &str, s: &str) -> Result<usize, ResumeError> {
            s.parse().map_err(|_| ResumeError::Corrupt {
                line,
                msg: format!("bad {what} {s:?}"),
            })
        }
        fn hex(line: usize, what: &str, s: &str) -> Result<u64, ResumeError> {
            u64::from_str_radix(s, 16).map_err(|_| ResumeError::Corrupt {
                line,
                msg: format!("bad {what} {s:?}"),
            })
        }

        let (ln, rest) = next("circuit")?;
        let mut it = rest.splitn(4, ' ');
        let (ffs, cells, cdig, cname) =
            match (it.next(), it.next(), it.next(), it.next()) {
                (Some(a), Some(b), Some(c), Some(d)) if !d.is_empty() => (a, b, c, d),
                _ => return Err(corrupt(ln, format!("malformed circuit line {rest:?}"))),
            };
        let num_ffs = int(ln, "flip-flop count", ffs)?;
        let num_cells = int(ln, "cell count", cells)?;
        let circuit_digest = hex(ln, "circuit digest", cdig)?;
        let circuit_name = cname.to_owned();

        let (ln, rest) = next("bench")?;
        let parts: Vec<&str> = rest.split(' ').collect();
        if parts.len() != 3 {
            return Err(corrupt(ln, format!("malformed bench line {rest:?}")));
        }
        let num_cycles = int(ln, "cycle count", parts[0])?;
        let num_inputs = int(ln, "input count", parts[1])?;
        let bench_digest = hex(ln, "bench digest", parts[2])?;

        let (_, source) = next("source")?;
        let source = source.to_owned();

        let (ln, tp) = next("trace-policy")?;
        if TracePolicy::from_label(tp).is_none() {
            return Err(corrupt(ln, format!("unknown trace policy {tp:?}")));
        }
        let trace_policy = tp.to_owned();

        let (ln, toks) = next("techniques")?;
        for t in toks.split(',') {
            if technique_from_token(t).is_none() {
                return Err(corrupt(ln, format!("unknown technique {t:?}")));
            }
        }
        let techniques = toks.to_owned();

        let (ln, rest) = next("space")?;
        let parts: Vec<&str> = rest.split(' ').collect();
        if parts.len() != 2 {
            return Err(corrupt(ln, format!("malformed space line {rest:?}")));
        }
        let chunks = int(ln, "chunk count", parts[0])?;
        let faults = int(ln, "fault count", parts[1])?;

        let (cursor_ln, rest) = next("cursor")?;
        let parts: Vec<&str> = rest.split(' ').collect();
        if parts.len() != 2 {
            return Err(corrupt(cursor_ln, format!("malformed cursor line {rest:?}")));
        }
        let chunks_done = int(cursor_ln, "chunk cursor", parts[0])?;
        let faults_done = int(cursor_ln, "fault cursor", parts[1])?;
        if chunks_done > chunks || faults_done > faults {
            return Err(corrupt(cursor_ln, format!("cursor {chunks_done}/{faults_done} past the space {chunks}/{faults}")));
        }
        if (chunks_done == chunks) != (faults_done == faults) {
            return Err(corrupt(
                cursor_ln,
                format!("inconsistent cursor: {chunks_done}/{chunks} chunks but {faults_done}/{faults} faults"),
            ));
        }

        let mut meta = Vec::new();
        let sink_count;
        let sink_tag_ln;
        loop {
            let line_no = pos + 1;
            let Some(&line) = body_lines.get(pos) else {
                return Err(corrupt(line_no, "missing sink line".to_owned()));
            };
            pos += 1;
            if let Some(rest) = line.strip_prefix("meta ") {
                let (k, v) = rest.split_once(' ').unwrap_or((rest, ""));
                if k.is_empty() {
                    return Err(corrupt(line_no, "empty meta key".to_owned()));
                }
                meta.push((k.to_owned(), v.to_owned()));
            } else if let Some(rest) = line.strip_prefix("sink ") {
                sink_count = int(line_no, "sink line count", rest)?;
                sink_tag_ln = line_no;
                break;
            } else {
                return Err(corrupt(
                    line_no,
                    format!("expected a meta or sink line, found {line:?}"),
                ));
            }
        }

        let sink_base_line = sink_tag_ln + 1;
        let remaining = body_lines.len() - pos;
        if remaining != sink_count {
            return Err(corrupt(
                sink_tag_ln,
                format!("sink declares {sink_count} lines but {remaining} follow"),
            ));
        }
        let sink_lines: Vec<String> =
            body_lines[pos..].iter().map(|&l| l.to_owned()).collect();

        Ok(Checkpoint {
            fingerprint: Fingerprint {
                circuit_name,
                num_ffs,
                num_cells,
                circuit_digest,
                num_cycles,
                num_inputs,
                bench_digest,
                source,
                trace_policy,
                techniques,
                chunks,
                faults,
            },
            chunks_done,
            faults_done,
            meta,
            sink_lines,
            sink_base_line,
        })
    }

    /// Verifies this checkpoint belongs to the campaign `current`
    /// fingerprints; the first disagreeing field is the error.
    pub fn verify(&self, current: &Fingerprint) -> Result<(), ResumeError> {
        fn check(
            field: &'static str,
            ckpt: impl fmt::Display,
            plan: impl fmt::Display,
        ) -> Result<(), ResumeError> {
            let (expected, found) = (ckpt.to_string(), plan.to_string());
            if expected == found {
                Ok(())
            } else {
                Err(ResumeError::Mismatch { field, expected, found })
            }
        }
        let fp = &self.fingerprint;
        check("circuit name", &fp.circuit_name, &current.circuit_name)?;
        check("flip-flop count", fp.num_ffs, current.num_ffs)?;
        check("cell count", fp.num_cells, current.num_cells)?;
        check(
            "circuit digest",
            format_args!("{:016x}", fp.circuit_digest),
            format_args!("{:016x}", current.circuit_digest),
        )?;
        check("cycle count", fp.num_cycles, current.num_cycles)?;
        check("input count", fp.num_inputs, current.num_inputs)?;
        check(
            "stimuli digest",
            format_args!("{:016x}", fp.bench_digest),
            format_args!("{:016x}", current.bench_digest),
        )?;
        check("fault source", &fp.source, &current.source)?;
        check("trace policy", &fp.trace_policy, &current.trace_policy)?;
        check("technique set", &fp.techniques, &current.techniques)?;
        check("chunk count", fp.chunks, current.chunks)?;
        check("fault count", fp.faults, current.faults)?;
        Ok(())
    }
}

// --------------------------------------------------------------------
// PersistentSink

/// A [`VerdictSink`] whose folded state can be checkpointed and
/// restored.
///
/// `save_lines` must emit single-line records; `restore_lines` receives
/// exactly those lines back (plus `base_line`, the 1-based file line of
/// `lines[0]`, so parse failures can name the offending file line).
/// Restoring the saved lines must reproduce the sink state exactly —
/// the resume-determinism suite checks the composition end to end.
pub trait PersistentSink: VerdictSink {
    /// Serializes the sink state as single-line records.
    fn save_lines(&self, out: &mut Vec<String>);

    /// Rebuilds a sink from its saved records.
    fn restore_lines(lines: &[String], base_line: usize) -> Result<Self, ResumeError>
    where
        Self: Sized;
}

impl PersistentSink for StreamAccumulator {
    fn save_lines(&self, out: &mut Vec<String>) {
        let s = self.summary();
        out.push(format!(
            "summary {} {} {}",
            s.count(FaultClass::Failure),
            s.count(FaultClass::Latent),
            s.count(FaultClass::Silent)
        ));
        out.push(format!("digest {:016x}", self.digest()));
        let map = self.failure_map();
        let mut line = format!("map {}", map.len());
        for v in map {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        out.push(line);
    }

    fn restore_lines(lines: &[String], base_line: usize) -> Result<Self, ResumeError> {
        let corrupt = |off: usize, msg: String| ResumeError::Corrupt {
            line: base_line + off,
            msg,
        };
        let field = |off: usize, tag: &str| -> Result<&str, ResumeError> {
            lines
                .get(off)
                .and_then(|l| l.strip_prefix(tag))
                .ok_or_else(|| corrupt(off, format!("expected a {tag}… sink line")))
        };
        let ints = |off: usize, what: &str, s: &str| -> Result<Vec<usize>, ResumeError> {
            s.split_whitespace()
                .map(|t| {
                    t.parse().map_err(|_| corrupt(off, format!("bad {what} {t:?}")))
                })
                .collect()
        };
        if lines.len() != 3 {
            return Err(corrupt(0, format!("expected 3 sink lines, found {}", lines.len())));
        }
        let counts = ints(0, "summary count", field(0, "summary ")?)?;
        if counts.len() != 3 {
            return Err(corrupt(0, format!("expected 3 summary counts, found {}", counts.len())));
        }
        let summary = seugrade_faultsim::GradingSummary::from_counts(
            counts[0], counts[1], counts[2],
        );
        let digest_hex = field(1, "digest ")?;
        let digest = u64::from_str_radix(digest_hex, 16)
            .map_err(|_| corrupt(1, format!("bad digest {digest_hex:?}")))?;
        let map_fields = ints(2, "failure-map entry", field(2, "map ")?)?;
        let Some((&len, map)) = map_fields.split_first() else {
            return Err(corrupt(2, "empty map line".to_owned()));
        };
        if map.len() != len {
            return Err(corrupt(
                2,
                format!("map declares {len} entries but carries {}", map.len()),
            ));
        }
        Ok(StreamAccumulator::from_parts(summary, map.to_vec(), digest))
    }
}

// --------------------------------------------------------------------
// Options

/// How a resumable streamed run persists, restarts, and fails.
#[derive(Clone, Debug)]
pub struct ResumeOptions {
    /// Checkpoint file path; `None` disables persistence (the run is
    /// still cancellable and panic-contained).
    pub checkpoint: Option<PathBuf>,
    /// Chunks between checkpoint writes.
    pub every: usize,
    /// Grade at most this many chunks in this invocation, then stop as
    /// if cancelled (deterministic interruption — the determinism suite
    /// and split-across-processes execution are built on this).
    pub limit: Option<usize>,
    /// Load `checkpoint`, verify its fingerprint, and continue from its
    /// cursor instead of starting fresh.
    pub resume: bool,
    /// Retries per panicking chunk before
    /// [`EngineError::WorkerPanic`](crate::EngineError::WorkerPanic).
    pub retry_budget: usize,
    /// Caller-owned key/value pairs stored verbatim in the checkpoint
    /// (the CLI keeps enough here to rebuild the plan from the file
    /// alone). Ignored when resuming — the loaded checkpoint's metadata
    /// is carried forward.
    pub meta: Vec<(String, String)>,
    /// Cooperative cancellation flag, polled at chunk boundaries.
    pub cancel: Option<CancelToken>,
    /// Per-chunk progress callback, invoked from worker threads as
    /// chunks finish (see [`ProgressHook`]). `None` costs nothing.
    pub progress: Option<ProgressHook>,
}

impl Default for ResumeOptions {
    fn default() -> Self {
        ResumeOptions {
            checkpoint: None,
            every: DEFAULT_CHECKPOINT_EVERY,
            limit: None,
            resume: false,
            retry_budget: crate::pool::DEFAULT_RETRY_BUDGET,
            meta: Vec::new(),
            cancel: None,
            progress: None,
        }
    }
}

impl ResumeOptions {
    /// Fresh run persisting to `path`.
    #[must_use]
    pub fn checkpoint_to(path: impl Into<PathBuf>) -> Self {
        ResumeOptions { checkpoint: Some(path.into()), ..Self::default() }
    }

    /// Resume a previously checkpointed run from `path`.
    #[must_use]
    pub fn resume_from(path: impl Into<PathBuf>) -> Self {
        ResumeOptions { checkpoint: Some(path.into()), resume: true, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use seugrade_faultsim::FaultOutcome;
    use seugrade_netlist::FfIndex;

    use super::*;

    fn sample_fingerprint() -> Fingerprint {
        Fingerprint {
            circuit_name: "unit test circuit".to_owned(),
            num_ffs: 70,
            num_cells: 200,
            circuit_digest: 0x1234_5678_9abc_def0,
            num_cycles: 40,
            num_inputs: 3,
            bench_digest: 0x0fed_cba9_8765_4321,
            source: "sampled:1000:42".to_owned(),
            trace_policy: "checkpoint:64".to_owned(),
            techniques: "mask-scan,state-scan,time-mux".to_owned(),
            chunks: 80,
            faults: 2800,
        }
    }

    fn sample_sink() -> StreamAccumulator {
        let mut acc = StreamAccumulator::default();
        acc.observe(Fault::new(FfIndex::new(3), 5), FaultOutcome::failure(6));
        acc.observe(Fault::new(FfIndex::new(0), 1), FaultOutcome::silent(2));
        acc.observe(Fault::new(FfIndex::new(9), 0), FaultOutcome::latent());
        acc
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint::new(
            sample_fingerprint(),
            30,
            1050,
            vec![
                ("target".to_owned(), "s5378g".to_owned()),
                ("note".to_owned(), "value with spaces".to_owned()),
            ],
            &sample_sink(),
        )
    }

    #[test]
    fn render_parse_roundtrip() {
        let ck = sample_checkpoint();
        let text = ck.render();
        assert!(text.starts_with(CKPT_SCHEMA));
        assert!(text.ends_with('\n'));
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back.fingerprint(), ck.fingerprint());
        assert_eq!(back.chunks_done(), 30);
        assert_eq!(back.faults_done(), 1050);
        assert!(!back.is_complete());
        assert_eq!(back.meta_get("target"), Some("s5378g"));
        assert_eq!(back.meta_get("note"), Some("value with spaces"));
        assert_eq!(back.meta_get("absent"), None);
        let sink: StreamAccumulator = back.restore_sink().unwrap();
        let reference = sample_sink();
        assert_eq!(sink.digest(), reference.digest());
        assert_eq!(sink.summary(), reference.summary());
        assert_eq!(sink.failure_map(), reference.failure_map());
    }

    #[test]
    fn restored_sink_keeps_accumulating() {
        let text = sample_checkpoint().render();
        let back = Checkpoint::parse(&text).unwrap();
        let mut restored: StreamAccumulator = back.restore_sink().unwrap();
        let mut reference = sample_sink();
        let extra = (Fault::new(FfIndex::new(5), 7), FaultOutcome::failure(9));
        restored.observe(extra.0, extra.1);
        reference.observe(extra.0, extra.1);
        assert_eq!(restored.digest(), reference.digest());
        assert_eq!(restored.failure_map(), reference.failure_map());
    }

    #[test]
    fn every_truncation_is_rejected_with_a_line_number() {
        let text = sample_checkpoint().render();
        let n = text.lines().count();
        for keep in 0..n {
            let truncated: String = text
                .lines()
                .take(keep)
                .map(|l| format!("{l}\n"))
                .collect();
            let err = Checkpoint::parse(&truncated).unwrap_err();
            match err {
                ResumeError::Corrupt { line, .. } => {
                    assert!(line >= 1 && line <= keep.max(1), "keep {keep}: line {line}")
                }
                other => panic!("keep {keep}: expected Corrupt, got {other}"),
            }
        }
    }

    #[test]
    fn checksum_detects_mutation() {
        let text = sample_checkpoint().render();
        // Flip one digit inside the cursor line.
        let mutated = text.replace("cursor 30 1050", "cursor 31 1050");
        assert_ne!(text, mutated);
        let err = Checkpoint::parse(&mutated).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected_on_line_one() {
        let err = Checkpoint::parse("some-other-format/v9\nend 0\n").unwrap_err();
        assert_eq!(err.line(), Some(1));
        assert!(err.to_string().contains("unrecognized schema"), "{err}");
    }

    #[test]
    fn inconsistent_cursor_is_rejected() {
        // Re-render with a cursor claiming all chunks but not all faults.
        let mut ck = sample_checkpoint();
        ck.chunks_done = ck.fingerprint.chunks;
        ck.faults_done = 5;
        let err = Checkpoint::parse(&ck.render()).unwrap_err();
        assert!(err.to_string().contains("inconsistent cursor"), "{err}");
    }

    #[test]
    fn verify_pinpoints_the_field() {
        let ck = sample_checkpoint();
        let mut other = sample_fingerprint();
        other.trace_policy = "dense".to_owned();
        let err = ck.verify(&other).unwrap_err();
        match err {
            ResumeError::Mismatch { field, expected, found } => {
                assert_eq!(field, "trace policy");
                assert_eq!(expected, "checkpoint:64");
                assert_eq!(found, "dense");
            }
            other => panic!("expected Mismatch, got {other}"),
        }
        assert!(ck.verify(&sample_fingerprint()).is_ok());
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("seugrade-ckpt-test-{}.ckpt", std::process::id()));
        let ck = sample_checkpoint();
        ck.write_atomic(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.fingerprint(), ck.fingerprint());
        // Overwrite in place (the steady-state of a running campaign).
        ck.write_atomic(&path).unwrap();
        assert!(Checkpoint::load(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(matches!(err, ResumeError::Io { .. }), "{err}");
    }

    #[test]
    fn circuit_digest_distinguishes_same_dimension_designs() {
        use seugrade_circuits::generators;
        // counter(4) and lfsr(4, ..) both have 0 inputs and 4 flip-flops.
        let a = generators::counter(4);
        let b = generators::lfsr(4, &[3, 2]);
        assert_ne!(circuit_digest(&a), circuit_digest(&b));
        assert_eq!(circuit_digest(&a), circuit_digest(&generators::counter(4)));
    }

    #[test]
    fn bench_digest_distinguishes_stimuli() {
        let a = Testbench::random(3, 20, 1);
        let b = Testbench::random(3, 20, 2);
        assert_ne!(bench_digest(&a), bench_digest(&b));
        assert_eq!(bench_digest(&a), bench_digest(&Testbench::random(3, 20, 1)));
    }

    #[test]
    fn source_labels() {
        assert_eq!(source_label(&FaultSource::Exhaustive), "exhaustive");
        assert_eq!(
            source_label(&FaultSource::Sampled { count: 9, seed: 4 }),
            "sampled:9:4"
        );
        let list = seugrade_faultsim::FaultList::sampled(8, 10, 5, 1);
        let label = source_label(&FaultSource::List(list.clone()));
        assert!(label.starts_with("list:5:"), "{label}");
        // Same faults, same label; different faults, different label.
        assert_eq!(label, source_label(&FaultSource::List(list)));
        let other = seugrade_faultsim::FaultList::sampled(8, 10, 5, 2);
        assert_ne!(label, source_label(&FaultSource::List(other)));
    }

    #[test]
    fn resume_options_defaults() {
        let o = ResumeOptions::default();
        assert!(o.checkpoint.is_none() && !o.resume && o.limit.is_none());
        assert_eq!(o.every, DEFAULT_CHECKPOINT_EVERY);
        let r = ResumeOptions::resume_from("/tmp/x.ckpt");
        assert!(r.resume && r.checkpoint.is_some());
    }
}
