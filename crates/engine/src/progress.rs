//! Progress reporting and runtime statistics for engine runs.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use seugrade_faultsim::GradingSummary;

/// One completed shard, as observed by a progress callback.
///
/// Events are emitted **from worker threads** as shards finish, so their
/// order varies run to run; the graded outcomes do not (the engine merges
/// them back into submission order).
#[derive(Clone, Debug)]
pub struct ProgressEvent {
    /// Queue index of the finished shard.
    pub shard: usize,
    /// Faults graded by this shard.
    pub faults: usize,
    /// Classification tallies of this shard alone.
    pub summary: GradingSummary,
}

/// A shareable progress callback for the streamed resumable path.
///
/// Wraps an `Arc<dyn Fn(ProgressEvent)>` so the same hook can be handed
/// to [`ResumeOptions`](crate::ResumeOptions) by value, cloned per run,
/// and invoked **from worker threads** as chunks finish. The closure
/// must therefore be cheap and lock-light — a couple of atomic adds or a
/// bounded channel send, not a blocking write. Event order varies run to
/// run (workers race); the graded verdicts do not.
#[derive(Clone)]
pub struct ProgressHook(Arc<dyn Fn(ProgressEvent) + Send + Sync>);

impl ProgressHook {
    /// Wraps a callback.
    #[must_use]
    pub fn new(f: impl Fn(ProgressEvent) + Send + Sync + 'static) -> Self {
        ProgressHook(Arc::new(f))
    }

    /// Invokes the callback with one finished-chunk event.
    pub fn call(&self, event: ProgressEvent) {
        (self.0)(event);
    }
}

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// A thread-safe aggregator for [`ProgressEvent`]s — the simplest useful
/// progress sink (live fault counters for a CLI spinner or a stats
/// endpoint).
#[derive(Debug, Default)]
pub struct ProgressCounter {
    faults: AtomicUsize,
    shards: AtomicUsize,
}

impl ProgressCounter {
    /// A fresh counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event in (callable concurrently from any worker).
    pub fn observe(&self, event: &ProgressEvent) {
        self.faults.fetch_add(event.faults, Ordering::Relaxed);
        self.shards.fetch_add(1, Ordering::Relaxed);
    }

    /// Faults graded so far.
    #[must_use]
    pub fn faults_done(&self) -> usize {
        self.faults.load(Ordering::Relaxed)
    }

    /// Shards completed so far.
    #[must_use]
    pub fn shards_done(&self) -> usize {
        self.shards.load(Ordering::Relaxed)
    }
}

/// What an engine run cost: the raw material for throughput tracking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// Faults graded.
    pub faults: usize,
    /// Shards dispatched through the chunk queue.
    pub shards: usize,
    /// Worker threads that actually ran (the policy's request capped at
    /// the shard count — spawning more workers than shards is pointless).
    pub threads: usize,
    /// Wall-clock nanoseconds spent grading (excluding golden-run setup).
    pub wall_ns: u128,
}

impl EngineStats {
    /// Grading throughput in faults per second (0 for an empty run).
    #[must_use]
    pub fn faults_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.faults as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Average microseconds per fault (0 for an empty run).
    #[must_use]
    pub fn us_per_fault(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.wall_ns as f64 / 1e3 / self.faults as f64
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults in {} shards on {} threads: {:.0} faults/sec",
            self.faults,
            self.shards,
            self.threads,
            self.faults_per_sec()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = ProgressCounter::new();
        for shard in 0..5 {
            c.observe(&ProgressEvent {
                shard,
                faults: 64,
                summary: GradingSummary::new(),
            });
        }
        assert_eq!(c.faults_done(), 320);
        assert_eq!(c.shards_done(), 5);
    }

    #[test]
    fn stats_rates() {
        let s = EngineStats { faults: 1000, shards: 16, threads: 4, wall_ns: 2_000_000_000 };
        assert!((s.faults_per_sec() - 500.0).abs() < 1e-9);
        assert!((s.us_per_fault() - 2000.0).abs() < 1e-9);
        assert!(s.to_string().contains("4 threads"));
    }

    #[test]
    fn stats_degenerate_cases() {
        let s = EngineStats { faults: 0, shards: 0, threads: 1, wall_ns: 0 };
        assert_eq!(s.faults_per_sec(), 0.0);
        assert_eq!(s.us_per_fault(), 0.0);
    }
}
