//! Word-level RTL construction on top of `seugrade-netlist`.
//!
//! This crate is the "HDL front-end" of the workspace: circuits such as
//! the Viper/b14-like processor are described with multi-bit words,
//! registers, adders and multiplexers, and elaborated on the fly into the
//! gate-level [`Netlist`](seugrade_netlist::Netlist) consumed by the
//! simulators, the instrumentation transforms and the technology mapper.
//!
//! Key types:
//!
//! - [`RtlBuilder`] — wraps a [`NetlistBuilder`](seugrade_netlist::NetlistBuilder)
//!   with word-level operations (LSB-first [`Word`]s);
//! - [`Reg`] — a named bank of flip-flops with deferred next-state
//!   connection (and an optional write-enable).
//!
//! # Example — a saturating 4-bit up-counter
//!
//! ```
//! use seugrade_rtl::RtlBuilder;
//!
//! # fn main() -> Result<(), seugrade_netlist::NetlistError> {
//! let mut r = RtlBuilder::new("satcnt");
//! let en = r.input_bit("en");
//! let cnt = r.register("cnt", 4, 0);
//! let one = r.constant_word(4, 1);
//! let (next, _carry) = r.add(&cnt.q(), &one);
//! let at_max = r.eq_const(&cnt.q(), 0xF);
//! let hold = r.mux_word(at_max, &next, &cnt.q());
//! let gated = r.mux_word(en, &cnt.q(), &hold);
//! r.connect(&cnt, &gated);
//! r.output_word("count", &cnt.q());
//! let netlist = r.finish()?;
//! assert_eq!(netlist.num_ffs(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod word;

pub use builder::{Reg, RtlBuilder};
pub use word::Word;
