//! Multi-bit signal bundles.

use seugrade_netlist::SigId;

/// An ordered bundle of 1-bit signals forming a machine word, **LSB
/// first** (`bits()[0]` is bit 0).
///
/// `Word`s are cheap handles into the netlist under construction; all
/// arithmetic and logic on them happens through
/// [`RtlBuilder`](crate::RtlBuilder) methods, which elaborate gates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Word {
    bits: Vec<SigId>,
}

impl Word {
    /// Wraps existing signals (LSB first).
    #[must_use]
    pub fn from_bits(bits: Vec<SigId>) -> Self {
        Word { bits }
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The underlying signals, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[SigId] {
        &self.bits
    }

    /// Bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> SigId {
        self.bits[i]
    }

    /// The most significant bit.
    ///
    /// # Panics
    ///
    /// Panics if the word is empty.
    #[must_use]
    pub fn msb(&self) -> SigId {
        *self.bits.last().expect("msb of empty word")
    }

    /// Bits `lo..hi` (half-open) as a new word.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, lo: usize, hi: usize) -> Word {
        assert!(lo <= hi && hi <= self.bits.len(), "bad slice {lo}..{hi}");
        Word { bits: self.bits[lo..hi].to_vec() }
    }

    /// Concatenates `self` (low part) with `high`.
    #[must_use]
    pub fn concat(&self, high: &Word) -> Word {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Word { bits }
    }
}

impl From<SigId> for Word {
    fn from(sig: SigId) -> Self {
        Word { bits: vec![sig] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: usize) -> Word {
        Word::from_bits((0..n).map(SigId::new).collect())
    }

    #[test]
    fn accessors() {
        let word = w(8);
        assert_eq!(word.width(), 8);
        assert_eq!(word.bit(0), SigId::new(0));
        assert_eq!(word.msb(), SigId::new(7));
    }

    #[test]
    fn slicing_and_concat() {
        let word = w(8);
        let lo = word.slice(0, 4);
        let hi = word.slice(4, 8);
        assert_eq!(lo.width(), 4);
        assert_eq!(hi.bit(0), SigId::new(4));
        let back = lo.concat(&hi);
        assert_eq!(back, word);
    }

    #[test]
    #[should_panic(expected = "bad slice")]
    fn bad_slice_panics() {
        let _ = w(4).slice(3, 9);
    }

    #[test]
    fn from_single_signal() {
        let word: Word = SigId::new(5).into();
        assert_eq!(word.width(), 1);
    }
}
