//! The word-level builder.

use seugrade_netlist::{GateKind, Netlist, NetlistBuilder, NetlistError, SigId};

use crate::Word;

/// A register bank: `width` flip-flops with a common name prefix.
///
/// Created by [`RtlBuilder::register`]; its next-state input is attached
/// later with [`RtlBuilder::connect`] / [`RtlBuilder::connect_enabled`],
/// which is how feedback (state machines, accumulators) is expressed.
#[derive(Clone, Debug)]
pub struct Reg {
    q: Word,
}

impl Reg {
    /// The register's current-state output word.
    #[must_use]
    pub fn q(&self) -> Word {
        self.q.clone()
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.q.width()
    }
}

/// Word-level elaboration front-end over
/// [`NetlistBuilder`](seugrade_netlist::NetlistBuilder).
///
/// All operators elaborate structural gate networks immediately: `add` is
/// a ripple-carry adder, `shr_var` a mux-staged barrel shifter, `eq` an
/// XNOR/AND-reduce tree, and so on. The resulting netlists are what a
/// 2005-era RTL synthesis flow would plausibly produce, which keeps the
/// LUT/FF accounting of the paper's Table 1 meaningful.
#[derive(Debug)]
pub struct RtlBuilder {
    b: NetlistBuilder,
    pending: Vec<(SigId, SigId)>,
}

impl RtlBuilder {
    /// Creates a builder for a module called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        RtlBuilder { b: NetlistBuilder::new(name), pending: Vec::new() }
    }

    /// Access to the underlying bit-level builder for odd corners.
    pub fn bit_builder(&mut self) -> &mut NetlistBuilder {
        &mut self.b
    }

    // ------------------------------------------------------------------
    // Ports, constants, registers
    // ------------------------------------------------------------------

    /// Declares a single-bit primary input.
    pub fn input_bit(&mut self, name: impl Into<String>) -> SigId {
        self.b.input(name)
    }

    /// Declares a `width`-bit primary input `name[0]..name[width-1]`
    /// (LSB first in the netlist input order).
    pub fn input_word(&mut self, name: &str, width: usize) -> Word {
        let bits = (0..width).map(|i| self.b.input(format!("{name}[{i}]"))).collect();
        Word::from_bits(bits)
    }

    /// A constant word holding `value` (truncated to `width` bits).
    pub fn constant_word(&mut self, width: usize, value: u64) -> Word {
        let bits = (0..width)
            .map(|i| self.b.constant(value >> i & 1 == 1))
            .collect();
        Word::from_bits(bits)
    }

    /// Single-bit constant.
    pub fn constant(&mut self, value: bool) -> SigId {
        self.b.constant(value)
    }

    /// Declares a register bank of `width` flip-flops initialized to
    /// `init` (bit `i` of `init` seeds flip-flop `i`). Flip-flops receive
    /// debug names `name[i]`.
    pub fn register(&mut self, name: &str, width: usize, init: u64) -> Reg {
        let bits: Vec<SigId> = (0..width)
            .map(|i| {
                let q = self.b.dff(init >> i & 1 == 1);
                self.b.name_signal(q, format!("{name}[{i}]"));
                q
            })
            .collect();
        Reg { q: Word::from_bits(bits) }
    }

    /// Single-bit register.
    pub fn register_bit(&mut self, name: &str, init: bool) -> Reg {
        self.register(name, 1, u64::from(init))
    }

    /// Connects the next-state input of `reg` to `d`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or the register was already connected.
    pub fn connect(&mut self, reg: &Reg, d: &Word) {
        assert_eq!(reg.width(), d.width(), "register width mismatch");
        for (&q, &bit) in reg.q.bits().iter().zip(d.bits()) {
            self.pending.push((q, bit));
        }
    }

    /// Connects `reg` with a write enable: the register keeps its value
    /// when `en` is low and loads `d` when `en` is high.
    pub fn connect_enabled(&mut self, reg: &Reg, en: SigId, d: &Word) {
        let held = self.mux_word(en, &reg.q(), d);
        self.connect(reg, &held);
    }

    /// Declares a single-bit primary output.
    pub fn output_bit(&mut self, name: impl Into<String>, sig: SigId) {
        self.b.output(name, sig);
    }

    /// Declares a `width`-bit primary output `name[0]..` (LSB first).
    pub fn output_word(&mut self, name: &str, word: &Word) {
        for (i, &bit) in word.bits().iter().enumerate() {
            self.b.output(format!("{name}[{i}]"), bit);
        }
    }

    /// Finalizes all pending register connections and validates.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from netlist validation (e.g. a
    /// register whose `connect` was forgotten).
    pub fn finish(mut self) -> Result<Netlist, NetlistError> {
        for (q, d) in std::mem::take(&mut self.pending) {
            self.b.connect_dff(q, d)?;
        }
        self.b.finish()
    }

    // ------------------------------------------------------------------
    // Bitwise logic
    // ------------------------------------------------------------------

    fn zipmap(&mut self, a: &Word, b: &Word, kind: GateKind) -> Word {
        assert_eq!(a.width(), b.width(), "word width mismatch for {kind}");
        let bits = a
            .bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.b.gate(kind, &[x, y]))
            .collect();
        Word::from_bits(bits)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: &Word, b: &Word) -> Word {
        self.zipmap(a, b, GateKind::And)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: &Word, b: &Word) -> Word {
        self.zipmap(a, b, GateKind::Or)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: &Word, b: &Word) -> Word {
        self.zipmap(a, b, GateKind::Xor)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: &Word) -> Word {
        let bits = a.bits().iter().map(|&x| self.b.not(x)).collect();
        Word::from_bits(bits)
    }

    /// Word-wide 2:1 mux: `sel ? b : a`, bit by bit.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mux_word(&mut self, sel: SigId, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "mux width mismatch");
        let bits = a
            .bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| self.b.mux(sel, x, y))
            .collect();
        Word::from_bits(bits)
    }

    // ------------------------------------------------------------------
    // Reductions and comparisons
    // ------------------------------------------------------------------

    /// OR of all bits.
    pub fn reduce_or(&mut self, a: &Word) -> SigId {
        self.b.gate(GateKind::Or, a.bits())
    }

    /// AND of all bits.
    pub fn reduce_and(&mut self, a: &Word) -> SigId {
        self.b.gate(GateKind::And, a.bits())
    }

    /// XOR (parity) of all bits.
    pub fn reduce_xor(&mut self, a: &Word) -> SigId {
        self.b.gate(GateKind::Xor, a.bits())
    }

    /// True when all bits are zero.
    pub fn is_zero(&mut self, a: &Word) -> SigId {
        self.b.gate(GateKind::Nor, a.bits())
    }

    /// Word equality.
    pub fn eq(&mut self, a: &Word, b: &Word) -> SigId {
        let diff = self.xor(a, b);
        self.is_zero(&diff)
    }

    /// Equality against a constant (elaborates an AND over bit literals,
    /// which is what synthesis would produce).
    pub fn eq_const(&mut self, a: &Word, value: u64) -> SigId {
        let lits: Vec<SigId> = a
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &bit)| {
                if value >> i & 1 == 1 {
                    bit
                } else {
                    self.b.not(bit)
                }
            })
            .collect();
        self.b.gate(GateKind::And, &lits)
    }

    /// Unsigned `a < b` (borrow out of `a - b`).
    pub fn lt(&mut self, a: &Word, b: &Word) -> SigId {
        let (_, borrow) = self.sub(a, b);
        borrow
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Ripple-carry addition: returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add(&mut self, a: &Word, b: &Word) -> (Word, SigId) {
        assert_eq!(a.width(), b.width(), "adder width mismatch");
        let mut carry = self.b.constant(false);
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits().iter().zip(b.bits()) {
            let t = self.b.xor2(x, y);
            let s = self.b.xor2(t, carry);
            let c1 = self.b.and2(x, y);
            let c2 = self.b.and2(t, carry);
            carry = self.b.or2(c1, c2);
            bits.push(s);
        }
        (Word::from_bits(bits), carry)
    }

    /// Ripple-borrow subtraction `a - b`: returns `(difference, borrow_out)`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn sub(&mut self, a: &Word, b: &Word) -> (Word, SigId) {
        assert_eq!(a.width(), b.width(), "subtractor width mismatch");
        let mut borrow = self.b.constant(false);
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits().iter().zip(b.bits()) {
            let t = self.b.xor2(x, y);
            let d = self.b.xor2(t, borrow);
            let nx = self.b.not(x);
            let b1 = self.b.and2(nx, y);
            let nt = self.b.not(t);
            let b2 = self.b.and2(nt, borrow);
            borrow = self.b.or2(b1, b2);
            bits.push(d);
        }
        (Word::from_bits(bits), borrow)
    }

    /// Increment by one: `(a + 1, carry_out)`.
    pub fn inc(&mut self, a: &Word) -> (Word, SigId) {
        let one = self.constant_word(a.width(), 1);
        self.add(a, &one)
    }

    // ------------------------------------------------------------------
    // Shifts
    // ------------------------------------------------------------------

    /// Logical shift left by a fixed amount (zero fill); pure wiring.
    pub fn shl_const(&mut self, a: &Word, amount: usize) -> Word {
        let zero = self.b.constant(false);
        let mut bits = vec![zero; amount.min(a.width())];
        bits.extend_from_slice(&a.bits()[..a.width().saturating_sub(amount)]);
        Word::from_bits(bits)
    }

    /// Logical shift right by a fixed amount (zero fill); pure wiring.
    pub fn shr_const(&mut self, a: &Word, amount: usize) -> Word {
        let zero = self.b.constant(false);
        let mut bits: Vec<SigId> = a.bits()[amount.min(a.width())..].to_vec();
        bits.resize(a.width(), zero);
        Word::from_bits(bits)
    }

    /// Barrel shifter: logical shift left by a variable amount.
    ///
    /// Elaborates one mux stage per bit of `amount` (classic log-depth
    /// barrel structure).
    pub fn shl_var(&mut self, a: &Word, amount: &Word) -> Word {
        let mut cur = a.clone();
        for (stage, &sel) in amount.bits().iter().enumerate() {
            let shifted = self.shl_const(&cur, 1 << stage);
            cur = self.mux_word(sel, &cur, &shifted);
        }
        cur
    }

    /// Barrel shifter: logical shift right by a variable amount.
    pub fn shr_var(&mut self, a: &Word, amount: &Word) -> Word {
        let mut cur = a.clone();
        for (stage, &sel) in amount.bits().iter().enumerate() {
            let shifted = self.shr_const(&cur, 1 << stage);
            cur = self.mux_word(sel, &cur, &shifted);
        }
        cur
    }

    // ------------------------------------------------------------------
    // Width adjustment and selection
    // ------------------------------------------------------------------

    /// Zero-extends (or truncates) to `width`.
    pub fn zext(&mut self, a: &Word, width: usize) -> Word {
        let zero = self.b.constant(false);
        let mut bits: Vec<SigId> = a.bits().iter().copied().take(width).collect();
        bits.resize(width, zero);
        Word::from_bits(bits)
    }

    /// One-hot decoder: output `i` is high iff `sel == i`.
    pub fn decode(&mut self, sel: &Word) -> Vec<SigId> {
        (0..1usize << sel.width())
            .map(|i| self.eq_const(sel, i as u64))
            .collect()
    }

    /// One-hot select: `sum_i (onehot[i] AND option[i])`, bit-sliced.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or option widths differ.
    pub fn onehot_select(&mut self, onehot: &[SigId], options: &[Word]) -> Word {
        assert_eq!(onehot.len(), options.len(), "onehot select arity");
        let width = options[0].width();
        assert!(options.iter().all(|o| o.width() == width), "option widths");
        let bits = (0..width)
            .map(|bit| {
                let terms: Vec<SigId> = onehot
                    .iter()
                    .zip(options)
                    .map(|(&sel, opt)| self.b.and2(sel, opt.bit(bit)))
                    .collect();
                self.b.gate(GateKind::Or, &terms)
            })
            .collect();
        Word::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use seugrade_sim::{CompiledSim, Testbench};

    use super::*;

    /// Evaluate a purely combinational module: inputs `a`,`b` of width w,
    /// outputs whatever `f` wired up; returns outputs for given values.
    fn eval2(
        width: usize,
        a_val: u64,
        b_val: u64,
        f: impl FnOnce(&mut RtlBuilder, &Word, &Word),
    ) -> Vec<bool> {
        let mut r = RtlBuilder::new("t");
        let a = r.input_word("a", width);
        let b = r.input_word("b", width);
        f(&mut r, &a, &b);
        let n = r.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        let mut vector = Vec::new();
        for i in 0..width {
            vector.push(a_val >> i & 1 == 1);
        }
        for i in 0..width {
            vector.push(b_val >> i & 1 == 1);
        }
        sim.set_inputs(&mut st, &vector);
        sim.eval(&mut st);
        sim.outputs_lane(&st, 0)
    }

    fn to_u64(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_matches_arithmetic() {
        for (a, b) in [(0u64, 0u64), (1, 1), (5, 11), (255, 1), (170, 85), (255, 255)] {
            let out = eval2(8, a, b, |r, x, y| {
                let (s, c) = r.add(x, y);
                r.output_word("s", &s);
                r.output_bit("c", c);
            });
            let sum = to_u64(&out[..8]);
            let carry = out[8];
            assert_eq!(sum, (a + b) & 0xFF, "sum {a}+{b}");
            assert_eq!(carry, a + b > 0xFF, "carry {a}+{b}");
        }
    }

    #[test]
    fn subtractor_matches_arithmetic() {
        for (a, b) in [(0u64, 0u64), (5, 3), (3, 5), (200, 100), (0, 1), (255, 255)] {
            let out = eval2(8, a, b, |r, x, y| {
                let (d, bo) = r.sub(x, y);
                r.output_word("d", &d);
                r.output_bit("bo", bo);
            });
            let diff = to_u64(&out[..8]);
            assert_eq!(diff, a.wrapping_sub(b) & 0xFF, "diff {a}-{b}");
            assert_eq!(out[8], a < b, "borrow {a}-{b}");
        }
    }

    #[test]
    fn comparisons() {
        for (a, b) in [(3u64, 3u64), (3, 4), (4, 3), (0, 255)] {
            let out = eval2(8, a, b, |r, x, y| {
                let eq = r.eq(x, y);
                let lt = r.lt(x, y);
                let zero = r.is_zero(x);
                r.output_bit("eq", eq);
                r.output_bit("lt", lt);
                r.output_bit("z", zero);
            });
            assert_eq!(out[0], a == b);
            assert_eq!(out[1], a < b);
            assert_eq!(out[2], a == 0);
        }
    }

    #[test]
    fn bitwise_ops() {
        let (a, b) = (0b1100u64, 0b1010u64);
        let out = eval2(4, a, b, |r, x, y| {
            let and = r.and(x, y);
            let or = r.or(x, y);
            let xor = r.xor(x, y);
            let not = r.not(x);
            r.output_word("and", &and);
            r.output_word("or", &or);
            r.output_word("xor", &xor);
            r.output_word("not", &not);
        });
        assert_eq!(to_u64(&out[0..4]), a & b);
        assert_eq!(to_u64(&out[4..8]), a | b);
        assert_eq!(to_u64(&out[8..12]), a ^ b);
        assert_eq!(to_u64(&out[12..16]), !a & 0xF);
    }

    #[test]
    fn variable_shifts() {
        for amt in 0u64..8 {
            let out = eval2(8, 0b1011_0110, amt, |r, x, y| {
                let amt3 = y.slice(0, 3);
                let l = r.shl_var(x, &amt3);
                let rr = r.shr_var(x, &amt3);
                r.output_word("l", &l);
                r.output_word("r", &rr);
            });
            assert_eq!(to_u64(&out[..8]), (0b1011_0110 << amt) & 0xFF, "shl {amt}");
            assert_eq!(to_u64(&out[8..]), 0b1011_0110 >> amt, "shr {amt}");
        }
    }

    #[test]
    fn const_shifts_and_zext() {
        let out = eval2(4, 0b1011, 0, |r, x, _| {
            let l2 = r.shl_const(x, 2);
            let r1 = r.shr_const(x, 1);
            let z = r.zext(x, 6);
            r.output_word("l2", &l2);
            r.output_word("r1", &r1);
            r.output_word("z", &z);
        });
        assert_eq!(to_u64(&out[0..4]), 0b1100);
        assert_eq!(to_u64(&out[4..8]), 0b0101);
        assert_eq!(to_u64(&out[8..14]), 0b1011);
    }

    #[test]
    fn eq_const_and_decode() {
        for v in 0u64..4 {
            let out = eval2(2, v, 0, |r, x, _| {
                let hot = r.decode(x);
                for (i, h) in hot.into_iter().enumerate() {
                    r.output_bit(format!("h{i}"), h);
                }
            });
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i as u64 == v, "decode {v} bit {i}");
            }
        }
    }

    #[test]
    fn onehot_select_picks_option() {
        let out = eval2(2, 0b01, 0b10, |r, x, y| {
            let hot = r.decode(&x.slice(0, 1)); // [x==0, x==1]
            let sel = r.onehot_select(&hot, &[y.clone(), x.clone()]);
            r.output_word("sel", &sel);
        });
        // x = 0b01 so x[0]=1: one-hot = [0,1], selects option 1 = x
        assert_eq!(to_u64(&out[..2]), 0b01);
    }

    #[test]
    fn register_with_enable_holds_value() {
        let mut r = RtlBuilder::new("hold");
        let en = r.input_bit("en");
        let d = r.input_word("d", 4);
        let reg = r.register("r", 4, 0b0011);
        r.connect_enabled(&reg, en, &d);
        r.output_word("q", &reg.q());
        let n = r.finish().unwrap();
        assert_eq!(n.num_ffs(), 4);
        let sim = CompiledSim::new(&n);
        let mut st = sim.new_state();
        // en=0: hold initial 0b0011 even with d=0b1111
        sim.cycle(&mut st, &[false, true, true, true, true]);
        sim.eval(&mut st);
        assert_eq!(to_u64(&sim.outputs_lane(&st, 0)), 0b0011);
        // en=1: load 0b1010
        sim.cycle(&mut st, &[true, false, true, false, true]);
        sim.eval(&mut st);
        assert_eq!(to_u64(&sim.outputs_lane(&st, 0)), 0b1010);
    }

    #[test]
    fn counter_runs() {
        let mut r = RtlBuilder::new("cnt");
        let reg = r.register("c", 5, 0);
        let (next, _) = r.inc(&reg.q());
        r.connect(&reg, &next);
        r.output_word("c", &reg.q());
        let n = r.finish().unwrap();
        let sim = CompiledSim::new(&n);
        let trace = sim.run_golden(&Testbench::constant_low(0, 10));
        for t in 0..10 {
            assert_eq!(to_u64(trace.output_at(t)), t as u64 % 32);
        }
    }

    #[test]
    fn unconnected_register_is_error() {
        let mut r = RtlBuilder::new("forgot");
        let reg = r.register("r", 2, 0);
        r.output_word("q", &reg.q());
        assert!(r.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut r = RtlBuilder::new("bad");
        let a = r.input_word("a", 3);
        let b = r.input_word("b", 4);
        let _ = r.add(&a, &b);
    }
}
