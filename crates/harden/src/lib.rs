//! Fault-tolerance hardening transforms.
//!
//! Fault grading exists to guide *hardening*: the paper's introduction
//! motivates early identification of weak areas so the design can be
//! re-engineered before fabrication. This crate closes that loop with
//! two classic SEU countermeasures, implemented as netlist transforms
//! that can be pushed straight back through the grading pipeline:
//!
//! - [`tmr`] — triple modular redundancy on every flip-flop with
//!   per-flip-flop majority voters: single bit-flips are corrected the
//!   next cycle, so graded failure rates collapse;
//! - [`dwc`] — duplication with comparison: a second copy of the state
//!   plus a mismatch alarm output, detecting (not correcting) SEUs.
//!
//! # Example
//!
//! ```
//! use seugrade_circuits::generators;
//! use seugrade_harden::tmr;
//!
//! let plain = generators::counter(4);
//! let hardened = tmr(&plain);
//! assert_eq!(hardened.num_ffs(), 12, "every flip-flop triplicated");
//! assert_eq!(hardened.num_outputs(), plain.num_outputs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use seugrade_netlist::{CellKind, GateKind, Netlist, NetlistBuilder, SigId};

/// Applies triple modular redundancy to every flip-flop.
///
/// Each original flip-flop becomes three copies fed by the same next-state
/// function; their outputs are merged by a 2-of-3 majority voter which
/// replaces the original flip-flop output everywhere (including in the
/// next-state feedback, so a corrupted copy is re-synchronized from the
/// voted value on the next clock). A single SEU in any copy therefore
/// never propagates and heals in one cycle.
///
/// Interface (inputs/outputs) is unchanged; flip-flop count triples; the
/// new flip-flop order is `[ff0_a, ff0_b, ff0_c, ff1_a, …]`.
///
/// # Panics
///
/// Panics if the circuit has no flip-flops.
#[must_use]
pub fn tmr(old: &Netlist) -> Netlist {
    assert!(old.num_ffs() > 0, "tmr needs at least one flip-flop");
    let mut b = NetlistBuilder::new(format!("{}_tmr", old.name()));
    let mut map = vec![SigId::new(0); old.num_cells()];

    for (sig, name) in old.inputs().iter().zip(old.input_names()) {
        map[sig.index()] = b.input(name.clone());
    }

    // Triplicated flip-flops + voters.
    let mut copies: Vec<[SigId; 3]> = Vec::with_capacity(old.num_ffs());
    for (k, &ff) in old.ffs().iter().enumerate() {
        let CellKind::Dff { init } = old.cell(ff).kind() else { unreachable!() };
        let trio = [b.dff(init), b.dff(init), b.dff(init)];
        for (c, q) in trio.iter().enumerate() {
            b.name_signal(*q, format!("u{k}_tmr{c}"));
        }
        let ab = b.and2(trio[0], trio[1]);
        let bc = b.and2(trio[1], trio[2]);
        let ac = b.and2(trio[0], trio[2]);
        let vote = b.gate(GateKind::Or, &[ab, bc, ac]);
        b.name_signal(vote, format!("u{k}_vote"));
        map[ff.index()] = vote;
        copies.push(trio);
    }

    for (sig, cell) in old.iter_cells() {
        if let CellKind::Const(v) = cell.kind() {
            map[sig.index()] = b.constant(v);
        }
    }
    let order = old.levelize().expect("validated netlist");
    for &sig in order.order() {
        let cell = old.cell(sig);
        let CellKind::Gate(kind) = cell.kind() else { unreachable!() };
        let pins: Vec<_> = cell.pins().iter().map(|p| map[p.index()]).collect();
        map[sig.index()] = b.gate(kind, &pins);
    }

    for (trio, &ff) in copies.iter().zip(old.ffs()) {
        let d = map[old.cell(ff).pins()[0].index()];
        for q in trio {
            b.connect_dff(*q, d).expect("tmr dff wiring");
        }
    }

    for (name, sig) in old.outputs() {
        b.output(name.clone(), map[sig.index()]);
    }
    b.finish().expect("tmr netlist is valid")
}

/// Applies duplication with comparison.
///
/// The whole register bank is duplicated (sharing the next-state logic);
/// a comparator OR-reduces the per-flip-flop mismatches into a new
/// `dwc_alarm` output appended after the original outputs. SEUs are
/// *detected* (alarm raised while the copies disagree) but not corrected.
///
/// Flip-flop order is `[ff0_main, ff0_shadow, ff1_main, …]`.
///
/// # Panics
///
/// Panics if the circuit has no flip-flops.
#[must_use]
pub fn dwc(old: &Netlist) -> Netlist {
    assert!(old.num_ffs() > 0, "dwc needs at least one flip-flop");
    let mut b = NetlistBuilder::new(format!("{}_dwc", old.name()));
    let mut map = vec![SigId::new(0); old.num_cells()];

    for (sig, name) in old.inputs().iter().zip(old.input_names()) {
        map[sig.index()] = b.input(name.clone());
    }

    let mut pairs: Vec<(SigId, SigId)> = Vec::with_capacity(old.num_ffs());
    for (k, &ff) in old.ffs().iter().enumerate() {
        let CellKind::Dff { init } = old.cell(ff).kind() else { unreachable!() };
        let main = b.dff(init);
        let shadow = b.dff(init);
        b.name_signal(main, format!("u{k}_main"));
        b.name_signal(shadow, format!("u{k}_shadow"));
        map[ff.index()] = main;
        pairs.push((main, shadow));
    }

    for (sig, cell) in old.iter_cells() {
        if let CellKind::Const(v) = cell.kind() {
            map[sig.index()] = b.constant(v);
        }
    }
    let order = old.levelize().expect("validated netlist");
    for &sig in order.order() {
        let cell = old.cell(sig);
        let CellKind::Gate(kind) = cell.kind() else { unreachable!() };
        let pins: Vec<_> = cell.pins().iter().map(|p| map[p.index()]).collect();
        map[sig.index()] = b.gate(kind, &pins);
    }

    let mut mismatches = Vec::with_capacity(old.num_ffs());
    for ((main, shadow), &ff) in pairs.iter().zip(old.ffs()) {
        let d = map[old.cell(ff).pins()[0].index()];
        b.connect_dff(*main, d).expect("dwc main wiring");
        b.connect_dff(*shadow, d).expect("dwc shadow wiring");
        mismatches.push(b.xor2(*main, *shadow));
    }
    let alarm = if mismatches.len() == 1 {
        b.buf(mismatches[0])
    } else {
        b.gate(GateKind::Or, &mismatches)
    };

    for (name, sig) in old.outputs() {
        b.output(name.clone(), map[sig.index()]);
    }
    b.output("dwc_alarm", alarm);
    b.finish().expect("dwc netlist is valid")
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;
    use seugrade_faultsim::{FaultClass, FaultList, Grader, GradingSummary};
    use seugrade_sim::{CompiledSim, Testbench};

    use super::*;

    #[test]
    fn tmr_preserves_function() {
        for name in ["b01s", "b02s", "b06s"] {
            let plain = seugrade_circuits::registry::build(name).unwrap();
            let hard = tmr(&plain);
            let tb = Testbench::random(plain.num_inputs(), 50, 3);
            let a = CompiledSim::new(&plain).run_golden(&tb);
            let b = CompiledSim::new(&hard).run_golden(&tb);
            for t in 0..50 {
                assert_eq!(a.output_at(t), b.output_at(t), "{name} cycle {t}");
            }
        }
    }

    #[test]
    fn dwc_preserves_function_and_is_quiet() {
        let plain = generators::lfsr(6, &[5, 4]);
        let hard = dwc(&plain);
        let tb = Testbench::constant_low(0, 40);
        let a = CompiledSim::new(&plain).run_golden(&tb);
        let b = CompiledSim::new(&hard).run_golden(&tb);
        for t in 0..40 {
            let outs = b.output_at(t);
            assert_eq!(a.output_at(t), &outs[..outs.len() - 1], "cycle {t}");
            assert!(!outs[outs.len() - 1], "alarm quiet in fault-free run");
        }
    }

    #[test]
    fn tmr_eliminates_failures() {
        // LFSR: unhardened, every fault is an immediate failure;
        // hardened, every fault must be silent (voted away next cycle).
        let plain = generators::lfsr(6, &[5, 4]);
        let tb = Testbench::constant_low(0, 20);
        let g_plain = Grader::new(&plain, &tb);
        let faults = FaultList::exhaustive(6, 20);
        let plain_sum =
            GradingSummary::from_outcomes(&g_plain.run_parallel(faults.as_slice()));
        assert_eq!(plain_sum.count(FaultClass::Failure), 120);

        let hard = tmr(&plain);
        let g_hard = Grader::new(&hard, &tb);
        let hard_faults = FaultList::exhaustive(18, 20);
        let hard_sum =
            GradingSummary::from_outcomes(&g_hard.run_parallel(hard_faults.as_slice()));
        assert_eq!(hard_sum.count(FaultClass::Failure), 0, "{hard_sum}");
        assert_eq!(hard_sum.count(FaultClass::Silent), 18 * 20);
    }

    #[test]
    fn dwc_raises_alarm_on_fault() {
        // A fault in a main flip-flop must trip the alarm output, i.e.
        // grade as Failure in the hardened circuit.
        let plain = generators::counter(4);
        let hard = dwc(&plain);
        let tb = Testbench::constant_low(0, 10);
        let g = Grader::new(&hard, &tb);
        let faults = FaultList::exhaustive(8, 10);
        let outcomes = g.run_parallel(faults.as_slice());
        let summary = GradingSummary::from_outcomes(&outcomes);
        assert_eq!(
            summary.count(FaultClass::Failure),
            80,
            "every copy flip is detected: {summary}"
        );
    }

    #[test]
    fn tmr_cost_is_three_x_ffs() {
        let plain = generators::counter(5);
        let hard = tmr(&plain);
        assert_eq!(hard.num_ffs(), 15);
        assert!(hard.num_gates() > plain.num_gates(), "voters added");
    }

    #[test]
    fn transforms_reject_combinational_circuits() {
        let mut b = NetlistBuilder::new("comb");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish().unwrap();
        assert!(std::panic::catch_unwind(|| tmr(&n)).is_err());
        assert!(std::panic::catch_unwind(|| dwc(&n)).is_err());
    }
}
