//! Shared emitter identifier legalization.
//!
//! Net names that are perfectly legal in one format can be reserved or
//! unrepresentable in another: `module` is a fine `.bench` net but a
//! Verilog keyword, `a.b` survives SNL but a leading `.` would turn a
//! BLIF token into a directive, and whitespace breaks every one of the
//! line-oriented grammars. Every emitter therefore funnels its tokens
//! through [`EmitNames`], which keeps names that are already legal and
//! unique for the target format verbatim (so round-trips preserve real
//! benchmark names) and deterministically rewrites the rest.
//!
//! The rewrite rules are:
//!
//! 1. characters outside `[A-Za-z0-9_]` become `_`;
//! 2. names that are still illegal (keywords, leading digits, empty
//!    strings) gain an `esc_` prefix — the result is alphabetic-led and
//!    alphanumeric, which is legal in all supported formats;
//! 3. collisions append `_2`, `_3`, … until the token is unique.
//!
//! Internal (non-input) nets are numbered `<prefix><id>` where the
//! prefix starts at `n` and grows underscores until no claimed token
//! could collide with it — the scheme the `.bench` emitter has always
//! used, now shared by every format.

use std::collections::HashSet;

use crate::{CellKind, Netlist, SigId};

/// Per-format token legality predicate.
pub(crate) type Legal = fn(&str) -> bool;

/// `.bench` tokens: printable ASCII without the structural characters
/// of the grammar (`(`, `)`, `,`, `=`) or the comment introducer `#`.
pub(crate) fn bench_legal(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_graphic() && !"(),=#".contains(c))
}

/// BLIF tokens: printable ASCII, no `#` (comment), no `\` (line
/// continuation), and no leading `.` (would read as a directive).
pub(crate) fn blif_legal(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with('.')
        && s.chars().all(|c| c.is_ascii_graphic() && c != '#' && c != '\\')
}

/// SNL tokens: printable ASCII without the comment introducer `#`.
/// Keywords are fine — net tokens never appear in statement-head
/// position in the SNL grammar.
pub(crate) fn snl_legal(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_graphic() && c != '#')
}

/// Keywords of the structural Verilog subset (plus the common reserved
/// words a downstream Verilog tool would trip over).
const VLOG_KEYWORDS: &[&str] = &[
    "module", "endmodule", "input", "output", "inout", "wire", "reg", "assign",
    "and", "or", "nand", "nor", "xor", "xnor", "not", "buf", "mux", "dff",
    "begin", "end", "always", "initial", "if", "else", "case", "endcase",
    "posedge", "negedge", "parameter", "supply0", "supply1",
];

/// Verilog simple identifiers: `[A-Za-z_][A-Za-z0-9_$]*`, not a keyword.
pub(crate) fn vlog_legal(s: &str) -> bool {
    let mut chars = s.chars();
    let head_ok = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    head_ok
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !VLOG_KEYWORDS.contains(&s)
}

/// Legalizes one free-standing name (a model/module name, outside any
/// net namespace).
pub(crate) fn legalize(raw: &str, legal: Legal) -> String {
    if legal(raw) {
        return raw.to_owned();
    }
    let mut t: String = raw
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if !legal(&t) {
        t = format!("esc_{t}");
    }
    debug_assert!(legal(&t), "legalization failed for `{raw}`");
    t
}

/// A per-emitter mapping from signals to target-format tokens.
pub(crate) struct EmitNames {
    tokens: Vec<String>,
    used: HashSet<String>,
    legal: Legal,
}

impl EmitNames {
    /// Plans tokens for every cell of `netlist`: inputs keep their port
    /// names where legal and unique, everything else is `<prefix><id>`.
    pub(crate) fn new(netlist: &Netlist, legal: Legal) -> Self {
        let mut this = EmitNames {
            tokens: Vec::with_capacity(netlist.num_cells()),
            used: HashSet::new(),
            legal,
        };
        let input_tokens: Vec<String> = netlist
            .input_names()
            .iter()
            .map(|name| this.fresh(name))
            .collect();

        // Internal nets are numbered `<prefix><id>`; grow the prefix
        // until no claimed token can collide with it (real suites
        // routinely name inputs `n1`, `n2`, …).
        let mut prefix = "n".to_owned();
        while this.used.iter().any(|t| {
            t.strip_prefix(&prefix)
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        }) {
            prefix.push('_');
        }

        for (id, cell) in netlist.iter_cells() {
            let token = if matches!(cell.kind(), CellKind::Input) {
                let pos = netlist
                    .inputs()
                    .iter()
                    .position(|&i| i == id)
                    .expect("input cell is registered as an input");
                input_tokens[pos].clone()
            } else {
                let t = format!("{prefix}{}", id.index());
                this.used.insert(t.clone());
                t
            };
            this.tokens.push(token);
        }
        this
    }

    /// The planned token for a signal.
    pub(crate) fn token(&self, sig: SigId) -> &str {
        &self.tokens[sig.index()]
    }

    /// Claims one more token (an output-port alias, a synthesized
    /// intermediate net): `want` is kept when legal and unused, and
    /// legalized/deduplicated otherwise.
    pub(crate) fn fresh(&mut self, want: &str) -> String {
        let base = legalize(want, self.legal);
        let mut candidate = base.clone();
        let mut k = 2;
        while !self.used.insert(candidate.clone()) {
            candidate = format!("{base}_{k}");
            k += 1;
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn legality_predicates() {
        assert!(bench_legal("G17") && !bench_legal("a,b") && !bench_legal("a b"));
        assert!(!bench_legal("x=y") && !bench_legal("") && !bench_legal("a#b"));
        assert!(blif_legal("n1") && !blif_legal(".names") && !blif_legal("a\\b"));
        assert!(snl_legal("a.b$c") && !snl_legal("a b") && !snl_legal("#x"));
        assert!(vlog_legal("_q$1") && !vlog_legal("module") && !vlog_legal("2x"));
        assert!(!vlog_legal("a.b") && !vlog_legal(""));
    }

    #[test]
    fn legal_names_survive_untouched() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("G0");
        let g = b.not(a);
        b.output("y", g);
        let n = b.finish().unwrap();
        let names = EmitNames::new(&n, vlog_legal);
        assert_eq!(names.token(n.inputs()[0]), "G0");
        assert_eq!(names.token(g), "n1");
    }

    #[test]
    fn keywords_and_illegal_chars_are_rewritten() {
        let mut b = NetlistBuilder::new("t");
        let m = b.input("module");
        let w = b.input("a b");
        let g = b.and2(m, w);
        b.output("y", g);
        let n = b.finish().unwrap();
        let names = EmitNames::new(&n, vlog_legal);
        assert_eq!(names.token(n.inputs()[0]), "esc_module");
        assert_eq!(names.token(n.inputs()[1]), "a_b");
        // The same names are fine in `.bench`, so they stay put there.
        let names = EmitNames::new(&n, bench_legal);
        assert_eq!(names.token(n.inputs()[0]), "module");
        assert_eq!(names.token(n.inputs()[1]), "a_b");
    }

    #[test]
    fn collisions_get_numeric_suffixes_and_prefix_grows() {
        let mut b = NetlistBuilder::new("t");
        // `a b` and `a.b` both sanitize to `a_b`; `n2` forces the
        // internal prefix away from bare `n`.
        let x = b.input("a b");
        let y = b.input("a.b");
        let z = b.input("n2");
        let g = b.gate(crate::GateKind::And, &[x, y, z]);
        b.output("y", g);
        let n = b.finish().unwrap();
        let mut names = EmitNames::new(&n, vlog_legal);
        assert_eq!(names.token(x), "a_b");
        assert_eq!(names.token(y), "a_b_2");
        assert_eq!(names.token(z), "n2");
        assert_eq!(names.token(g), "n_3");
        // Fresh claims dodge everything already planned.
        assert_eq!(names.fresh("a_b"), "a_b_3");
        assert_eq!(names.fresh("ok"), "ok");
    }
}
