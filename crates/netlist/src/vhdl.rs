//! ITC'99-style VHDL subset frontend (import only).
//!
//! The subset covers the shape the ITC'99 benchmark circuits and
//! synthesis netlists share: one entity with scalar `std_logic` ports,
//! one architecture with signal declarations, concurrent signal
//! assignments over the logical operators, and clocked processes that
//! infer D flip-flops:
//!
//! ```text
//! -- comment
//! library ieee;                       -- library/use clauses are skipped
//! use ieee.std_logic_1164.all;
//!
//! entity toggle is
//!   port (
//!     clk : in  std_logic;
//!     en  : in  std_logic;
//!     q   : out std_logic
//!   );
//! end toggle;
//!
//! architecture rtl of toggle is
//!   signal q_i : std_logic := '0';    -- := sets the power-on value
//!   signal nx  : std_logic;
//! begin
//!   nx <= en xor q_i;
//!   q  <= q_i;
//!   process (clk)
//!   begin
//!     if rising_edge(clk) then        -- or: if clk'event and clk = '1' then
//!       q_i <= nx;
//!     end if;
//!   end process;
//! end rtl;
//! ```
//!
//! Keywords are matched case-insensitively (identifiers are
//! case-sensitive in this subset — a documented deviation from full
//! VHDL). Expressions follow VHDL's operator rules: all logical binary
//! operators share one precedence level, chains of the *same*
//! associative operator are allowed (`a and b and c` lowers to one
//! n-ary gate), mixing different operators requires parentheses, and
//! `nand`/`nor` are non-associative. `not` is unary and binds tightest.
//! Expression nesting is depth-capped so hostile inputs cannot blow the
//! stack.
//!
//! The clock is inferred from the process condition (`rising_edge(clk)`
//! or `clk'event and clk = '1'`), must be an `in` port, is excluded
//! from the netlist's primary inputs, and may not be read as data.
//! Every clocked process in the file must use the same clock, matching
//! the IR's single global clock. `:=` defaults are only meaningful on
//! registered signals (they become flip-flop power-on values); a
//! default on a combinational signal or port is rejected.
//!
//! Lowering, duplicate/undefined-net diagnostics and validation are
//! shared with every other frontend through [`crate::import`]; the
//! grammar is specified in `docs/FORMATS.md`. Parse-layer errors carry
//! 1-based line numbers (see the [error contract](crate::NetlistError)).
//!
//! # Example
//!
//! ```
//! let src = "\
//! entity toggle is
//!   port (clk : in std_logic; en : in std_logic; q : out std_logic);
//! end toggle;
//! architecture rtl of toggle is
//!   signal q_i : std_logic := '1';
//!   signal nx : std_logic;
//! begin
//!   nx <= en xor q_i;
//!   q <= q_i;
//!   process (clk)
//!   begin
//!     if rising_edge(clk) then
//!       q_i <= nx;
//!     end if;
//!   end process;
//! end rtl;
//! ";
//! let n = seugrade_netlist::vhdl::parse(src)?;
//! assert_eq!(n.num_ffs(), 1);
//! assert_eq!(n.num_inputs(), 1); // clk is the clock, not data
//! assert_eq!(n.ff_init_values(), vec![true]);
//! # Ok::<(), seugrade_netlist::NetlistError>(())
//! ```

use std::collections::{HashMap, HashSet};

use crate::import::{lower, Stmt};
use crate::{GateKind, Netlist, NetlistError};

/// Maximum expression nesting depth (parentheses plus `not` chains).
/// Deeper sources are rejected with a line-numbered error instead of
/// risking parser stack exhaustion on hostile input.
const MAX_EXPR_DEPTH: usize = 64;

/// One lexical token; identifiers borrow from the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tok<'a> {
    /// Identifier or keyword (keywords match case-insensitively).
    Id(&'a str),
    /// Bare integer (only legal inside skipped library/use clauses).
    Num(&'a str),
    /// One of `( ) ; : , = .`.
    Sym(char),
    /// `<=`
    LArrow,
    /// `:=`
    ColonEq,
    /// `'0'` or `'1'`.
    Bit(bool),
    /// A lone `'` — the attribute tick in `clk'event`.
    Tick,
}

fn parse_err(line: usize, msg: impl Into<String>) -> NetlistError {
    NetlistError::Parse { line, msg: msg.into() }
}

/// Human-readable token for error messages.
fn show(tok: Tok<'_>) -> String {
    match tok {
        Tok::Id(id) => format!("`{id}`"),
        Tok::Num(n) => format!("number `{n}`"),
        Tok::Sym(c) => format!("`{c}`"),
        Tok::LArrow => "`<=`".into(),
        Tok::ColonEq => "`:=`".into(),
        Tok::Bit(v) => format!("`'{}'`", u8::from(v)),
        Tok::Tick => "`'`".into(),
    }
}

/// Tokenizes the source, tracking 1-based lines through `--` comments.
fn lex(src: &str) -> Result<Vec<(usize, Tok<'_>)>, NetlistError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'-' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    return Err(parse_err(line, "unexpected `-`"));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((line, Tok::LArrow));
                    i += 2;
                } else {
                    return Err(parse_err(line, "unexpected `<`"));
                }
            }
            b':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((line, Tok::ColonEq));
                    i += 2;
                } else {
                    toks.push((line, Tok::Sym(':')));
                    i += 1;
                }
            }
            b'\'' => {
                // `'0'`/`'1'` is a bit literal; any other tick is the
                // attribute quote of `clk'event`.
                if matches!(bytes.get(i + 1), Some(b'0' | b'1'))
                    && bytes.get(i + 2) == Some(&b'\'')
                {
                    toks.push((line, Tok::Bit(bytes[i + 1] == b'1')));
                    i += 3;
                } else {
                    toks.push((line, Tok::Tick));
                    i += 1;
                }
            }
            b'(' | b')' | b';' | b',' | b'=' | b'.' => {
                toks.push((line, Tok::Sym(c as char)));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((line, Tok::Id(&src[start..i])));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                toks.push((line, Tok::Num(&src[start..i])));
            }
            other => {
                return Err(parse_err(
                    line,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        }
    }
    Ok(toks)
}

/// Case-insensitive keyword comparison (VHDL keywords are
/// case-insensitive).
fn kw_eq(id: &str, kw: &str) -> bool {
    id.eq_ignore_ascii_case(kw)
}

/// Keywords of the subset grammar, rejected as identifiers.
fn is_keyword(s: &str) -> bool {
    const KEYWORDS: &[&str] = &[
        "and", "architecture", "begin", "else", "elsif", "end", "entity", "if", "in",
        "inout", "is", "library", "nand", "nor", "not", "of", "or", "out", "port",
        "process", "signal", "then", "use", "xnor", "xor",
    ];
    KEYWORDS.iter().any(|kw| kw_eq(s, kw))
}

/// Maps a logical-operator keyword to the IR gate kind.
fn logical_op(id: &str) -> Option<GateKind> {
    for (kw, kind) in [
        ("and", GateKind::And),
        ("or", GateKind::Or),
        ("nand", GateKind::Nand),
        ("nor", GateKind::Nor),
        ("xor", GateKind::Xor),
        ("xnor", GateKind::Xnor),
    ] {
        if kw_eq(id, kw) {
            return Some(kind);
        }
    }
    None
}

/// Expression AST; references keep their source line for the
/// clock-as-data diagnostic.
enum Expr {
    Ref(String, usize),
    Lit(bool),
    Not(Box<Expr>),
    Op(GateKind, Vec<Expr>),
}

/// Owned statement list built during parsing; borrowed [`Stmt`]s are
/// materialized from it once every name (including generated temps)
/// has stable storage.
enum OStmt {
    Input { name: String },
    Const { net: String, value: bool },
    Gate { kind: GateKind, net: String, pins: Vec<String> },
    Dff { net: String, init: bool, d: String },
    Output { name: String },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    In,
    Out,
}

/// Token-stream cursor with line-carrying errors.
struct Parser<'a> {
    toks: Vec<(usize, Tok<'a>)>,
    pos: usize,
    /// Line reported for unexpected end-of-file.
    eof_line: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<(usize, Tok<'a>)> {
        self.toks.get(self.pos).copied()
    }

    fn next(&mut self) -> Result<(usize, Tok<'a>), NetlistError> {
        let t = self
            .peek()
            .ok_or_else(|| parse_err(self.eof_line, "unexpected end of file"))?;
        self.pos += 1;
        Ok(t)
    }

    fn line(&self) -> usize {
        self.peek().map_or(self.eof_line, |(l, _)| l)
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some((_, Tok::Id(id))) if kw_eq(id, kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<usize, NetlistError> {
        let Some((line, tok)) = self.peek() else {
            return Err(parse_err(
                self.eof_line,
                format!("expected `{kw}`, found end of file"),
            ));
        };
        self.pos += 1;
        match tok {
            Tok::Id(id) if kw_eq(id, kw) => Ok(line),
            other => Err(parse_err(line, format!("expected `{kw}`, found {}", show(other)))),
        }
    }

    fn eat_sym(&mut self, sym: char) -> bool {
        if let Some((_, Tok::Sym(c))) = self.peek() {
            if c == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, sym: char) -> Result<(), NetlistError> {
        let Some((line, tok)) = self.peek() else {
            return Err(parse_err(
                self.eof_line,
                format!("expected `{sym}`, found end of file"),
            ));
        };
        self.pos += 1;
        match tok {
            Tok::Sym(c) if c == sym => Ok(()),
            other => Err(parse_err(line, format!("expected `{sym}`, found {}", show(other)))),
        }
    }

    fn expect_tok(&mut self, want: Tok<'_>, what: &str) -> Result<(), NetlistError> {
        let Some((line, tok)) = self.peek() else {
            return Err(parse_err(
                self.eof_line,
                format!("expected {what}, found end of file"),
            ));
        };
        self.pos += 1;
        if tok == want {
            Ok(())
        } else {
            Err(parse_err(line, format!("expected {what}, found {}", show(tok))))
        }
    }

    /// A port/signal/entity identifier; keywords are rejected.
    fn ident(&mut self) -> Result<(&'a str, usize), NetlistError> {
        let (line, tok) = self.next()?;
        match tok {
            Tok::Id(id) if !is_keyword(id) => Ok((id, line)),
            Tok::Id(id) => Err(parse_err(
                line,
                format!("`{id}` is a keyword and cannot be used as a name"),
            )),
            other => Err(parse_err(line, format!("expected a name, found {}", show(other)))),
        }
    }

    /// Parses a logical expression: factors joined by one operator kind
    /// (VHDL's single logical precedence level; mixing requires
    /// parentheses, `nand`/`nor` are non-associative).
    fn parse_expr(&mut self, depth: usize) -> Result<Expr, NetlistError> {
        let first = self.parse_factor(depth)?;
        let Some((_, op)) = self.peek_logical_op() else {
            return Ok(first);
        };
        self.pos += 1;
        let mut operands = vec![first, self.parse_factor(depth)?];
        while let Some((line, next_op)) = self.peek_logical_op() {
            if next_op != op {
                return Err(parse_err(
                    line,
                    format!(
                        "mixing `{}` and `{}` requires parentheses",
                        op.mnemonic(),
                        next_op.mnemonic()
                    ),
                ));
            }
            if matches!(op, GateKind::Nand | GateKind::Nor) {
                return Err(parse_err(
                    line,
                    format!("`{}` is not associative; use parentheses", op.mnemonic()),
                ));
            }
            self.pos += 1;
            operands.push(self.parse_factor(depth)?);
        }
        Ok(Expr::Op(op, operands))
    }

    fn peek_logical_op(&self) -> Option<(usize, GateKind)> {
        match self.peek() {
            Some((line, Tok::Id(id))) => logical_op(id).map(|k| (line, k)),
            _ => None,
        }
    }

    fn parse_factor(&mut self, depth: usize) -> Result<Expr, NetlistError> {
        let Some(depth) = depth.checked_sub(1) else {
            return Err(parse_err(
                self.line(),
                format!("expression nested deeper than {MAX_EXPR_DEPTH} levels"),
            ));
        };
        let (line, tok) = self.next()?;
        match tok {
            Tok::Id(id) if kw_eq(id, "not") => {
                Ok(Expr::Not(Box::new(self.parse_factor(depth)?)))
            }
            Tok::Sym('(') => {
                let e = self.parse_expr(depth)?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Tok::Bit(v) => Ok(Expr::Lit(v)),
            Tok::Id(id) if !is_keyword(id) => Ok(Expr::Ref(id.to_owned(), line)),
            other => Err(parse_err(
                line,
                format!("expected an expression, found {}", show(other)),
            )),
        }
    }
}

/// Flattening context: expression trees become gate/const statements
/// over generated `$vhd$t<k>` temporaries (VHDL identifiers cannot
/// contain `$`, so temps never collide with source names).
struct Flat {
    stmts: Vec<(usize, OStmt)>,
    tmp: usize,
    /// Every data reference with its line, for the clock-as-data check.
    refs: Vec<(String, usize)>,
}

impl Flat {
    fn temp(&mut self) -> String {
        let name = format!("$vhd$t{}", self.tmp);
        self.tmp += 1;
        name
    }

    /// Lowers `expr`, returning the net holding its value. With
    /// `target`, the top-level node drives that net directly (a plain
    /// reference becomes a buffer, a literal a constant).
    fn flatten(&mut self, expr: &Expr, line: usize, target: Option<&str>) -> String {
        match expr {
            Expr::Ref(name, rline) => {
                self.refs.push((name.clone(), *rline));
                if let Some(t) = target {
                    self.stmts.push((
                        line,
                        OStmt::Gate {
                            kind: GateKind::Buf,
                            net: t.to_owned(),
                            pins: vec![name.clone()],
                        },
                    ));
                    t.to_owned()
                } else {
                    name.clone()
                }
            }
            Expr::Lit(value) => {
                let net = target.map_or_else(|| self.temp(), str::to_owned);
                self.stmts.push((line, OStmt::Const { net: net.clone(), value: *value }));
                net
            }
            Expr::Not(inner) => {
                let pin = self.flatten(inner, line, None);
                let net = target.map_or_else(|| self.temp(), str::to_owned);
                self.stmts.push((
                    line,
                    OStmt::Gate { kind: GateKind::Not, net: net.clone(), pins: vec![pin] },
                ));
                net
            }
            Expr::Op(kind, operands) => {
                let pins: Vec<String> =
                    operands.iter().map(|o| self.flatten(o, line, None)).collect();
                let net = target.map_or_else(|| self.temp(), str::to_owned);
                self.stmts.push((
                    line,
                    OStmt::Gate { kind: *kind, net: net.clone(), pins },
                ));
                net
            }
        }
    }
}

/// Accepted scalar signal types.
fn check_type(p: &mut Parser<'_>) -> Result<(), NetlistError> {
    let (id, line) = p.ident()?;
    if kw_eq(id, "std_logic") || kw_eq(id, "std_ulogic") || kw_eq(id, "bit") {
        Ok(())
    } else {
        Err(parse_err(
            line,
            format!("unsupported type `{id}` (expected std_logic, std_ulogic or bit)"),
        ))
    }
}

/// Parses the clock condition of a clocked process and returns the
/// clock signal name and its line. Accepted forms:
/// `rising_edge(<clk>)` and `<clk>'event and <clk> = '1'`.
fn parse_clock_condition<'a>(p: &mut Parser<'a>) -> Result<(&'a str, usize), NetlistError> {
    if p.at_kw("rising_edge") {
        p.pos += 1;
        p.expect_sym('(')?;
        let clk = p.ident()?;
        p.expect_sym(')')?;
        return Ok(clk);
    }
    let (clk, cline) = p.ident()?;
    p.expect_tok(Tok::Tick, "`'event`")?;
    let (aline, atok) = p.next()?;
    match atok {
        Tok::Id(id) if kw_eq(id, "event") => {}
        other => {
            return Err(parse_err(
                aline,
                format!("expected `event`, found {}", show(other)),
            ))
        }
    }
    p.expect_kw("and")?;
    let (clk2, l2) = p.ident()?;
    if clk2 != clk {
        return Err(parse_err(
            l2,
            format!("clock condition mixes `{clk}` and `{clk2}`"),
        ));
    }
    p.expect_sym('=')?;
    let (bline, btok) = p.next()?;
    match btok {
        Tok::Bit(true) => {}
        Tok::Bit(false) => {
            return Err(parse_err(
                bline,
                "falling-edge clocks are not supported (expected `= '1'`)",
            ))
        }
        other => {
            return Err(parse_err(
                bline,
                format!("expected `'1'`, found {}", show(other)),
            ))
        }
    }
    Ok((clk, cline))
}

/// Parses VHDL-subset text into a validated [`Netlist`].
///
/// The entity name becomes the netlist name; `in` ports (minus the
/// inferred clock) become primary inputs in declaration order and
/// `out` ports become primary outputs.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for lexical and grammatical errors
/// (unsupported constructs, operator mixing without parentheses,
/// misplaced defaults, clock violations), [`NetlistError::UnknownNet`]
/// for signals never driven, and any validation error from the shared
/// lowering. All parse-layer errors carry 1-based line numbers.
pub fn parse(src: &str) -> Result<Netlist, NetlistError> {
    let toks = lex(src)?;
    let eof_line = src.lines().count().max(1);
    let mut p = Parser { toks, pos: 0, eof_line };

    // Library and use clauses carry no netlist information; skip them.
    while p.at_kw("library") || p.at_kw("use") {
        loop {
            let (_, tok) = p.next()?;
            if tok == Tok::Sym(';') {
                break;
            }
        }
    }

    // entity <name> is port ( ... ); end [entity] [<name>];
    p.expect_kw("entity")?;
    let (entity_name, _) = p.ident()?;
    p.expect_kw("is")?;
    p.expect_kw("port")?;
    p.expect_sym('(')?;

    // Port name -> (direction, declaration line, `:=` default).
    let mut ports: Vec<(String, Dir, usize, Option<bool>)> = Vec::new();
    let mut known: HashMap<String, usize> = HashMap::new();
    loop {
        let mut group: Vec<(String, usize)> = Vec::new();
        loop {
            let (id, line) = p.ident()?;
            group.push((id.to_owned(), line));
            if p.eat_sym(',') {
                continue;
            }
            break;
        }
        p.expect_sym(':')?;
        let (dline, dtok) = p.next()?;
        let dir = match dtok {
            Tok::Id(id) if kw_eq(id, "in") => Dir::In,
            Tok::Id(id) if kw_eq(id, "out") => Dir::Out,
            Tok::Id(id) if kw_eq(id, "inout") => {
                return Err(parse_err(dline, "`inout` ports are not supported"));
            }
            other => {
                return Err(parse_err(
                    dline,
                    format!("expected `in` or `out`, found {}", show(other)),
                ));
            }
        };
        check_type(&mut p)?;
        let default = if let Some((_, Tok::ColonEq)) = p.peek() {
            p.pos += 1;
            let (bline, btok) = p.next()?;
            match btok {
                Tok::Bit(v) => Some((v, bline)),
                other => {
                    return Err(parse_err(
                        bline,
                        format!("expected `'0'` or `'1'` after `:=`, found {}", show(other)),
                    ));
                }
            }
        } else {
            None
        };
        for (name, line) in group {
            if dir == Dir::In {
                if let Some((_, bline)) = default {
                    return Err(parse_err(
                        bline,
                        format!("default value on input port `{name}` is not supported"),
                    ));
                }
            }
            if known.insert(name.clone(), line).is_some() {
                return Err(parse_err(line, format!("`{name}` declared twice")));
            }
            ports.push((name, dir, line, default.map(|(v, _)| v)));
        }
        if p.eat_sym(';') {
            if p.eat_sym(')') {
                // Tolerate `...; )` — some emitters leave a trailing
                // semicolon before the closing parenthesis.
                break;
            }
            continue;
        }
        p.expect_sym(')')?;
        break;
    }
    p.expect_sym(';')?;
    p.expect_kw("end")?;
    p.eat_kw("entity");
    if matches!(p.peek(), Some((_, Tok::Id(id))) if !is_keyword(id)) {
        p.pos += 1;
    }
    p.expect_sym(';')?;

    // architecture <arch> of <entity> is <signal decls> begin
    p.expect_kw("architecture")?;
    p.ident()?;
    p.expect_kw("of")?;
    let (of_name, of_line) = p.ident()?;
    if of_name != entity_name {
        return Err(parse_err(
            of_line,
            format!("architecture is of `{of_name}` but the entity is `{entity_name}`"),
        ));
    }
    p.expect_kw("is")?;

    // Signal name -> (declaration line, default).
    let mut signals: HashMap<String, (usize, Option<(bool, usize)>)> = HashMap::new();
    let mut signal_order: Vec<String> = Vec::new();
    while p.eat_kw("signal") {
        let mut group: Vec<(String, usize)> = Vec::new();
        loop {
            let (id, line) = p.ident()?;
            group.push((id.to_owned(), line));
            if p.eat_sym(',') {
                continue;
            }
            break;
        }
        p.expect_sym(':')?;
        check_type(&mut p)?;
        let default = if let Some((_, Tok::ColonEq)) = p.peek() {
            p.pos += 1;
            let (bline, btok) = p.next()?;
            match btok {
                Tok::Bit(v) => Some((v, bline)),
                other => {
                    return Err(parse_err(
                        bline,
                        format!("expected `'0'` or `'1'` after `:=`, found {}", show(other)),
                    ));
                }
            }
        } else {
            None
        };
        p.expect_sym(';')?;
        for (name, line) in group {
            if known.insert(name.clone(), line).is_some() {
                return Err(parse_err(line, format!("`{name}` declared twice")));
            }
            signals.insert(name.clone(), (line, default));
            signal_order.push(name);
        }
    }
    p.expect_kw("begin")?;

    // Concurrent statements: `<target> <= <expr>;` and clocked
    // processes.
    let mut flat = Flat { stmts: Vec::new(), tmp: 0, refs: Vec::new() };
    let mut clock: Option<(String, usize)> = None;
    let mut ff_targets: HashSet<String> = HashSet::new();
    let port_default = |ports: &[(String, Dir, usize, Option<bool>)], name: &str| {
        ports
            .iter()
            .find(|(n, ..)| n == name)
            .and_then(|(_, _, _, d)| *d)
    };
    loop {
        if p.at_kw("end") {
            break;
        }
        if p.eat_kw("process") {
            // process (<sensitivity>) [is] begin if <clock-cond> then
            p.expect_sym('(')?;
            loop {
                p.ident()?;
                if p.eat_sym(',') {
                    continue;
                }
                p.expect_sym(')')?;
                break;
            }
            p.eat_kw("is");
            p.expect_kw("begin")?;
            p.expect_kw("if")?;
            let (clk, cline) = parse_clock_condition(&mut p)?;
            p.expect_kw("then")?;
            match &clock {
                None => clock = Some((clk.to_owned(), cline)),
                Some((prev, _)) if prev == clk => {}
                Some((prev, _)) => {
                    return Err(parse_err(
                        cline,
                        format!("process clocked by `{clk}`, but `{prev}` is already the clock"),
                    ));
                }
            }
            // Registered assignments until `end if`.
            loop {
                if p.eat_kw("end") {
                    let (eline, etok) = p.next()?;
                    match etok {
                        Tok::Id(id) if kw_eq(id, "if") => {}
                        other => {
                            return Err(parse_err(
                                eline,
                                format!("expected `if` after `end`, found {}", show(other)),
                            ));
                        }
                    }
                    p.expect_sym(';')?;
                    break;
                }
                if p.at_kw("elsif") || p.at_kw("else") {
                    return Err(parse_err(
                        p.line(),
                        "`elsif`/`else` branches are not supported in clocked processes",
                    ));
                }
                let (tgt, tline) = p.ident()?;
                p.expect_tok(Tok::LArrow, "`<=`")?;
                let expr = p.parse_expr(MAX_EXPR_DEPTH)?;
                p.expect_sym(';')?;
                let init = signals
                    .get(tgt)
                    .and_then(|(_, d)| d.map(|(v, _)| v))
                    .or_else(|| port_default(&ports, tgt))
                    .unwrap_or(false);
                let d_net = flat.flatten(&expr, tline, None);
                ff_targets.insert(tgt.to_owned());
                flat.stmts.push((
                    tline,
                    OStmt::Dff { net: tgt.to_owned(), init, d: d_net },
                ));
            }
            p.expect_kw("end")?;
            p.expect_kw("process")?;
            if matches!(p.peek(), Some((_, Tok::Id(id))) if !is_keyword(id)) {
                p.pos += 1;
            }
            p.expect_sym(';')?;
            continue;
        }
        let (tgt, tline) = p.ident()?;
        p.expect_tok(Tok::LArrow, "`<=`")?;
        let expr = p.parse_expr(MAX_EXPR_DEPTH)?;
        p.expect_sym(';')?;
        flat.flatten(&expr, tline, Some(tgt));
    }

    // end [architecture] [<arch>]; then end of file.
    p.expect_kw("end")?;
    p.eat_kw("architecture");
    if matches!(p.peek(), Some((_, Tok::Id(id))) if !is_keyword(id)) {
        p.pos += 1;
    }
    p.expect_sym(';')?;
    if let Some((line, tok)) = p.peek() {
        return Err(parse_err(
            line,
            format!("content after the architecture body: {}", show(tok)),
        ));
    }

    // The clock must be an `in` port and never read as data.
    if let Some((clk, cline)) = &clock {
        match ports.iter().find(|(n, ..)| n == clk) {
            Some((_, Dir::In, ..)) => {}
            Some((_, Dir::Out, ..)) => {
                return Err(parse_err(
                    *cline,
                    format!("clock `{clk}` must be an `in` port, not an output"),
                ));
            }
            None => {
                return Err(parse_err(
                    *cline,
                    format!("clock `{clk}` is not an entity port"),
                ));
            }
        }
        if let Some((_, rline)) = flat.refs.iter().find(|(name, _)| name == clk) {
            return Err(parse_err(
                *rline,
                format!("clock `{clk}` cannot be used as data"),
            ));
        }
    }

    // `:=` defaults are flip-flop power-on values; reject them on nets
    // that never became registers.
    for name in &signal_order {
        let (_, default) = &signals[name];
        if let Some((_, bline)) = default {
            if !ff_targets.contains(name) {
                return Err(parse_err(
                    *bline,
                    format!("`{name}` has a default value but is not registered in a clocked process"),
                ));
            }
        }
    }
    for (name, dir, line, default) in &ports {
        if *dir == Dir::Out && default.is_some() && !ff_targets.contains(name) {
            return Err(parse_err(
                *line,
                format!("`{name}` has a default value but is not registered in a clocked process"),
            ));
        }
    }

    // Assemble in lowering order: inputs (port order, clock excluded),
    // body statements (source order), outputs (port order).
    let clock_name = clock.as_ref().map(|(n, _)| n.as_str());
    let mut owned: Vec<(usize, OStmt)> = Vec::new();
    for (name, dir, line, _) in &ports {
        if *dir == Dir::In && Some(name.as_str()) != clock_name {
            owned.push((*line, OStmt::Input { name: name.clone() }));
        }
    }
    owned.append(&mut flat.stmts);
    for (name, dir, line, _) in &ports {
        if *dir == Dir::Out {
            owned.push((*line, OStmt::Output { name: name.clone() }));
        }
    }

    let stmts: Vec<(usize, Stmt<'_>)> = owned
        .iter()
        .map(|(line, s)| {
            let stmt = match s {
                OStmt::Input { name } => Stmt::Input { name },
                OStmt::Const { net, value } => Stmt::Const { net, value: *value },
                OStmt::Gate { kind, net, pins } => Stmt::Gate {
                    kind: *kind,
                    net,
                    pins: pins.iter().map(String::as_str).collect(),
                },
                OStmt::Dff { net, init, d } => Stmt::Dff { net, init: *init, d },
                OStmt::Output { name } => Stmt::Output { name, net: name },
            };
            (*line, stmt)
        })
        .collect();
    lower(entity_name.to_owned(), &stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    const TOGGLE: &str = "\
-- enabled toggle bit
library ieee;
use ieee.std_logic_1164.all;

entity toggle is
  port (
    clk : in  std_logic;
    en  : in  std_logic;
    q   : out std_logic
  );
end toggle;

architecture rtl of toggle is
  signal q_i : std_logic := '1';
  signal nx  : std_logic;
begin
  nx <= en xor q_i;
  q  <= q_i;

  process (clk)
  begin
    if rising_edge(clk) then
      q_i <= nx;
    end if;
  end process;
end rtl;
";

    #[test]
    fn parses_toggle() {
        let n = parse(TOGGLE).unwrap();
        assert_eq!(n.name(), "toggle");
        assert_eq!(n.num_inputs(), 1, "clk must be excluded");
        assert_eq!(n.input_names(), &["en"]);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_ffs(), 1);
        assert_eq!(n.ff_init_values(), vec![true]);
    }

    #[test]
    fn event_form_clock_and_case_insensitive_keywords() {
        let src = "\
ENTITY t IS
  PORT (CK : IN STD_LOGIC; A : IN STD_LOGIC; Y : OUT STD_LOGIC);
END t;
ARCHITECTURE beh OF t IS
BEGIN
  PROCESS (CK)
  BEGIN
    IF CK'event AND CK = '1' THEN
      Y <= NOT A;
    END IF;
  END PROCESS;
END beh;
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_inputs(), 1);
        assert_eq!(n.num_ffs(), 1);
    }

    #[test]
    fn same_op_chains_lower_to_wide_gates() {
        let src = "\
entity c is
  port (a : in std_logic; b : in std_logic; d : in std_logic; y : out std_logic);
end c;
architecture rtl of c is
begin
  y <= a and b and d;
end rtl;
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_gates(), 1);
        let (_, sig) = &n.outputs()[0];
        assert_eq!(n.cell(*sig).pins().len(), 3);
    }

    #[test]
    fn agrees_with_the_snl_twin() {
        let snl = "\
model toggle
input en
dff q_i 1 nx
gate xor nx en q_i
output q q_i
end
";
        let v = parse(TOGGLE).unwrap();
        let s = crate::text::parse(snl).unwrap();
        testutil::assert_agree(&v, &s, 0x7777, 32);
    }

    #[test]
    fn parenthesized_mixing_and_literals() {
        let src = "\
entity m is
  port (a : in std_logic; b : in std_logic; y : out std_logic);
end m;
architecture rtl of m is
  signal t : std_logic;
begin
  t <= (a and b) or (not a and '1');
  y <= t nand b;
end rtl;
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_outputs(), 1);
        assert!(n.num_gates() >= 4);
    }

    #[test]
    fn operator_misuse_is_rejected() {
        let wrap = |expr: &str| {
            format!(
                "entity e is\n  port (a : in std_logic; b : in std_logic; c : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= {expr};\nend r;\n"
            )
        };
        let err = parse(&wrap("a and b or c")).unwrap_err();
        assert!(err.to_string().contains("requires parentheses"), "{err}");
        assert_eq!(err.line(), Some(6));
        let err = parse(&wrap("a nand b nand c")).unwrap_err();
        assert!(err.to_string().contains("not associative"), "{err}");
    }

    #[test]
    fn deep_nesting_is_capped_not_a_stack_overflow() {
        let bomb = format!(
            "entity e is\n  port (a : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= {}a{};\nend r;\n",
            "(".repeat(100_000),
            ")".repeat(100_000)
        );
        let err = parse(&bomb).unwrap_err();
        assert!(err.to_string().contains("nested deeper"), "{err}");
        assert!(err.line().is_some());
    }

    #[test]
    fn clock_violations_are_rejected() {
        // Clock used as data.
        let src = "\
entity e is
  port (clk : in std_logic; a : in std_logic; y : out std_logic);
end e;
architecture r of e is
begin
  y <= a and clk;
  process (clk)
  begin
    if rising_edge(clk) then
      y <= a;
    end if;
  end process;
end r;
";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("cannot be used as data"), "{err}");
        assert_eq!(err.line(), Some(6));
        // Two different clocks.
        let src = "\
entity e is
  port (c1 : in std_logic; c2 : in std_logic; a : in std_logic; y : out std_logic; z : out std_logic);
end e;
architecture r of e is
begin
  process (c1)
  begin
    if rising_edge(c1) then
      y <= a;
    end if;
  end process;
  process (c2)
  begin
    if rising_edge(c2) then
      z <= a;
    end if;
  end process;
end r;
";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("already the clock"), "{err}");
        // Clock is not a port.
        let src = "\
entity e is
  port (a : in std_logic; y : out std_logic);
end e;
architecture r of e is
  signal k : std_logic;
begin
  k <= a;
  process (k)
  begin
    if rising_edge(k) then
      y <= a;
    end if;
  end process;
end r;
";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("not an entity port"), "{err}");
    }

    #[test]
    fn misplaced_defaults_are_rejected() {
        let src = "\
entity e is
  port (a : in std_logic; y : out std_logic);
end e;
architecture r of e is
  signal t : std_logic := '1';
begin
  t <= not a;
  y <= t;
end r;
";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("not registered"), "{err}");
        assert_eq!(err.line(), Some(5));
        let err = parse(
            "entity e is\n  port (a : in std_logic := '1'; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= a;\nend r;\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("input port"), "{err}");
    }

    #[test]
    fn malformed_sources_rejected_with_lines() {
        for (src, needle) in [
            ("signal x;\n", "expected `entity`"),
            ("entity e is\n  port (a : in std_logic);\nend e;\n", "expected `architecture`"),
            (
                "entity e is\n  port (a : in frob; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= a;\nend r;\n",
                "unsupported type",
            ),
            (
                "entity e is\n  port (a : inout std_logic);\nend e;\narchitecture r of e is\nbegin\nend r;\n",
                "`inout`",
            ),
            (
                "entity e is\n  port (a : in std_logic; y : out std_logic);\nend e;\narchitecture r of other is\nbegin\n  y <= a;\nend r;\n",
                "entity is `e`",
            ),
            (
                "entity e is\n  port (a : in std_logic; a : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= a;\nend r;\n",
                "declared twice",
            ),
            (
                "entity e is\n  port (c : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  process (c)\n  begin\n    if falling_edge(c) then\n      y <= c;\n    end if;\n  end process;\nend r;\n",
                "expected `'event`",
            ),
            (
                "entity e is\n  port (c : in std_logic; a : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  process (c)\n  begin\n    if c'event and c = '0' then\n      y <= a;\n    end if;\n  end process;\nend r;\n",
                "falling-edge",
            ),
            (
                "entity e is\n  port (c : in std_logic; a : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  process (c)\n  begin\n    if rising_edge(c) then\n      y <= a;\n    elsif a = '1' then\n      y <= a;\n    end if;\n  end process;\nend r;\n",
                "not supported",
            ),
            (
                "entity e is\n  port (a : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= a;\nend r;\nentity f is\n",
                "content after",
            ),
            (
                "entity e is\n  port (a : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= a +\n",
                "unexpected character",
            ),
            (
                "entity e is\n  port (a : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= 5;\nend r;\n",
                "expected an expression",
            ),
            (
                "entity e is\n  port (end : in std_logic);\nend e;\n",
                "keyword",
            ),
            (
                "entity e is\n  port (a : in std_logic; y : out std_logic);\nend e;\narchitecture r of e is\nbegin\n  y <= a;\n",
                "unexpected end of file",
            ),
        ] {
            let err = parse(src).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{src}` → `{err}` (wanted `{needle}`)"
            );
            let max_line = src.lines().count() + 1;
            let line = err.line().unwrap_or(1);
            assert!(line >= 1 && line <= max_line, "line {line} out of range for `{src}`");
        }
    }

    #[test]
    fn undriven_output_reports_unknown_net() {
        let src = "\
entity e is
  port (a : in std_logic; y : out std_logic);
end e;
architecture r of e is
begin
end r;
";
        let err = parse(src).unwrap_err();
        assert!(
            matches!(err, NetlistError::UnknownNet { ref name, .. } if name == "y"),
            "{err}"
        );
    }
}
