//! Structural BLIF frontend and emitter (the Berkeley Logic Interchange
//! Format subset used by mapped benchmark netlists).
//!
//! Supported directives:
//!
//! ```text
//! .model <name>
//! .inputs <a> <b> ...       # continuation with trailing `\`
//! .outputs <y> ...
//! .names <in>... <out>      # followed by single-output cover rows
//! 11 1
//! .latch <in> <out> [<type> <control>] [<init>]
//! .end
//! ```
//!
//! `.names` covers implement **general two-level logic**. Single-gate
//! shapes — the covers mapped netlists actually emit — are recognized
//! structurally and map onto one [`GateKind`] cell each:
//!
//! | cover (on-set)                          | gate    |
//! |-----------------------------------------|---------|
//! | no rows                                 | const 0 |
//! | single empty-input row `1`              | const 1 |
//! | `1 1`                                   | buf     |
//! | `0 1`                                   | not     |
//! | single row, all `1`                     | and     |
//! | single row, all `0`                     | nor     |
//! | one row per input: one `1`, rest `-`    | or      |
//! | one row per input: one `0`, rest `-`    | nand    |
//! | `10 1` + `01 1` (2 inputs)              | xor     |
//! | `11 1` + `00 1` (2 inputs)              | xnor    |
//!
//! Every other cover is synthesized as a true sum of products: one AND
//! term per row (`0` columns through shared `NOT` literals, `-` columns
//! skipped), an OR across the terms, and — for off-set (`… 0`) covers,
//! which BLIF defines as the function's complement — a final inversion.
//! Synthesized intermediate nets are named `$sop$<out>$…`. A cover that
//! mixes on-set and off-set rows is rejected with a located error.
//! `.latch` lowers to
//! the IR's single-clock D flip-flop; the optional type/control pair is
//! accepted (and ignored — the IR has one implicit clock) and the
//! optional init value maps `0`→0, `1`→1, `2`(don't-care) and
//! `3`(unknown)→0. Unsupported directives (`.subckt`, `.exdc`, …) are
//! rejected, not skipped.
//!
//! The grammar is specified alongside the other formats in
//! `docs/FORMATS.md`; parse-layer errors carry 1-based line numbers
//! (see the [error contract](crate::NetlistError)).
//!
//! # Example
//!
//! ```
//! let src = "\
//! .model toggle
//! .inputs en
//! .outputs q
//! .latch nx q re clk 0
//! .names en q nx
//! 10 1
//! 01 1
//! .end
//! ";
//! let n = seugrade_netlist::blif::parse(src)?;
//! assert_eq!(n.num_ffs(), 1);
//! assert_eq!(n.num_gates(), 1); // one XOR
//! # Ok::<(), seugrade_netlist::NetlistError>(())
//! ```

use std::collections::HashMap;

use crate::ident::EmitNames;
use crate::import::{lower, Stmt};
use crate::{CellKind, GateKind, Netlist, NetlistError, SigId};

/// Serializes a netlist to structural BLIF — the emitter pairing
/// [`parse`], completing the crate's emit×import round-trip matrix.
///
/// Inputs are referenced by their port names (legalized through the
/// shared escaping pass (`ident`) when a name would read as a
/// directive, comment or continuation); every other net uses its stable
/// `n<i>` id. Gates become single-gate `.names` covers (the shapes the
/// parser's pattern matcher recognizes, so a round-trip is cell-for-cell
/// stable for 2-input logic), flip-flops become `.latch <d> <q> re clk
/// <init>` and constants empty/`1` covers. Wide XOR/XNOR gates — whose
/// parity covers would need 2^(n-1) rows — are decomposed into 2-input
/// chains, and MUX cells are emitted as their two-term sum-of-products
/// cover; both re-import as equivalent logic. `.outputs` identifies
/// ports by net, so when several ports share one driver the later ports
/// go through buffer-cover aliases (swept away again on re-import) and
/// original output port *names* are dropped, exactly as in `.bench`.
#[must_use]
pub fn emit(netlist: &Netlist) -> String {
    let mut out = String::new();
    // Formatting into a `String` cannot fail; `emit_into` threads
    // `fmt::Result` anyway so the body stays `?`-based with a single
    // audited expect at this boundary instead of an unwrap per line.
    emit_into(netlist, &mut out).expect("formatting into a String never fails");
    out
}

/// The `?`-based body of [`emit`], writing to any [`fmt::Write`] sink.
fn emit_into(netlist: &Netlist, out: &mut impl std::fmt::Write) -> std::fmt::Result {
    let mut names = EmitNames::new(netlist, crate::ident::blif_legal);
    let model = crate::ident::legalize(netlist.name(), crate::ident::blif_legal);
    writeln!(out, "# {} (emitted by seugrade-netlist)", netlist.name())?;
    writeln!(out, ".model {model}")?;
    if !netlist.inputs().is_empty() {
        let ins: Vec<&str> = netlist.inputs().iter().map(|&s| names.token(s)).collect();
        writeln!(out, ".inputs {}", ins.join(" "))?;
    }
    // `.outputs` lists nets; a net may appear once, so later ports that
    // share a driver are emitted through buffer-cover aliases.
    let mut seen_outputs: HashMap<SigId, usize> = HashMap::new();
    let mut out_tokens: Vec<String> = Vec::new();
    let mut aliases: Vec<(String, String)> = Vec::new();
    for (_, sig) in netlist.outputs() {
        let count = seen_outputs.entry(*sig).or_insert(0);
        let target = names.token(*sig).to_owned();
        if *count == 0 {
            out_tokens.push(target);
        } else {
            let alias = names.fresh(&format!("{target}_o{count}"));
            aliases.push((alias.clone(), target));
            out_tokens.push(alias);
        }
        *count += 1;
    }
    if !out_tokens.is_empty() {
        writeln!(out, ".outputs {}", out_tokens.join(" "))?;
    }
    for (id, cell) in netlist.iter_cells() {
        match cell.kind() {
            CellKind::Input => {}
            CellKind::Const(v) => {
                writeln!(out, ".names {}", names.token(id))?;
                if v {
                    writeln!(out, "1")?;
                }
            }
            CellKind::Dff { init } => {
                writeln!(
                    out,
                    ".latch {} {} re clk {}",
                    names.token(cell.pins()[0]),
                    names.token(id),
                    u8::from(init)
                )?;
            }
            CellKind::Gate(kind) => {
                let pins: Vec<String> =
                    cell.pins().iter().map(|&p| names.token(p).to_owned()).collect();
                let target = names.token(id).to_owned();
                emit_gate_cover(out, &mut names, kind, &pins, &target)?;
            }
        }
    }
    for (alias, target) in &aliases {
        writeln!(out, ".names {target} {alias}")?;
        writeln!(out, "1 1")?;
    }
    writeln!(out, ".end")
}

/// Emits one gate as `.names` cover(s). Everything is a single cover
/// except wide XOR/XNOR, which would need an exponential parity cover
/// and is chained through fresh 2-input stages instead.
fn emit_gate_cover(
    out: &mut impl std::fmt::Write,
    names: &mut EmitNames,
    kind: GateKind,
    pins: &[String],
    target: &str,
) -> std::fmt::Result {
    let n = pins.len();
    let header =
        |out: &mut dyn std::fmt::Write, pins: &[String], target: &str| -> std::fmt::Result {
            writeln!(out, ".names {} {target}", pins.join(" "))
        };
    match kind {
        GateKind::Buf => {
            header(out, pins, target)?;
            writeln!(out, "1 1")
        }
        GateKind::Not => {
            header(out, pins, target)?;
            writeln!(out, "0 1")
        }
        GateKind::And => {
            header(out, pins, target)?;
            writeln!(out, "{} 1", "1".repeat(n))
        }
        GateKind::Nor => {
            header(out, pins, target)?;
            writeln!(out, "{} 1", "0".repeat(n))
        }
        GateKind::Or | GateKind::Nand => {
            // One row per input: the hot column is `1` (OR) or `0`
            // (NAND), everything else don't-care.
            let hot = if kind == GateKind::Or { '1' } else { '0' };
            header(out, pins, target)?;
            for i in 0..n {
                let row: String =
                    (0..n).map(|j| if j == i { hot } else { '-' }).collect();
                writeln!(out, "{row} 1")?;
            }
            Ok(())
        }
        GateKind::Xor | GateKind::Xnor if n == 2 => {
            header(out, pins, target)?;
            if kind == GateKind::Xor {
                writeln!(out, "10 1")?;
                writeln!(out, "01 1")
            } else {
                writeln!(out, "11 1")?;
                writeln!(out, "00 1")
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // Parity chain: XOR stages for all but the last pin, with
            // the final stage carrying the (possibly inverted) kind.
            let mut acc = pins[0].clone();
            for (i, pin) in pins.iter().enumerate().skip(1) {
                let last = i == n - 1;
                let stage_kind = if last { kind } else { GateKind::Xor };
                let stage_out = if last {
                    target.to_owned()
                } else {
                    names.fresh(&format!("{target}_x{i}"))
                };
                let stage_pins = [acc.clone(), pin.clone()];
                emit_gate_cover(out, names, stage_kind, &stage_pins, &stage_out)?;
                acc = stage_out;
            }
            Ok(())
        }
        GateKind::Mux => {
            // Pins are `[sel, d0, d1]`: d0 when sel is 0, d1 when 1.
            header(out, pins, target)?;
            writeln!(out, "01- 1")?;
            writeln!(out, "1-1 1")
        }
    }
}

/// Synthesizes a finished cover into gate statements.
///
/// Single-gate shapes (the covers mapped netlists emit) are recognized
/// structurally and produce exactly one cell; anything else goes through
/// true two-level sum-of-products synthesis: one AND term per row (with
/// `NOT` literals for `0` columns, shared within the cover), an OR of
/// the terms, and a final inversion for off-set (`… 0`) covers.
/// Synthesized intermediate nets are named `$sop$<out>$…`.
fn synthesize(cover: &OwnedCover) -> Result<Vec<OwnedStmt>, NetlistError> {
    let line = cover.line;
    let n = cover.inputs.len();
    let mut out_value = None;
    for (bits, value) in &cover.rows {
        if bits.len() != n {
            return Err(NetlistError::Parse {
                line,
                msg: format!(
                    "cover row `{bits}` has {} columns, .names has {n} inputs",
                    bits.len()
                ),
            });
        }
        // BLIF defines a cover as either all on-set or all off-set.
        if *out_value.get_or_insert(*value) != *value {
            return Err(NetlistError::Parse {
                line,
                msg: "cover mixes on-set and off-set rows".into(),
            });
        }
    }
    let on_set = out_value != Some('0');
    let constant = |value: bool| {
        vec![OwnedStmt::Const { net: cover.out.clone(), value }]
    };

    // Constants.
    if n == 0 || cover.rows.is_empty() {
        return Ok(constant(on_set && !cover.rows.is_empty()));
    }
    // A row of only don't-cares covers everything.
    if cover.rows.iter().any(|(bits, _)| bits.chars().all(|c| c == '-')) {
        return Ok(constant(on_set));
    }

    // Fast path: single-gate cover shapes, on-set only (the historical
    // pattern matcher, kept so mapped netlists stay one cell per cover).
    if on_set {
        let rows: Vec<&str> = cover.rows.iter().map(|(b, _)| b.as_str()).collect();
        let all = |row: &str, c: char| row.chars().all(|x| x == c);
        let kind = if rows.len() == 1 && all(rows[0], '1') {
            Some(if n == 1 { GateKind::Buf } else { GateKind::And })
        } else if rows.len() == 1 && all(rows[0], '0') {
            Some(if n == 1 { GateKind::Not } else { GateKind::Nor })
        } else if n == 2 && rows.len() == 2 {
            let mut sorted = [rows[0], rows[1]];
            sorted.sort_unstable();
            match sorted {
                ["01", "10"] => Some(GateKind::Xor),
                ["00", "11"] => Some(GateKind::Xnor),
                _ => one_hot_kind(&rows, n),
            }
        } else {
            one_hot_kind(&rows, n)
        };
        if let Some(kind) = kind {
            return Ok(vec![OwnedStmt::Gate {
                kind,
                net: cover.out.clone(),
                pins: cover.inputs.clone(),
            }]);
        }
    }

    // General two-level synthesis.
    let mut stmts = Vec::new();
    let mut negated: Vec<Option<String>> = vec![None; n];
    let mut terms: Vec<String> = Vec::new();
    for (t, (bits, _)) in cover.rows.iter().enumerate() {
        let mut literals: Vec<String> = Vec::new();
        for (i, c) in bits.chars().enumerate() {
            match c {
                '1' => literals.push(cover.inputs[i].clone()),
                '0' => {
                    let net = negated[i].get_or_insert_with(|| {
                        let net = format!("$sop${}$n{i}", cover.out);
                        stmts.push(OwnedStmt::Gate {
                            kind: GateKind::Not,
                            net: net.clone(),
                            pins: vec![cover.inputs[i].clone()],
                        });
                        net
                    });
                    literals.push(net.clone());
                }
                '-' => {}
                other => {
                    return Err(NetlistError::Parse {
                        line,
                        msg: format!("invalid cover character `{other}`"),
                    });
                }
            }
        }
        debug_assert!(!literals.is_empty(), "all-don't-care rows returned above");
        if literals.len() == 1 {
            terms.push(literals.pop().expect("one literal"));
        } else {
            let net = format!("$sop${}$t{t}", cover.out);
            stmts.push(OwnedStmt::Gate { kind: GateKind::And, net: net.clone(), pins: literals });
            terms.push(net);
        }
    }
    // OR the terms; off-set covers define the complement.
    let (kind, pins) = if terms.len() == 1 {
        let kind = if on_set { GateKind::Buf } else { GateKind::Not };
        (kind, terms)
    } else {
        let kind = if on_set { GateKind::Or } else { GateKind::Nor };
        (kind, terms)
    };
    stmts.push(OwnedStmt::Gate { kind, net: cover.out.clone(), pins });
    Ok(stmts)
}

/// Recognizes the one-row-per-input OR (`1` + don't-cares) and NAND
/// (`0` + don't-cares) cover shapes.
fn one_hot_kind(rows: &[&str], n: usize) -> Option<GateKind> {
    if rows.len() != n {
        return None;
    }
    let shape = |c: char| -> bool {
        // Every input position must be the distinguished column of
        // exactly one row, all other columns `-`.
        let mut seen = vec![false; n];
        for row in rows {
            let mut hot = None;
            for (i, x) in row.chars().enumerate() {
                if x == c {
                    if hot.is_some() {
                        return false;
                    }
                    hot = Some(i);
                } else if x != '-' {
                    return false;
                }
            }
            match hot {
                Some(i) if !seen[i] => seen[i] = true,
                _ => return false,
            }
        }
        seen.into_iter().all(|s| s)
    };
    if shape('1') {
        Some(GateKind::Or)
    } else if shape('0') {
        Some(GateKind::Nand)
    } else {
        None
    }
}

/// Parses structural BLIF text into a validated [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed or unsupported
/// directives and covers, [`NetlistError::UnknownNet`] for references
/// to nets never defined, and any validation error from the shared
/// lowering (dangling outputs, combinational loops, duplicate ports).
pub fn parse(src: &str) -> Result<Netlist, NetlistError> {
    // Join `\` continuation lines, keeping the first physical line's
    // number for diagnostics.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim_end();
        let (continues, body) = match text.strip_suffix('\\') {
            Some(stripped) => (true, stripped.trim_end()),
            None => (false, text),
        };
        match pending.take() {
            Some((l, mut acc)) => {
                acc.push(' ');
                acc.push_str(body.trim());
                if continues {
                    pending = Some((l, acc));
                } else {
                    logical.push((l, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((line, body.trim().to_owned()));
                } else if !body.trim().is_empty() {
                    logical.push((line, body.trim().to_owned()));
                }
            }
        }
    }
    if let Some((line, _)) = pending {
        return Err(NetlistError::Parse {
            line,
            msg: "file ends inside a `\\` continuation".into(),
        });
    }

    let mut model_name: Option<String> = None;
    let mut stmts_owned: Vec<(usize, OwnedStmt)> = Vec::new();
    let mut cover: Option<OwnedCover> = None;
    let mut saw_end = false;

    for (line, text) in &logical {
        let line = *line;
        if saw_end {
            return Err(NetlistError::Parse {
                line,
                msg: "content after `.end`".into(),
            });
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        let Some(&head) = toks.first() else { continue };

        if !head.starts_with('.') {
            // Cover row for the open `.names`.
            let Some(c) = cover.as_mut() else {
                return Err(NetlistError::Parse {
                    line,
                    msg: format!("cover row `{text}` outside a .names block"),
                });
            };
            let (bits, value) = match toks.as_slice() {
                [v] if c.inputs.is_empty() => (String::new(), *v),
                [bits, v] => ((*bits).to_owned(), *v),
                _ => {
                    return Err(NetlistError::Parse {
                        line,
                        msg: format!("malformed cover row `{text}`"),
                    });
                }
            };
            if value.len() != 1 || !"01".contains(value) {
                return Err(NetlistError::Parse {
                    line,
                    msg: format!("cover output must be 0 or 1, found `{value}`"),
                });
            }
            if let Some(bad) = bits.chars().find(|c| !"01-".contains(*c)) {
                return Err(NetlistError::Parse {
                    line,
                    msg: format!("invalid cover character `{bad}`"),
                });
            }
            c.rows.push((bits, value.chars().next().unwrap()));
            continue;
        }

        // A directive closes any open .names block, which synthesizes
        // into one or more gate/const statements.
        if let Some(c) = cover.take() {
            for s in synthesize(&c)? {
                stmts_owned.push((c.line, s));
            }
        }

        match head {
            ".model" => {
                if toks.len() != 2 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: ".model takes exactly one name".into(),
                    });
                }
                if model_name.replace(toks[1].to_owned()).is_some() {
                    return Err(NetlistError::Parse {
                        line,
                        msg: "only one .model per file is supported".into(),
                    });
                }
            }
            ".inputs" => {
                for name in &toks[1..] {
                    stmts_owned.push((line, OwnedStmt::Input((*name).to_owned())));
                }
            }
            ".outputs" => {
                for name in &toks[1..] {
                    stmts_owned.push((line, OwnedStmt::Output((*name).to_owned())));
                }
            }
            ".names" => {
                if toks.len() < 2 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: ".names needs at least an output".into(),
                    });
                }
                let inputs: Vec<String> =
                    toks[1..toks.len() - 1].iter().map(|s| (*s).to_owned()).collect();
                cover = Some(OwnedCover {
                    line,
                    inputs,
                    out: toks[toks.len() - 1].to_owned(),
                    rows: Vec::new(),
                });
            }
            ".latch" => {
                // .latch <in> <out> [<type> <control>] [<init>]
                let args = &toks[1..];
                let (input, output, init_tok) = match args.len() {
                    2 => (args[0], args[1], None),
                    3 => (args[0], args[1], Some(args[2])),
                    4 => (args[0], args[1], None),
                    5 => (args[0], args[1], Some(args[4])),
                    _ => {
                        return Err(NetlistError::Parse {
                            line,
                            msg: ".latch takes <in> <out> [<type> <control>] [<init>]".into(),
                        });
                    }
                };
                let init = match init_tok {
                    None | Some("0") | Some("2") | Some("3") => false,
                    Some("1") => true,
                    Some(other) => {
                        return Err(NetlistError::Parse {
                            line,
                            msg: format!("latch init must be 0-3, found `{other}`"),
                        });
                    }
                };
                stmts_owned.push((
                    line,
                    OwnedStmt::Latch {
                        d: input.to_owned(),
                        net: output.to_owned(),
                        init,
                    },
                ));
            }
            ".end" => {
                if toks.len() != 1 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: ".end takes no arguments".into(),
                    });
                }
                saw_end = true;
            }
            other => {
                return Err(NetlistError::Parse {
                    line,
                    msg: format!("unsupported BLIF directive `{other}`"),
                });
            }
        }
    }
    if let Some(c) = cover.take() {
        for s in synthesize(&c)? {
            stmts_owned.push((c.line, s));
        }
    }

    // Lower through the shared import layer. The owned statements are
    // borrowed here so `Stmt`'s zero-copy shape is reused unchanged.
    let mut stmts: Vec<(usize, Stmt<'_>)> = Vec::with_capacity(stmts_owned.len());
    for (line, s) in &stmts_owned {
        let stmt = match s {
            OwnedStmt::Input(name) => Stmt::Input { name },
            OwnedStmt::Output(name) => Stmt::Output { name, net: name },
            OwnedStmt::Latch { d, net, init } => Stmt::Dff { net, init: *init, d },
            OwnedStmt::Const { net, value } => Stmt::Const { net, value: *value },
            OwnedStmt::Gate { kind, net, pins } => Stmt::Gate {
                kind: *kind,
                net,
                pins: pins.iter().map(String::as_str).collect(),
            },
        };
        stmts.push((*line, stmt));
    }

    lower(model_name.unwrap_or_else(|| "blif".to_owned()), &stmts)
}

/// Owned mirror of the statement stream (cover rows arrive over many
/// physical lines and synthesis invents intermediate nets, so zero-copy
/// parsing would fight the borrow checker for no benefit at import
/// rates).
enum OwnedStmt {
    Input(String),
    Output(String),
    Latch { d: String, net: String, init: bool },
    Const { net: String, value: bool },
    Gate { kind: GateKind, net: String, pins: Vec<String> },
}

struct OwnedCover {
    line: usize,
    inputs: Vec<String>,
    out: String,
    rows: Vec<(String, char)>,
}

#[cfg(test)]
mod tests {
    use crate::CellKind;

    use super::*;

    #[test]
    fn gate_covers_map_to_kinds() {
        let src = "\
.model gates
.inputs a b c
.outputs o_and o_or o_nand o_nor o_xor o_xnor o_not o_buf o_and3
.names a b o_and
11 1
.names a b o_or
1- 1
-1 1
.names a b o_nand
0- 1
-0 1
.names a b o_nor
00 1
.names a b o_xor
10 1
01 1
.names a b o_xnor
11 1
00 1
.names a o_not
0 1
.names a o_buf
1 1
.names a b c o_and3
111 1
.end
";
        let n = parse(src).unwrap();
        let count = |kind: GateKind| {
            n.iter_cells()
                .filter(|(_, c)| c.kind() == CellKind::Gate(kind))
                .count()
        };
        assert_eq!(count(GateKind::And), 2);
        assert_eq!(count(GateKind::Or), 1);
        assert_eq!(count(GateKind::Nand), 1);
        assert_eq!(count(GateKind::Nor), 1);
        assert_eq!(count(GateKind::Xor), 1);
        assert_eq!(count(GateKind::Xnor), 1);
        assert_eq!(count(GateKind::Not), 1);
        assert_eq!(count(GateKind::Buf), 1);
        assert_eq!(n.name(), "gates");
    }

    #[test]
    fn constants() {
        let src = "\
.model k
.outputs lo hi
.names lo
.names hi
1
.end
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_outputs(), 2);
        let consts: Vec<bool> = n
            .iter_cells()
            .filter_map(|(_, c)| match c.kind() {
                CellKind::Const(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![false, true]);
    }

    #[test]
    fn latch_inits() {
        let src = "\
.model l
.inputs d
.outputs q0 q1 qd
.latch d q0 0
.latch d q1 re clk 1
.latch d qd re clk
.end
";
        let n = parse(src).unwrap();
        assert_eq!(n.ff_init_values(), vec![false, true, false]);
    }

    #[test]
    fn continuation_lines() {
        let src = ".model c\n.inputs a \\\n b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let n = parse(src).unwrap();
        assert_eq!(n.num_inputs(), 2);
    }

    #[test]
    fn general_sop_cover_synthesizes_terms() {
        // f = a·c + ¬a·b: two AND terms over one shared NOT, OR-folded.
        let src = "\
.model sop
.inputs a b c
.outputs y
.names a b c y
1-1 1
01- 1
.end
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_outputs(), 1);
        let count = |kind: GateKind| {
            n.iter_cells()
                .filter(|(_, c)| c.kind() == CellKind::Gate(kind))
                .count()
        };
        assert_eq!(count(GateKind::And), 2);
        assert_eq!(count(GateKind::Not), 1);
        assert_eq!(count(GateKind::Or), 1);
    }

    #[test]
    fn off_set_cover_synthesizes_complement() {
        // `1 0` reads "f is 0 when a is 1" — i.e. y = ¬a.
        let src = ".model neg\n.inputs a\n.outputs y\n.names a y\n1 0\n.end\n";
        let n = parse(src).unwrap();
        assert_eq!(n.num_gates(), 1);
        assert!(n
            .iter_cells()
            .any(|(_, c)| c.kind() == CellKind::Gate(GateKind::Not)));
        // Multi-row off-set: y = ¬(a·b + ¬a·¬b) = a ⊕ b, via NOR fold.
        let src = "\
.model negsop
.inputs a b
.outputs y
.names a b y
01 0
10 0
.end
";
        let n = parse(src).unwrap();
        let count = |kind: GateKind| {
            n.iter_cells()
                .filter(|(_, c)| c.kind() == CellKind::Gate(kind))
                .count()
        };
        assert_eq!(count(GateKind::And), 2);
        assert_eq!(count(GateKind::Nor), 1);
    }

    #[test]
    fn mixed_polarity_cover_rejected() {
        let src = ".model bad\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("mixes on-set and off-set"), "{err}");
        assert_eq!(err.line(), Some(4));
    }

    #[test]
    fn all_dont_care_row_is_constant() {
        let src = ".model k\n.inputs a b\n.outputs y\n.names a b y\n-- 1\n11 1\n.end\n";
        let n = parse(src).unwrap();
        let consts: Vec<bool> = n
            .iter_cells()
            .filter_map(|(_, c)| match c.kind() {
                CellKind::Const(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![true]);
        assert_eq!(n.num_gates(), 0);
    }

    #[test]
    fn malformed_directives_rejected() {
        assert!(parse(".model a b\n.end\n").is_err());
        assert!(parse(".model a\n.model b\n.end\n").is_err());
        assert!(parse(".subckt foo a=b\n").is_err());
        assert!(parse(".model m\n.latch a\n.end\n").is_err());
        assert!(parse(".model m\n.latch a q 7\n.end\n").is_err());
        assert!(parse(".model m\n.names\n.end\n").is_err());
        assert!(parse(".model m\n.end\n.inputs a\n").is_err());
        assert!(parse("11 1\n").is_err());
        assert!(parse(".model m\n.inputs a \\\n").is_err());
        assert!(parse(".model m\n.inputs a\n.outputs y\n.names a y\n1 x\n.end\n").is_err());
        assert!(parse(".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n").is_err());
        assert!(parse(".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n").is_err());
    }

    #[test]
    fn undefined_net_in_latch_reported() {
        let src = ".model m\n.outputs q\n.latch ghost q 0\n.end\n";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNet { ref name, .. } if name == "ghost"));
    }

    #[test]
    fn duplicate_output_port_reported() {
        let src = ".model m\n.inputs a\n.outputs y y\n.names a y\n1 1\n.end\n";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }), "{err:?}");
        assert!(err.to_string().contains("declared twice"));
    }

    #[test]
    fn emit_round_trips_every_gate_kind() {
        let mut b = crate::NetlistBuilder::new("kinds");
        let a = b.input("a");
        let c = b.input("b");
        let s = b.input("s");
        let q = b.dff(true);
        let g_and = b.and2(a, c);
        let g_or = b.or2(a, c);
        let g_nand = b.nand2(a, c);
        let g_nor = b.nor2(a, c);
        let g_xor = b.xor2(a, c);
        let g_xnor = b.xnor2(a, c);
        let g_not = b.not(a);
        let g_mux = b.mux(s, g_and, g_or);
        let wide_xor = b.gate(GateKind::Xor, &[a, c, s, q]);
        let wide_xnor = b.gate(GateKind::Xnor, &[g_not, g_nand, g_nor]);
        let k0 = b.constant(false);
        let k1 = b.constant(true);
        let all = b.gate(
            GateKind::Or,
            &[g_xor, g_xnor, g_mux, wide_xor, wide_xnor, k0, k1],
        );
        b.connect_dff(q, all).unwrap();
        b.output("y", all);
        b.output("q", q);
        let n = b.finish().unwrap();
        let text = emit(&n);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.num_inputs(), n.num_inputs());
        assert_eq!(back.num_outputs(), n.num_outputs());
        assert_eq!(back.ff_init_values(), n.ff_init_values());
        crate::testutil::assert_agree(&n, &back, 0xD1CE, 16);
    }

    #[test]
    fn emit_aliases_shared_output_nets() {
        let mut b = crate::NetlistBuilder::new("shared");
        let a = b.input("a");
        let g = b.not(a);
        b.output("y0", g);
        b.output("y1", g);
        b.output("y2", g);
        let n = b.finish().unwrap();
        let text = emit(&n);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.num_outputs(), 3);
    }

    #[test]
    fn emit_escapes_hostile_net_names() {
        // `.x` would read as a directive, `a b` would split into two
        // tokens, `#c` would vanish as a comment.
        let mut b = crate::NetlistBuilder::new("hostile");
        let x = b.input(".x");
        let y = b.input("a b");
        let z = b.input("#c");
        let g = b.gate(GateKind::And, &[x, y, z]);
        b.output("y", g);
        let n = b.finish().unwrap();
        let text = emit(&n);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_gates(), 1);
    }

    #[test]
    fn missing_end_is_accepted() {
        // Some emitters omit .end; tolerate it (the shared lowering
        // still validates connectivity).
        let n = parse(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n").unwrap();
        assert_eq!(n.num_outputs(), 1);
    }
}
