//! Gate-level netlist intermediate representation for the `seugrade`
//! fault-grading toolkit.
//!
//! A [`Netlist`] is a flat directed graph of single-output cells
//! ([`Cell`]): primary inputs, constants, combinational gates and D
//! flip-flops. Because every cell drives exactly one signal, a signal is
//! identified by the [`SigId`] of its driving cell.
//!
//! The crate provides:
//!
//! - [`NetlistBuilder`] — safe, validated construction (including the
//!   sequential feedback loops required by flip-flops);
//! - [`levelize`](Netlist::levelize) — topological ordering of the
//!   combinational cells with cycle detection;
//! - [`NetlistStats`] — cell inventories, depth and size metrics;
//! - a line-based [text format](text) with a parser and an emitter;
//! - benchmark-netlist frontends for ISCAS [`.bench`](mod@bench), the
//!   structural [BLIF subset](blif), a structural [Verilog
//!   subset](vlog) and an ITC'99-style [VHDL subset](vhdl), plus the
//!   shared [`import`] layer (format detection, buffer sweeping, import
//!   statistics) — the on-disk grammars are specified in
//!   `docs/FORMATS.md`;
//! - [DOT export](Netlist::to_dot) for visualisation;
//! - [cone pruning](Netlist::pruned) that removes logic not observable at
//!   any primary output.
//!
//! # Example
//!
//! Build a 1-bit toggle counter with an enable input and inspect it:
//!
//! ```
//! use seugrade_netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), seugrade_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("toggle");
//! let en = b.input("en");
//! let q = b.dff(false);
//! let next = b.xor2(q, en);
//! b.connect_dff(q, next)?;
//! b.output("q", q);
//! let netlist = b.finish()?;
//!
//! assert_eq!(netlist.num_ffs(), 1);
//! assert_eq!(netlist.stats().gate_count(GateKind::Xor), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod blif;
mod builder;
mod cell;
mod dot;
mod error;
mod id;
mod ident;
pub mod import;
mod levelize;
mod netlist;
mod prune;
mod stats;
#[cfg(test)]
mod testutil;
pub mod text;
pub mod vhdl;
pub mod vlog;

pub use builder::NetlistBuilder;
pub use cell::{Cell, CellKind, GateKind};
pub use error::NetlistError;
pub use id::{FfIndex, SigId};
pub use import::{ImportError, ImportOptions, ImportStats, Imported, SourceFormat};
pub use levelize::{FanoutAdjacency, Levelization};
pub use netlist::Netlist;
pub use prune::PruneResult;
pub use stats::NetlistStats;
