//! Observable-cone pruning (dead logic removal).

use std::collections::HashMap;

use crate::{Cell, FfIndex, Netlist, SigId};

/// Result of [`Netlist::pruned`]: the reduced netlist plus mappings from
/// old ids to new ids.
///
/// Pruning changes [`FfIndex`] assignments (flip-flop order is preserved
/// among the survivors); campaigns that already generated fault lists
/// against the original netlist can translate them through
/// [`ff_map`](Self::ff_map).
#[derive(Clone, Debug)]
pub struct PruneResult {
    netlist: Netlist,
    sig_map: HashMap<SigId, SigId>,
    ff_map: HashMap<FfIndex, FfIndex>,
    removed_cells: usize,
}

impl PruneResult {
    /// The pruned netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes the result, returning the pruned netlist.
    #[must_use]
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Maps an original signal to its surviving counterpart, if any.
    #[must_use]
    pub fn map_signal(&self, old: SigId) -> Option<SigId> {
        self.sig_map.get(&old).copied()
    }

    /// Old-to-new flip-flop index mapping (dropped flip-flops are absent).
    #[must_use]
    pub fn ff_map(&self) -> &HashMap<FfIndex, FfIndex> {
        &self.ff_map
    }

    /// Number of cells removed by pruning.
    #[must_use]
    pub fn removed_cells(&self) -> usize {
        self.removed_cells
    }
}

impl Netlist {
    /// Removes every cell that cannot influence any primary output.
    ///
    /// The live set is the transitive fan-in of the outputs, where reaching
    /// a flip-flop additionally pulls in the fan-in of its data input
    /// (computed to a fixed point). Primary inputs are always kept so the
    /// interface of the circuit is unchanged.
    ///
    /// # Example
    ///
    /// ```
    /// # use seugrade_netlist::NetlistBuilder;
    /// # fn main() -> Result<(), seugrade_netlist::NetlistError> {
    /// let mut b = NetlistBuilder::new("dead");
    /// let a = b.input("a");
    /// let used = b.not(a);
    /// let _unused = b.and2(a, used);
    /// b.output("y", used);
    /// let n = b.finish()?;
    /// let pruned = n.pruned();
    /// assert_eq!(pruned.removed_cells(), 1);
    /// assert_eq!(pruned.netlist().num_inputs(), 1);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn pruned(&self) -> PruneResult {
        let n = self.cells.len();
        let mut live = vec![false; n];

        // Seeds: outputs and all primary inputs (interface preservation).
        let mut stack: Vec<SigId> = self.outputs.iter().map(|(_, s)| *s).collect();
        for &i in &self.inputs {
            stack.push(i);
        }
        while let Some(sig) = stack.pop() {
            if live[sig.index()] {
                continue;
            }
            live[sig.index()] = true;
            for &pin in self.cell(sig).pins() {
                if !live[pin.index()] {
                    stack.push(pin);
                }
            }
        }

        // Rebuild with survivors in original id order.
        let mut sig_map: HashMap<SigId, SigId> = HashMap::new();
        let mut cells: Vec<Cell> = Vec::new();
        for (id, cell) in self.iter_cells() {
            if !live[id.index()] {
                continue;
            }
            let new_id = SigId::new(cells.len());
            sig_map.insert(id, new_id);
            cells.push(cell.clone());
        }
        for cell in &mut cells {
            for pin in cell.pins_mut() {
                *pin = sig_map[pin];
            }
        }

        let inputs: Vec<SigId> = self.inputs.iter().map(|i| sig_map[i]).collect();
        let outputs: Vec<(String, SigId)> = self
            .outputs
            .iter()
            .map(|(name, s)| (name.clone(), sig_map[s]))
            .collect();

        let mut ff_map = HashMap::new();
        let mut ffs = Vec::new();
        for (old_idx, old_sig) in self.ffs.iter().enumerate() {
            if let Some(&new_sig) = sig_map.get(old_sig) {
                ff_map.insert(FfIndex::new(old_idx), FfIndex::new(ffs.len()));
                ffs.push(new_sig);
            }
        }

        let cell_names = self
            .cell_names
            .iter()
            .filter_map(|(old, name)| sig_map.get(old).map(|&new| (new, name.clone())))
            .collect();

        let netlist = Netlist {
            name: self.name.clone(),
            cells,
            inputs,
            input_names: self.input_names.clone(),
            outputs,
            ffs,
            cell_names,
        };
        let removed = n - netlist.cells.len();
        PruneResult {
            netlist,
            sig_map,
            ff_map,
            removed_cells: removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{CellKind, NetlistBuilder};
    use super::*;

    #[test]
    fn keeps_everything_when_all_observable() {
        let mut b = NetlistBuilder::new("full");
        let a = b.input("a");
        let g = b.not(a);
        b.output("y", g);
        let n = b.finish().unwrap();
        let p = n.pruned();
        assert_eq!(p.removed_cells(), 0);
        assert_eq!(p.netlist().num_cells(), n.num_cells());
    }

    #[test]
    fn removes_dead_gate() {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a");
        let used = b.not(a);
        let _dead = b.and2(a, used);
        b.output("y", used);
        let n = b.finish().unwrap();
        let p = n.pruned();
        assert_eq!(p.removed_cells(), 1);
        assert_eq!(p.netlist().num_gates(), 1);
    }

    #[test]
    fn removes_dead_ff_chain_and_remaps_indices() {
        let mut b = NetlistBuilder::new("ffdead");
        let a = b.input("a");
        // ff0 is dead (feeds nothing observable), ff1 is live.
        let ff0 = b.dff(false);
        let ff1 = b.dff(true);
        b.connect_dff(ff0, a).unwrap();
        let g = b.xor2(ff1, a);
        b.connect_dff(ff1, g).unwrap();
        b.output("y", ff1);
        let n = b.finish().unwrap();
        assert_eq!(n.num_ffs(), 2);

        let p = n.pruned();
        assert_eq!(p.netlist().num_ffs(), 1);
        assert_eq!(
            p.ff_map().get(&FfIndex::new(1)),
            Some(&FfIndex::new(0))
        );
        assert!(p.ff_map().get(&FfIndex::new(0)).is_none());
        assert_eq!(p.netlist().ff_init_values(), vec![true]);
    }

    #[test]
    fn live_ff_keeps_its_fanin() {
        let mut b = NetlistBuilder::new("fanin");
        let a = b.input("a");
        let inv = b.not(a);
        let ff = b.dff(false);
        b.connect_dff(ff, inv).unwrap();
        b.output("y", ff);
        let n = b.finish().unwrap();
        let p = n.pruned();
        assert_eq!(p.removed_cells(), 0);
        // The NOT gate feeding the flip-flop survived.
        assert_eq!(p.netlist().num_gates(), 1);
    }

    #[test]
    fn inputs_always_survive() {
        let mut b = NetlistBuilder::new("iface");
        let _a = b.input("a");
        let _b2 = b.input("b");
        let c = b.constant(true);
        b.output("y", c);
        let n = b.finish().unwrap();
        let p = n.pruned();
        assert_eq!(p.netlist().num_inputs(), 2);
        assert_eq!(p.netlist().input_names().len(), 2);
    }

    #[test]
    fn pruned_netlist_is_valid() {
        let mut b = NetlistBuilder::new("valid");
        let a = b.input("a");
        let dead_ff = b.dff(false);
        let dead_g = b.not(dead_ff);
        b.connect_dff(dead_ff, dead_g).unwrap();
        let live = b.buf(a);
        b.output("y", live);
        let n = b.finish().unwrap();
        let p = n.pruned();
        // levelize (re-validation) must succeed and all pins resolve.
        assert!(p.netlist().levelize().is_ok());
        for (_, cell) in p.netlist().iter_cells() {
            for pin in cell.pins() {
                assert!(pin.index() < p.netlist().num_cells());
            }
            assert!(!matches!(cell.kind(), CellKind::Dff { .. }) || cell.pins().len() == 1);
        }
    }
}
