//! ISCAS'85/'89 `.bench` netlist frontend and emitter.
//!
//! The `.bench` format is the lingua franca of the ISCAS'85 (c432,
//! c6288, …) and ISCAS'89 (s27, s344, s5378, …) benchmark suites:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G10 = NOR(G14, G11)
//! G14 = NOT(G0)
//! ```
//!
//! Keywords are case-insensitive; net names are case-sensitive
//! whitespace-free tokens. Supported gate functions: `AND`, `OR`,
//! `NAND`, `NOR`, `XOR`, `XNOR`, `NOT`, `BUF`/`BUFF`, `MUX`
//! (`[sel, d0, d1]` pin order), the constants `CONST0`/`CONST1`
//! (`GND`/`VCC` aliases, no arguments) and `DFF`. Statements may appear
//! in any order; forward references are resolved by the shared
//! [import layer](crate::import).
//!
//! `.bench` has no notion of flip-flop initial values; every `DFF`
//! powers up at `0` unless overridden by the pragma comment
//!
//! ```text
//! #@ init <net> <0|1>
//! ```
//!
//! which may appear anywhere in the file, standalone or trailing a
//! statement (recognized whenever a line's first `#` is immediately
//! followed by `@`). The full grammar, including
//! the pragma, is specified in `docs/FORMATS.md` at the repository
//! root; parse-layer errors carry 1-based line numbers (see the
//! [error contract](crate::NetlistError)).
//!
//! # Example
//!
//! ```
//! let src = "\
//! INPUT(a)
//! OUTPUT(y)
//! #@ init q 1
//! q = DFF(nx)
//! nx = XOR(a, q)
//! y = NOT(q)
//! ";
//! let n = seugrade_netlist::bench::parse(src)?;
//! assert_eq!(n.num_ffs(), 1);
//! assert_eq!(n.ff_init_values(), vec![true]);
//! # Ok::<(), seugrade_netlist::NetlistError>(())
//! ```

use std::collections::HashMap;

use crate::ident::EmitNames;
use crate::import::{lower, Stmt};
use crate::{CellKind, GateKind, Netlist, NetlistError, SigId};

/// Serializes a netlist to ISCAS `.bench` text — the interop emitter
/// pairing [`parse`].
///
/// Inputs are referenced by their port names (legalized through the
/// shared escaping pass (`ident`) when they contain characters
/// the grammar reserves); every other net uses its stable `n<i>` id.
/// Flip-flops become `DFF(...)` statements with a
/// `#@ init <net> 1` pragma for every non-zero power-on value, and
/// constants become `CONST0()`/`CONST1()`. `.bench` identifies output
/// ports with the nets they observe, so when several ports share one
/// driver the later ports are emitted through `BUFF` aliases (swept
/// away again on re-import); original output port *names* are not
/// representable in the format and are dropped.
///
/// The emitted text re-imports ([`crate::import`]) to a circuit that is
/// sequentially equivalent to the original — the ingest round-trip
/// suite enforces `import → emit → import` equivalence for every
/// registry circuit.
#[must_use]
pub fn emit(netlist: &Netlist) -> String {
    let mut out = String::new();
    // Formatting into a `String` cannot fail; `emit_into` threads
    // `fmt::Result` anyway so the body stays `?`-based with a single
    // audited expect at this boundary instead of an unwrap per line.
    emit_into(netlist, &mut out).expect("formatting into a String never fails");
    out
}

/// The `?`-based body of [`emit`], writing to any [`fmt::Write`] sink.
fn emit_into(netlist: &Netlist, out: &mut impl std::fmt::Write) -> std::fmt::Result {
    let mut names = EmitNames::new(netlist, crate::ident::bench_legal);
    writeln!(out, "# {} (emitted by seugrade-netlist)", netlist.name())?;
    for &sig in netlist.inputs() {
        writeln!(out, "INPUT({})", names.token(sig))?;
    }
    let mut seen_outputs: HashMap<SigId, usize> = HashMap::new();
    for (_, sig) in netlist.outputs() {
        let aliases = seen_outputs.entry(*sig).or_insert(0);
        if *aliases == 0 {
            writeln!(out, "OUTPUT({})", names.token(*sig))?;
        } else {
            // A net may be OUTPUT once; further ports alias it through
            // a buffer.
            let want = format!("{}_o{aliases}", names.token(*sig));
            let alias = names.fresh(&want);
            writeln!(out, "{alias} = BUFF({})", names.token(*sig))?;
            writeln!(out, "OUTPUT({alias})")?;
        }
        *aliases += 1;
    }
    for (id, cell) in netlist.iter_cells() {
        match cell.kind() {
            CellKind::Input => {}
            CellKind::Const(v) => {
                writeln!(out, "{} = CONST{}()", names.token(id), u8::from(v))?;
            }
            CellKind::Gate(kind) => {
                let name = match kind {
                    GateKind::Buf => "BUFF".to_owned(),
                    k => k.mnemonic().to_ascii_uppercase(),
                };
                let pins: Vec<String> =
                    cell.pins().iter().map(|&p| names.token(p).to_owned()).collect();
                writeln!(out, "{} = {name}({})", names.token(id), pins.join(", "))?;
            }
            CellKind::Dff { init } => {
                writeln!(out, "{} = DFF({})", names.token(id), names.token(cell.pins()[0]))?;
                if init {
                    writeln!(out, "#@ init {} 1", names.token(id))?;
                }
            }
        }
    }
    Ok(())
}

/// Splits `NAME(arg, arg, ...)` into the head token and its arguments.
fn call<'a>(text: &'a str, line: usize) -> Result<(&'a str, Vec<&'a str>), NetlistError> {
    let open = text.find('(').ok_or_else(|| NetlistError::Parse {
        line,
        msg: format!("expected `(` in `{text}`"),
    })?;
    let close = text.rfind(')').ok_or_else(|| NetlistError::Parse {
        line,
        msg: format!("missing `)` in `{text}`"),
    })?;
    if close < open || !text[close + 1..].trim().is_empty() {
        return Err(NetlistError::Parse {
            line,
            msg: format!("malformed call `{text}`"),
        });
    }
    let head = text[..open].trim();
    let inner = &text[open + 1..close];
    let args: Vec<&str> = inner
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .collect();
    if head.is_empty() {
        return Err(NetlistError::Parse {
            line,
            msg: format!("missing function name in `{text}`"),
        });
    }
    Ok((head, args))
}

/// Maps a `.bench` gate keyword to the IR gate kind.
fn gate_kind(name: &str) -> Option<GateKind> {
    match name.to_ascii_uppercase().as_str() {
        "AND" => Some(GateKind::And),
        "OR" => Some(GateKind::Or),
        "NAND" => Some(GateKind::Nand),
        "NOR" => Some(GateKind::Nor),
        "XOR" => Some(GateKind::Xor),
        "XNOR" => Some(GateKind::Xnor),
        "NOT" | "INV" => Some(GateKind::Not),
        "BUF" | "BUFF" => Some(GateKind::Buf),
        "MUX" => Some(GateKind::Mux),
        _ => None,
    }
}

/// Parses ISCAS `.bench` text into a validated [`Netlist`].
///
/// The netlist's module name is `bench` (the format has no name
/// directive); rename-sensitive callers can rebuild through
/// [`crate::import`] fixtures or ignore the name.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines (unknown gate
/// function, bad pragma, duplicate definitions),
/// [`NetlistError::UnknownNet`] for references to nets never defined,
/// and any validation error from the shared lowering (dangling outputs,
/// combinational loops, duplicate port names).
pub fn parse(src: &str) -> Result<Netlist, NetlistError> {
    // Pragma sweep first: `#@ init <net> <0|1>` assigns a DFF's
    // power-on value. The pragma may stand alone or trail a statement
    // (`q = DFF(nx) #@ init q 1`); it is recognized whenever the
    // line's *first* `#` is immediately followed by `@`.
    let mut inits: HashMap<&str, (usize, bool)> = HashMap::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let Some(hash) = raw.find('#') else { continue };
        let Some(rest) = raw[hash + 1..].strip_prefix('@') else { continue };
        let toks: Vec<&str> = rest.split_whitespace().collect();
        match toks.as_slice() {
            ["init", net, bit] => {
                let value = match *bit {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(NetlistError::Parse {
                            line,
                            msg: format!("init pragma expects 0 or 1, found `{other}`"),
                        })
                    }
                };
                if inits.insert(net, (line, value)).is_some() {
                    return Err(NetlistError::Parse {
                        line,
                        msg: format!("duplicate init pragma for `{net}`"),
                    });
                }
            }
            _ => {
                return Err(NetlistError::Parse {
                    line,
                    msg: format!("unknown pragma `#@{rest}` (expected `#@ init <net> <0|1>`)"),
                });
            }
        }
    }

    let mut stmts: Vec<(usize, Stmt<'_>)> = Vec::new();
    let mut dff_nets: HashMap<&str, usize> = HashMap::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        // `#` starts a comment (pragma or plain); any statement before
        // it still parses, so trailing `#@ init` pragmas compose.
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        if let Some(eq) = text.find('=') {
            // `<net> = FUNC(args)`
            let net = text[..eq].trim();
            if net.is_empty() || net.split_whitespace().count() != 1 {
                return Err(NetlistError::Parse {
                    line,
                    msg: format!("expected a single net name before `=` in `{text}`"),
                });
            }
            let (func, args) = call(text[eq + 1..].trim(), line)?;
            let upper = func.to_ascii_uppercase();
            match upper.as_str() {
                "DFF" | "FF" => {
                    if args.len() != 1 {
                        return Err(NetlistError::Parse {
                            line,
                            msg: format!("DFF takes exactly one input, got {}", args.len()),
                        });
                    }
                    dff_nets.insert(net, line);
                    // Init patched below once pragmas are matched.
                    stmts.push((line, Stmt::Dff { net, init: false, d: args[0] }));
                }
                "CONST0" | "GND" | "CONST1" | "VCC" => {
                    if !args.is_empty() {
                        return Err(NetlistError::Parse {
                            line,
                            msg: format!("{upper} takes no arguments"),
                        });
                    }
                    let value = matches!(upper.as_str(), "CONST1" | "VCC");
                    stmts.push((line, Stmt::Const { net, value }));
                }
                _ => {
                    let kind = gate_kind(func).ok_or_else(|| NetlistError::Parse {
                        line,
                        msg: format!("unknown gate function `{func}`"),
                    })?;
                    if args.is_empty() {
                        return Err(NetlistError::Parse {
                            line,
                            msg: format!("gate `{func}` needs at least one input"),
                        });
                    }
                    let (min, max) = kind.arity();
                    // Some suites write degenerate 1-input AND/OR/...
                    // gates; the builder collapses those to buffers.
                    // MUX gets no such exemption — a 1-input MUX is a
                    // truncated line, not a convention.
                    let collapsible = min == 2 && args.len() == 1;
                    if args.len() > max || (args.len() < min && !collapsible) {
                        return Err(NetlistError::Parse {
                            line,
                            msg: format!("gate `{func}` given {} inputs", args.len()),
                        });
                    }
                    stmts.push((line, Stmt::Gate { kind, net, pins: args }));
                }
            }
        } else {
            let (head, args) = call(text, line)?;
            match head.to_ascii_uppercase().as_str() {
                "INPUT" => {
                    if args.len() != 1 {
                        return Err(NetlistError::Parse {
                            line,
                            msg: "INPUT takes exactly one name".into(),
                        });
                    }
                    stmts.push((line, Stmt::Input { name: args[0] }));
                }
                "OUTPUT" => {
                    if args.len() != 1 {
                        return Err(NetlistError::Parse {
                            line,
                            msg: "OUTPUT takes exactly one name".into(),
                        });
                    }
                    // The output port borrows the net's name, matching
                    // how the suites reference outputs.
                    stmts.push((line, Stmt::Output { name: args[0], net: args[0] }));
                }
                other => {
                    return Err(NetlistError::Parse {
                        line,
                        msg: format!("unknown statement `{other}`"),
                    });
                }
            }
        }
    }

    // Patch pragma inits into their DFF statements; a pragma that names
    // no DFF is an error (most likely a typo in the net name).
    for (net, (pragma_line, value)) in &inits {
        if !dff_nets.contains_key(net) {
            return Err(NetlistError::Parse {
                line: *pragma_line,
                msg: format!("init pragma names `{net}`, which is not a DFF"),
            });
        }
        for (_, stmt) in &mut stmts {
            if let Stmt::Dff { net: dnet, init, .. } = stmt {
                if dnet == net {
                    *init = *value;
                }
            }
        }
    }

    lower("bench".to_owned(), &stmts)
}

#[cfg(test)]
mod tests {
    use crate::CellKind;

    use super::*;

    /// The real ISCAS'89 s27 netlist.
    const S27: &str = "\
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

    #[test]
    fn parses_s27() {
        let n = parse(S27).unwrap();
        assert_eq!(n.num_inputs(), 4);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_ffs(), 3);
        assert_eq!(n.num_gates(), 10);
        assert_eq!(n.ff_init_values(), vec![false; 3]);
    }

    #[test]
    fn init_pragma_sets_power_on_value() {
        let src = "\
INPUT(a)
OUTPUT(q)
q = DFF(nx)
nx = XOR(a, q)
#@ init q 1
";
        let n = parse(src).unwrap();
        assert_eq!(n.ff_init_values(), vec![true]);
    }

    #[test]
    fn trailing_init_pragma_is_not_swallowed_as_a_comment() {
        let src = "\
INPUT(a)
OUTPUT(q)
q = DFF(nx) #@ init q 1
nx = XOR(a, q)  # plain trailing comment
";
        let n = parse(src).unwrap();
        assert_eq!(n.ff_init_values(), vec![true]);
        // A pragma hidden behind a plain comment stays a comment.
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(a) # note #@ init q 1\n";
        let n = parse(src).unwrap();
        assert_eq!(n.ff_init_values(), vec![false]);
    }

    #[test]
    fn underweight_mux_rejected_instead_of_collapsing() {
        let err = parse("INPUT(s)\nOUTPUT(y)\ny = MUX(s)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }), "{err:?}");
        assert!(parse("INPUT(s)\nINPUT(d)\nOUTPUT(y)\ny = MUX(s, d)\n").is_err());
        // The n-ary collapse convention still stands.
        let n = parse("INPUT(a)\nOUTPUT(y)\ny = AND(a)\n").unwrap();
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn bad_pragmas_rejected() {
        let base = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        let err = parse(&format!("{base}#@ init q 2\n")).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 4, .. }), "{err}");
        let err = parse(&format!("{base}#@ frob q\n")).unwrap_err();
        assert!(err.to_string().contains("pragma"), "{err}");
        let err = parse(&format!("{base}#@ init nx 1\n")).unwrap_err();
        assert!(err.to_string().contains("not a DFF"), "{err}");
        let err = parse(&format!("{base}#@ init q 1\n#@ init q 0\n")).unwrap_err();
        assert!(err.to_string().contains("duplicate init"), "{err}");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let src = "input(a)\noutput(y)\ny = nand(a, a)\n";
        let n = parse(src).unwrap();
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn constants_and_buffers() {
        let src = "\
INPUT(a)
OUTPUT(y)
one = CONST1()
z = VCC()
y = AND(a, one, z)
";
        let n = parse(src).unwrap();
        // Builder deduplicates same-value constants.
        let consts = n
            .iter_cells()
            .filter(|(_, c)| matches!(c.kind(), CellKind::Const(_)))
            .count();
        assert_eq!(consts, 1);
    }

    #[test]
    fn unknown_gate_reported_with_line() {
        let err = parse("INPUT(a)\ny = FOO(a)\nOUTPUT(y)\n").unwrap_err();
        assert!(
            matches!(err, NetlistError::Parse { line: 2, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("FOO"));
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn undefined_net_reported() {
        let err = parse("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNet { ref name, .. } if name == "ghost"));
    }

    #[test]
    fn duplicate_definition_reported() {
        let err = parse("INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn malformed_lines_reported() {
        assert!(parse("INPUT a\n").is_err());
        assert!(parse("y = AND(a\n").is_err());
        assert!(parse("= AND(a, b)\n").is_err());
        assert!(parse("y = (a)\n").is_err());
        assert!(parse("y x = AND(a, b)\n").is_err());
        assert!(parse("WIBBLE(a)\n").is_err());
        assert!(parse("INPUT(a)\ny = DFF(a, a)\nOUTPUT(y)\n").is_err());
        assert!(parse("INPUT(a)\ny = CONST0(a)\nOUTPUT(y)\n").is_err());
        assert!(parse("INPUT(a)\ny = NOT(a, a)\nOUTPUT(y)\n").is_err());
        assert!(parse("INPUT(a)\ny = AND()\nOUTPUT(y)\n").is_err());
    }

    #[test]
    fn statements_in_any_order() {
        let src = "\
y = NOT(g)
OUTPUT(y)
g = AND(a, b)
INPUT(b)
INPUT(a)
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_gates(), 2);
        assert_eq!(n.input_names(), &["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn emit_round_trips_s27_structurally() {
        let n = parse(S27).unwrap();
        let text = emit(&n);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_inputs(), n.num_inputs());
        assert_eq!(back.num_outputs(), n.num_outputs());
        assert_eq!(back.num_ffs(), n.num_ffs());
        assert_eq!(back.num_gates(), n.num_gates());
        assert_eq!(back.ff_init_values(), n.ff_init_values());
    }

    #[test]
    fn emit_preserves_init_pragmas_and_constants() {
        let src = "\
INPUT(a)
OUTPUT(y)
q = DFF(nx)
#@ init q 1
nx = XOR(a, q)
one = CONST1()
y = AND(q, one)
";
        let n = parse(src).unwrap();
        let text = emit(&n);
        assert!(text.contains("#@ init"), "{text}");
        assert!(text.contains("CONST1()"), "{text}");
        let back = parse(&text).unwrap();
        assert_eq!(back.ff_init_values(), vec![true]);
    }

    #[test]
    fn emit_avoids_input_names_that_look_like_net_ids() {
        // Inputs take SigIds 0-1, so the AND gate is SigId 2 — which the
        // naive token scheme would also call `n2`, colliding with the
        // input of that name.
        let src = "INPUT(n2)\nINPUT(b)\nOUTPUT(y)\ny = AND(n2, b)\n";
        let n = parse(src).unwrap();
        let text = emit(&n);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_gates(), 1);
        assert!(text.contains("n_2 = AND(n2, b)"), "{text}");
    }

    #[test]
    fn emit_aliases_shared_output_nets() {
        // Two output ports observing one net: `.bench` can only OUTPUT a
        // net once, so the second port goes through a BUFF alias.
        let mut b = crate::NetlistBuilder::new("shared");
        let a = b.input("a");
        let g = b.not(a);
        b.output("y0", g);
        b.output("y1", g);
        let n = b.finish().unwrap();
        let text = emit(&n);
        assert!(text.contains("BUFF"), "{text}");
        let back = parse(&text).unwrap();
        assert_eq!(back.num_outputs(), 2);
    }

    #[test]
    fn mux_pin_order_is_sel_d0_d1() {
        let src = "\
INPUT(s)
INPUT(d0)
INPUT(d1)
OUTPUT(y)
y = MUX(s, d0, d1)
";
        let n = parse(src).unwrap();
        let (_, mux) = n
            .iter_cells()
            .find(|(_, c)| matches!(c.kind(), CellKind::Gate(GateKind::Mux)))
            .unwrap();
        assert_eq!(mux.pins().len(), 3);
    }
}
