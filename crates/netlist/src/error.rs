//! Error type for netlist construction, validation and parsing.

use std::error::Error;
use std::fmt;

use crate::SigId;

/// Errors produced by this crate.
///
/// All variants carry enough context to point at the offending cell or
/// source line; the `Display` form is a single lower-case sentence as per
/// the Rust API guidelines.
///
/// # Error contract for the textual frontends
///
/// Every parser in this crate ([`text`](crate::text),
/// [`bench`](crate::bench), [`blif`](crate::blif)) lowers through the
/// shared [`import`](crate::import) layer, so diagnostics behave
/// identically across formats:
///
/// - **parse-layer errors** — malformed lines, unknown gate functions,
///   duplicate net/port definitions, references to never-defined nets —
///   are reported as [`Parse`](Self::Parse) or
///   [`UnknownNet`](Self::UnknownNet) and always carry the 1-based
///   source line, available uniformly through [`line`](Self::line);
/// - **validation errors** — combinational loops, dangling signals,
///   unconnected flip-flops — are properties of the whole graph, not of
///   one line; they carry the offending [`SigId`]s instead and
///   [`line`](Self::line) returns `None`.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A flip-flop was created with [`NetlistBuilder::dff`] but its data
    /// input was never connected before `finish`.
    ///
    /// [`NetlistBuilder::dff`]: crate::NetlistBuilder::dff
    UnconnectedDff {
        /// The flip-flop cell.
        cell: SigId,
    },
    /// `connect_dff` was called on a cell that is not a flip-flop.
    NotADff {
        /// The offending cell.
        cell: SigId,
    },
    /// `connect_dff` was called twice for the same flip-flop.
    DffAlreadyConnected {
        /// The flip-flop cell.
        cell: SigId,
    },
    /// A gate was created with a pin count outside its arity range.
    BadArity {
        /// Gate mnemonic.
        gate: &'static str,
        /// Number of pins supplied.
        got: usize,
        /// Minimum accepted pins.
        min: usize,
    },
    /// A referenced signal does not exist in the netlist under construction.
    DanglingSignal {
        /// The out-of-range signal.
        sig: SigId,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalLoop {
        /// Cells on (or feeding) the cycle, in id order.
        cells: Vec<SigId>,
    },
    /// Two outputs (or two inputs) were declared with the same name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// Text-format parse error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The text format referenced a net name that is never defined.
    UnknownNet {
        /// 1-based source line.
        line: usize,
        /// The undefined name.
        name: String,
    },
}

impl NetlistError {
    /// The 1-based source line a parse-layer error points at, or `None`
    /// for whole-graph validation errors (see the error contract above).
    #[must_use]
    pub fn line(&self) -> Option<usize> {
        match self {
            NetlistError::Parse { line, .. } | NetlistError::UnknownNet { line, .. } => {
                Some(*line)
            }
            _ => None,
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnconnectedDff { cell } => {
                write!(f, "flip-flop {cell} has no data input connected")
            }
            NetlistError::NotADff { cell } => {
                write!(f, "cell {cell} is not a flip-flop")
            }
            NetlistError::DffAlreadyConnected { cell } => {
                write!(f, "flip-flop {cell} already has a data input")
            }
            NetlistError::BadArity { gate, got, min } => {
                write!(f, "gate `{gate}` given {got} pins, needs at least {min}")
            }
            NetlistError::DanglingSignal { sig } => {
                write!(f, "signal {sig} does not exist in this netlist")
            }
            NetlistError::CombinationalLoop { cells } => {
                write!(f, "combinational loop through {} cell(s)", cells.len())
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "duplicate port name `{name}`")
            }
            NetlistError::Parse { line, msg } => {
                write!(f, "parse error at line {line}: {msg}")
            }
            NetlistError::UnknownNet { line, name } => {
                write!(f, "line {line} references undefined net `{name}`")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = NetlistError::UnconnectedDff { cell: SigId::new(3) };
        assert_eq!(e.to_string(), "flip-flop n3 has no data input connected");

        let e = NetlistError::BadArity { gate: "and", got: 1, min: 2 };
        assert!(e.to_string().contains("`and`"));

        let e = NetlistError::Parse { line: 4, msg: "bad token".into() };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn line_accessor_follows_the_contract() {
        let e = NetlistError::Parse { line: 4, msg: "x".into() };
        assert_eq!(e.line(), Some(4));
        let e = NetlistError::UnknownNet { line: 9, name: "n".into() };
        assert_eq!(e.line(), Some(9));
        let e = NetlistError::CombinationalLoop { cells: vec![] };
        assert_eq!(e.line(), None);
        let e = NetlistError::UnconnectedDff { cell: SigId::new(0) };
        assert_eq!(e.line(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<NetlistError>();
    }
}
