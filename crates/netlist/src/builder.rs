//! Validated netlist construction.

use std::collections::HashMap;

use crate::{Cell, CellKind, GateKind, Netlist, NetlistError, SigId};

/// Incremental builder for [`Netlist`] values.
///
/// The builder lets sequential feedback be expressed safely: create a
/// flip-flop first with [`dff`](Self::dff) (obtaining its output signal),
/// build logic that uses it, and close the loop later with
/// [`connect_dff`](Self::connect_dff). [`finish`](Self::finish) validates
/// the result (connectivity, arities, combinational acyclicity).
///
/// # Example
///
/// ```
/// use seugrade_netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), seugrade_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("counter2");
/// let b0 = b.dff(false);
/// let b1 = b.dff(false);
/// let n0 = b.not(b0);
/// let n1 = b.xor2(b1, b0);
/// b.connect_dff(b0, n0)?;
/// b.connect_dff(b1, n1)?;
/// b.output("lsb", b0);
/// b.output("msb", b1);
/// let counter = b.finish()?;
/// assert_eq!(counter.num_ffs(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    cells: Vec<Cell>,
    inputs: Vec<SigId>,
    input_names: Vec<String>,
    outputs: Vec<(String, SigId)>,
    ffs: Vec<SigId>,
    cell_names: HashMap<SigId, String>,
    const_cache: [Option<SigId>; 2],
}

impl NetlistBuilder {
    /// Creates an empty builder for a module called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            cells: Vec::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            ffs: Vec::new(),
            cell_names: HashMap::new(),
            const_cache: [None, None],
        }
    }

    fn push(&mut self, kind: CellKind, pins: Vec<SigId>) -> SigId {
        let id = SigId::new(self.cells.len());
        self.cells.push(Cell::new(kind, pins));
        id
    }

    /// Number of cells created so far.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Declares a primary input and returns its signal.
    pub fn input(&mut self, name: impl Into<String>) -> SigId {
        let id = self.push(CellKind::Input, Vec::new());
        self.inputs.push(id);
        self.input_names.push(name.into());
        id
    }

    /// Returns a constant driver, deduplicated per builder.
    pub fn constant(&mut self, value: bool) -> SigId {
        if let Some(id) = self.const_cache[usize::from(value)] {
            return id;
        }
        let id = self.push(CellKind::Const(value), Vec::new());
        self.const_cache[usize::from(value)] = Some(id);
        id
    }

    /// Creates a flip-flop with the given initial value. Its data input is
    /// left open and **must** be connected with
    /// [`connect_dff`](Self::connect_dff) before [`finish`](Self::finish).
    pub fn dff(&mut self, init: bool) -> SigId {
        let id = self.push(CellKind::Dff { init }, vec![SigId::INVALID]);
        self.ffs.push(id);
        id
    }

    /// Connects the data input of flip-flop `ff` to `d`, closing a
    /// sequential loop.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotADff`] if `ff` is not a flip-flop,
    /// [`NetlistError::DffAlreadyConnected`] if called twice, and
    /// [`NetlistError::DanglingSignal`] if `d` is out of range.
    pub fn connect_dff(&mut self, ff: SigId, d: SigId) -> Result<(), NetlistError> {
        if d.index() >= self.cells.len() {
            return Err(NetlistError::DanglingSignal { sig: d });
        }
        let n = self.cells.len();
        let cell = self
            .cells
            .get_mut(ff.index())
            .filter(|c| c.kind().is_ff())
            .ok_or(NetlistError::NotADff { cell: ff })?;
        debug_assert!(ff.index() < n);
        let pin = &mut cell.pins_mut()[0];
        if pin.is_valid() {
            return Err(NetlistError::DffAlreadyConnected { cell: ff });
        }
        *pin = d;
        Ok(())
    }

    /// Creates an n-ary gate.
    ///
    /// Single-input `And`/`Or`/`Xor` collapse to a buffer; this keeps
    /// generated reduction trees simple.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is empty or violates the gate's arity (program
    /// error in circuit-construction code, not recoverable input).
    pub fn gate(&mut self, kind: GateKind, pins: &[SigId]) -> SigId {
        assert!(!pins.is_empty(), "gate {kind} with no pins");
        for &p in pins {
            assert!(
                p.index() < self.cells.len(),
                "gate {kind} references unknown signal {p:?}"
            );
        }
        if pins.len() == 1 {
            return match kind {
                GateKind::Not | GateKind::Nand | GateKind::Nor => self.not(pins[0]),
                GateKind::Xnor => self.not(pins[0]),
                _ => self.buf(pins[0]),
            };
        }
        let (min, max) = kind.arity();
        assert!(
            pins.len() >= min && pins.len() <= max,
            "gate {kind} given {} pins",
            pins.len()
        );
        self.push(CellKind::Gate(kind), pins.to_vec())
    }

    /// Identity buffer.
    pub fn buf(&mut self, a: SigId) -> SigId {
        self.push(CellKind::Gate(GateKind::Buf), vec![a])
    }

    /// Inverter.
    pub fn not(&mut self, a: SigId) -> SigId {
        self.push(CellKind::Gate(GateKind::Not), vec![a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: SigId, b: SigId) -> SigId {
        self.gate(GateKind::And, &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: SigId, b: SigId) -> SigId {
        self.gate(GateKind::Or, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: SigId, b: SigId) -> SigId {
        self.gate(GateKind::Xor, &[a, b])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: SigId, b: SigId) -> SigId {
        self.gate(GateKind::Nand, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: SigId, b: SigId) -> SigId {
        self.gate(GateKind::Nor, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: SigId, b: SigId) -> SigId {
        self.gate(GateKind::Xnor, &[a, b])
    }

    /// 2:1 multiplexer returning `d1` when `sel` is true, `d0` otherwise.
    pub fn mux(&mut self, sel: SigId, d0: SigId, d1: SigId) -> SigId {
        self.gate(GateKind::Mux, &[sel, d0, d1])
    }

    /// Declares a primary output driven by `sig`.
    pub fn output(&mut self, name: impl Into<String>, sig: SigId) {
        self.outputs.push((name.into(), sig));
    }

    /// Attaches a debug name to a signal (kept through serialization).
    pub fn name_signal(&mut self, sig: SigId, name: impl Into<String>) {
        self.cell_names.insert(sig, name.into());
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::UnconnectedDff`] if any flip-flop's `d` is open;
    /// - [`NetlistError::DanglingSignal`] if an output references an
    ///   out-of-range signal;
    /// - [`NetlistError::DuplicateName`] for repeated input/output names;
    /// - [`NetlistError::CombinationalLoop`] if gates form a cycle.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        for (&ff, _) in self.ffs.iter().zip(0u32..) {
            if !self.cells[ff.index()].pins()[0].is_valid() {
                return Err(NetlistError::UnconnectedDff { cell: ff });
            }
        }
        for (_, sig) in &self.outputs {
            if sig.index() >= self.cells.len() {
                return Err(NetlistError::DanglingSignal { sig: *sig });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for name in &self.input_names {
            if !seen.insert(name.clone()) {
                return Err(NetlistError::DuplicateName { name: name.clone() });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for (name, _) in &self.outputs {
            if !seen.insert(name.clone()) {
                return Err(NetlistError::DuplicateName { name: name.clone() });
            }
        }
        let netlist = Netlist {
            name: self.name,
            cells: self.cells,
            inputs: self.inputs,
            input_names: self.input_names,
            outputs: self.outputs,
            ffs: self.ffs,
            cell_names: self.cell_names,
        };
        // Levelization doubles as the combinational-cycle check.
        netlist.levelize()?;
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_deduplicated() {
        let mut b = NetlistBuilder::new("c");
        let t1 = b.constant(true);
        let t2 = b.constant(true);
        let f1 = b.constant(false);
        assert_eq!(t1, t2);
        assert_ne!(t1, f1);
    }

    #[test]
    fn unconnected_dff_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let q = b.dff(false);
        b.output("q", q);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::UnconnectedDff { .. })
        ));
    }

    #[test]
    fn double_connect_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let q = b.dff(false);
        let c = b.constant(false);
        b.connect_dff(q, c).unwrap();
        assert!(matches!(
            b.connect_dff(q, c),
            Err(NetlistError::DffAlreadyConnected { .. })
        ));
    }

    #[test]
    fn connect_non_dff_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let c = b.constant(false);
        assert!(matches!(
            b.connect_dff(a, c),
            Err(NetlistError::NotADff { .. })
        ));
    }

    #[test]
    fn combinational_loop_rejected() {
        // A loop through gates only (no flip-flop) must be refused. We
        // can't express it with the forward-only gate API, so craft it via
        // a dff connect trick is impossible too -- instead use two muxes
        // whose select comes from each other via builder internals: build
        // with text parser instead. Here: gate feeding itself via dff is
        // legal, so check the legal case passes.
        let mut b = NetlistBuilder::new("ok");
        let q = b.dff(false);
        let n = b.not(q);
        b.connect_dff(q, n).unwrap();
        b.output("q", q);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn duplicate_output_name_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        b.output("y", a);
        b.output("y", a);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn duplicate_input_name_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let _ = b.input("a");
        let _ = b.input("a");
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn single_pin_gates_collapse() {
        let mut b = NetlistBuilder::new("collapse");
        let a = b.input("a");
        let and1 = b.gate(GateKind::And, &[a]);
        let nor1 = b.gate(GateKind::Nor, &[a]);
        b.output("x", and1);
        b.output("y", nor1);
        let n = b.finish().unwrap();
        assert!(matches!(
            n.cell(and1).kind(),
            CellKind::Gate(GateKind::Buf)
        ));
        assert!(matches!(
            n.cell(nor1).kind(),
            CellKind::Gate(GateKind::Not)
        ));
    }

    #[test]
    #[should_panic(expected = "unknown signal")]
    fn gate_with_future_signal_panics() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let _ = b.gate(GateKind::And, &[a, SigId::new(99)]);
    }

    #[test]
    fn output_order_preserved() {
        let mut b = NetlistBuilder::new("order");
        let a = b.input("a");
        let c = b.input("b");
        b.output("second", c);
        b.output("first", a);
        let n = b.finish().unwrap();
        assert_eq!(n.outputs()[0].0, "second");
        assert_eq!(n.outputs()[1].0, "first");
    }
}
