//! Structural Verilog frontend and emitter.
//!
//! The subset is the gate-level netlist dialect that synthesis tools
//! emit (and that the ISCAS/ITC benchmark translations circulate in):
//! one module, scalar ports and wires, primitive gate instantiations
//! and D flip-flop cells. No behavioral constructs, no vectors, no
//! hierarchy.
//!
//! ```text
//! // comment         /* block comment */
//! module s27 (G0, G1, G17);
//!   input G0, G1;
//!   output G17;
//!   wire G5, n1;
//!   and u1 (n1, G0, G1);          // instance name optional
//!   not (G17, G5);
//!   (* init = 1'b1 *) dff (G5, n1); // q, d; power-on value via attribute
//!   assign G5x = 1'b0;            // constant driver
//!   assign G17b = n1;             // buffer alias
//! endmodule
//! ```
//!
//! Supported primitives: `and`, `or`, `nand`, `nor`, `xor`, `xnor`
//! (n-ary), `not`, `buf` (one output, one input), plus the dialect
//! extensions `mux (y, sel, d0, d1)` and `dff (q, d)`. The clock is
//! implicit — `dff` has no clock pin, matching the IR's single global
//! clock — and a `(* init = 0|1|1'b0|1'b1 *)` attribute immediately
//! before a `dff` sets its power-on value. Connections are positional;
//! named port connections (`.q(x)`) and escaped identifiers are not
//! supported. Undeclared nets driven by gates are accepted (implicit
//! scalar wires, as in real Verilog); header ports must be declared
//! `input` or `output` exactly once.
//!
//! Lowering, duplicate/undefined-net diagnostics and validation are
//! shared with every other frontend through [`crate::import`]; the
//! grammar is specified in `docs/FORMATS.md`. Parse-layer errors carry
//! 1-based line numbers (see the [error contract](crate::NetlistError)).
//!
//! # Example
//!
//! ```
//! let src = "\
//! module toggle (en, q);
//!   input en;
//!   output q;
//!   wire nx;
//!   xor (nx, en, q);
//!   dff (q, nx);
//! endmodule
//! ";
//! let n = seugrade_netlist::vlog::parse(src)?;
//! assert_eq!(n.num_ffs(), 1);
//! let text = seugrade_netlist::vlog::emit(&n);
//! let back = seugrade_netlist::vlog::parse(&text)?;
//! assert_eq!(back.num_ffs(), 1);
//! # Ok::<(), seugrade_netlist::NetlistError>(())
//! ```

use std::collections::HashMap;

use crate::ident::EmitNames;
use crate::import::{lower, Stmt};
use crate::{CellKind, GateKind, Netlist, NetlistError};

/// Serializes a netlist to the structural Verilog subset — the emitter
/// pairing [`parse`].
///
/// Inputs keep their port names and — unlike `.bench`/BLIF — output
/// port *names* survive: every port is declared `output` and driven by
/// an `assign` from its net (the resulting buffer is swept away on
/// re-import). Names that are Verilog keywords or contain characters
/// outside `[A-Za-z0-9_$]` are rewritten by the shared
/// escaping pass (`ident`). Internal nets use stable `n<i>` ids;
/// flip-flops carry `(* init = 1'b1 *)` attributes for non-zero
/// power-on values.
#[must_use]
pub fn emit(netlist: &Netlist) -> String {
    let mut out = String::new();
    // Formatting into a `String` cannot fail; `emit_into` threads
    // `fmt::Result` anyway so the body stays `?`-based with a single
    // audited expect at this boundary instead of an unwrap per line.
    emit_into(netlist, &mut out).expect("formatting into a String never fails");
    out
}

/// The `?`-based body of [`emit`], writing to any [`fmt::Write`] sink.
fn emit_into(netlist: &Netlist, out: &mut impl std::fmt::Write) -> std::fmt::Result {
    let mut names = EmitNames::new(netlist, crate::ident::vlog_legal);
    let module = crate::ident::legalize(netlist.name(), crate::ident::vlog_legal);
    let in_tokens: Vec<String> =
        netlist.inputs().iter().map(|&s| names.token(s).to_owned()).collect();
    // Output ports are first-class nets in Verilog, so their names join
    // the net namespace and are deduplicated against it.
    let out_ports: Vec<String> =
        netlist.outputs().iter().map(|(name, _)| names.fresh(name)).collect();
    writeln!(out, "// {} (emitted by seugrade-netlist)", netlist.name())?;
    let ports: Vec<&str> =
        in_tokens.iter().chain(out_ports.iter()).map(String::as_str).collect();
    if ports.is_empty() {
        writeln!(out, "module {module};")?;
    } else {
        writeln!(out, "module {module} ({});", ports.join(", "))?;
    }
    for t in &in_tokens {
        writeln!(out, "  input {t};")?;
    }
    for t in &out_ports {
        writeln!(out, "  output {t};")?;
    }
    for (id, cell) in netlist.iter_cells() {
        if !matches!(cell.kind(), CellKind::Input) {
            writeln!(out, "  wire {};", names.token(id))?;
        }
    }
    for (id, cell) in netlist.iter_cells() {
        match cell.kind() {
            CellKind::Input => {}
            CellKind::Const(v) => {
                writeln!(out, "  assign {} = 1'b{};", names.token(id), u8::from(v))?;
            }
            CellKind::Gate(kind) => {
                let pins: Vec<&str> = cell.pins().iter().map(|&p| names.token(p)).collect();
                writeln!(out, "  {} ({}, {});", kind.mnemonic(), names.token(id), pins.join(", "))?;
            }
            CellKind::Dff { init } => {
                let attr = if init { "(* init = 1'b1 *) " } else { "" };
                writeln!(
                    out,
                    "  {attr}dff ({}, {});",
                    names.token(id),
                    names.token(cell.pins()[0])
                )?;
            }
        }
    }
    for ((name, sig), port) in netlist.outputs().iter().zip(&out_ports) {
        let _ = name;
        writeln!(out, "  assign {port} = {};", names.token(*sig))?;
    }
    writeln!(out, "endmodule")
}

/// One lexical token; identifiers borrow from the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tok<'a> {
    /// Identifier or keyword.
    Id(&'a str),
    /// One of `( ) , ; =`.
    Sym(char),
    /// `(*`
    AttrOpen,
    /// `*)`
    AttrClose,
    /// `0`, `1`, `1'b0`, `1'b1`.
    Lit(bool),
}

fn parse_err(line: usize, msg: impl Into<String>) -> NetlistError {
    NetlistError::Parse { line, msg: msg.into() }
}

/// Tokenizes the source, tracking 1-based lines through `//` and
/// `/* */` comments.
fn lex(src: &str) -> Result<Vec<(usize, Tok<'_>)>, NetlistError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' => match bytes.get(i + 1) {
                Some(b'/') => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                }
                Some(b'*') => {
                    let start = line;
                    i += 2;
                    loop {
                        if i + 1 >= bytes.len() {
                            return Err(parse_err(start, "unterminated `/*` comment"));
                        }
                        if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                            i += 2;
                            break;
                        }
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                _ => return Err(parse_err(line, "unexpected `/`")),
            },
            b'(' => {
                if bytes.get(i + 1) == Some(&b'*') {
                    toks.push((line, Tok::AttrOpen));
                    i += 2;
                } else {
                    toks.push((line, Tok::Sym('(')));
                    i += 1;
                }
            }
            b'*' => {
                if bytes.get(i + 1) == Some(&b')') {
                    toks.push((line, Tok::AttrClose));
                    i += 2;
                } else {
                    return Err(parse_err(line, "unexpected `*`"));
                }
            }
            b')' | b',' | b';' | b'=' => {
                toks.push((line, Tok::Sym(c as char)));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                toks.push((line, Tok::Id(&src[start..i])));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let width = &src[start..i];
                let value = if bytes.get(i) == Some(&b'\'') {
                    if width != "1" {
                        return Err(parse_err(
                            line,
                            format!("only 1-bit literals are supported, found width `{width}`"),
                        ));
                    }
                    if !matches!(bytes.get(i + 1), Some(b'b' | b'B')) {
                        return Err(parse_err(line, "expected `b` after `1'` in literal"));
                    }
                    let bit = match bytes.get(i + 2) {
                        Some(b'0') => false,
                        Some(b'1') => true,
                        _ => {
                            return Err(parse_err(
                                line,
                                "expected `0` or `1` after `1'b` in literal",
                            ))
                        }
                    };
                    i += 3;
                    bit
                } else {
                    match width {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(parse_err(
                                line,
                                format!("unsupported numeric literal `{other}`"),
                            ))
                        }
                    }
                };
                if i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    return Err(parse_err(line, "malformed literal"));
                }
                toks.push((line, Tok::Lit(value)));
            }
            other => {
                return Err(parse_err(
                    line,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        }
    }
    Ok(toks)
}

/// Keywords of the subset grammar (kept in sync with the emitter's
/// escaping rules in [`crate::ident`]).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "module" | "endmodule" | "input" | "output" | "inout" | "wire" | "reg" | "assign"
    ) || prim_kind(s).is_some()
        || s == "dff"
}

/// Maps a primitive keyword to the IR gate kind (`dff` handled apart).
fn prim_kind(s: &str) -> Option<GateKind> {
    match s {
        "and" => Some(GateKind::And),
        "or" => Some(GateKind::Or),
        "nand" => Some(GateKind::Nand),
        "nor" => Some(GateKind::Nor),
        "xor" => Some(GateKind::Xor),
        "xnor" => Some(GateKind::Xnor),
        "not" => Some(GateKind::Not),
        "buf" => Some(GateKind::Buf),
        "mux" => Some(GateKind::Mux),
        _ => None,
    }
}

/// Token-stream cursor with line-carrying errors.
struct Parser<'a> {
    toks: Vec<(usize, Tok<'a>)>,
    pos: usize,
    /// Line reported for unexpected end-of-file.
    eof_line: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<(usize, Tok<'a>)> {
        self.toks.get(self.pos).copied()
    }

    fn next(&mut self) -> Result<(usize, Tok<'a>), NetlistError> {
        let t = self
            .peek()
            .ok_or_else(|| parse_err(self.eof_line, "unexpected end of file"))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_sym(&mut self, sym: char) -> bool {
        if let Some((_, Tok::Sym(c))) = self.peek() {
            if c == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, sym: char) -> Result<(), NetlistError> {
        let (line, tok) = self.next()?;
        match tok {
            Tok::Sym(c) if c == sym => Ok(()),
            other => Err(parse_err(line, format!("expected `{sym}`, found {}", show(other)))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<usize, NetlistError> {
        let (line, tok) = self.next()?;
        match tok {
            Tok::Id(id) if id == kw => Ok(line),
            other => Err(parse_err(line, format!("expected `{kw}`, found {}", show(other)))),
        }
    }

    /// A net/port/module identifier; keywords are rejected here so a
    /// stray statement keyword inside a pin list gets a clear message.
    fn ident(&mut self) -> Result<(&'a str, usize), NetlistError> {
        let (line, tok) = self.next()?;
        match tok {
            Tok::Id(id) if !is_keyword(id) => Ok((id, line)),
            Tok::Id(id) => Err(parse_err(
                line,
                format!("`{id}` is a keyword and cannot be used as a name"),
            )),
            other => Err(parse_err(line, format!("expected a name, found {}", show(other)))),
        }
    }
}

/// Human-readable token for error messages.
fn show(tok: Tok<'_>) -> String {
    match tok {
        Tok::Id(id) => format!("`{id}`"),
        Tok::Sym(c) => format!("`{c}`"),
        Tok::AttrOpen => "`(*`".into(),
        Tok::AttrClose => "`*)`".into(),
        Tok::Lit(v) => format!("literal `1'b{}`", u8::from(v)),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Decl {
    Input,
    Output,
    Wire,
}

/// Parses structural Verilog text into a validated [`Netlist`].
///
/// The module name becomes the netlist name.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for lexical and grammatical errors
/// (unknown primitives, undeclared header ports, misplaced attributes,
/// malformed literals), [`NetlistError::UnknownNet`] for references to
/// nets never driven, and any validation error from the shared lowering
/// (combinational loops, duplicate definitions, dangling ports). All
/// parse-layer errors carry 1-based line numbers.
pub fn parse(src: &str) -> Result<Netlist, NetlistError> {
    let toks = lex(src)?;
    let eof_line = src.lines().count().max(1);
    let mut p = Parser { toks, pos: 0, eof_line };

    p.keyword("module")?;
    let (module_name, _) = p.ident()?;
    let mut header: Vec<(&str, usize)> = Vec::new();
    if p.eat_sym('(') && !p.eat_sym(')') {
        loop {
            let (id, line) = p.ident()?;
            header.push((id, line));
            if p.eat_sym(',') {
                continue;
            }
            p.expect_sym(')')?;
            break;
        }
    }
    p.expect_sym(';')?;

    let mut decls: HashMap<&str, (Decl, usize)> = HashMap::new();
    let mut body: Vec<(usize, Stmt<'_>)> = Vec::new();
    let mut pending_init: Option<(bool, usize)> = None;

    loop {
        let Some((line, tok)) = p.peek() else {
            return Err(parse_err(
                p.eof_line,
                format!("file ends inside module `{module_name}` (missing `endmodule`)"),
            ));
        };
        // Everything except a `dff` instance invalidates a pending
        // `(* init *)` attribute.
        let must_be_dff = pending_init.is_some();
        match tok {
            Tok::Id("endmodule") => {
                if let Some((_, aline)) = pending_init {
                    return Err(parse_err(
                        aline,
                        "`(* init *)` attribute is not followed by a dff instance",
                    ));
                }
                p.pos += 1;
                break;
            }
            Tok::Id(kw @ ("input" | "output" | "wire")) => {
                if must_be_dff {
                    let (_, aline) = pending_init.expect("checked");
                    return Err(parse_err(
                        aline,
                        "`(* init *)` attribute must immediately precede a dff instance",
                    ));
                }
                p.pos += 1;
                let decl = match kw {
                    "input" => Decl::Input,
                    "output" => Decl::Output,
                    _ => Decl::Wire,
                };
                loop {
                    let (id, dline) = p.ident()?;
                    if decls.insert(id, (decl, dline)).is_some() {
                        return Err(parse_err(dline, format!("`{id}` declared twice")));
                    }
                    if p.eat_sym(',') {
                        continue;
                    }
                    p.expect_sym(';')?;
                    break;
                }
            }
            Tok::Id("assign") => {
                if must_be_dff {
                    let (_, aline) = pending_init.expect("checked");
                    return Err(parse_err(
                        aline,
                        "`(* init *)` attribute must immediately precede a dff instance",
                    ));
                }
                p.pos += 1;
                let (target, tline) = p.ident()?;
                p.expect_sym('=')?;
                let (rline, rhs) = p.next()?;
                let stmt = match rhs {
                    Tok::Lit(value) => Stmt::Const { net: target, value },
                    Tok::Id(id) if !is_keyword(id) => {
                        Stmt::Gate { kind: GateKind::Buf, net: target, pins: vec![id] }
                    }
                    other => {
                        return Err(parse_err(
                            rline,
                            format!(
                                "assign expects a net or 1-bit literal, found {}",
                                show(other)
                            ),
                        ));
                    }
                };
                p.expect_sym(';')?;
                body.push((tline, stmt));
            }
            Tok::AttrOpen => {
                p.pos += 1;
                let (aline, atok) = p.next()?;
                let name = match atok {
                    Tok::Id(id) => id,
                    other => {
                        return Err(parse_err(
                            aline,
                            format!("expected an attribute name, found {}", show(other)),
                        ))
                    }
                };
                if name != "init" {
                    return Err(parse_err(
                        aline,
                        format!("unknown attribute `{name}` (expected `init`)"),
                    ));
                }
                p.expect_sym('=')?;
                let (vline, vtok) = p.next()?;
                let value = match vtok {
                    Tok::Lit(v) => v,
                    other => {
                        return Err(parse_err(
                            vline,
                            format!("init expects `0`, `1`, `1'b0` or `1'b1`, found {}", show(other)),
                        ))
                    }
                };
                let (cline, ctok) = p.next()?;
                if ctok != Tok::AttrClose {
                    return Err(parse_err(
                        cline,
                        format!("expected `*)`, found {}", show(ctok)),
                    ));
                }
                if pending_init.replace((value, aline)).is_some() {
                    return Err(parse_err(aline, "duplicate `(* init *)` attribute"));
                }
            }
            Tok::Id("dff") => {
                p.pos += 1;
                let args = instance_args(&mut p)?;
                if args.len() != 2 {
                    return Err(parse_err(
                        line,
                        format!("dff takes exactly (q, d), got {} pins", args.len()),
                    ));
                }
                let init = pending_init.take().map_or(false, |(v, _)| v);
                body.push((line, Stmt::Dff { net: args[0], init, d: args[1] }));
            }
            Tok::Id(word) => {
                let Some(kind) = prim_kind(word) else {
                    return Err(parse_err(
                        line,
                        format!("unknown statement or primitive `{word}`"),
                    ));
                };
                if must_be_dff {
                    let (_, aline) = pending_init.expect("checked");
                    return Err(parse_err(
                        aline,
                        "`(* init *)` attribute must immediately precede a dff instance",
                    ));
                }
                p.pos += 1;
                let args = instance_args(&mut p)?;
                if args.len() < 2 {
                    return Err(parse_err(
                        line,
                        format!("`{word}` needs an output and at least one input"),
                    ));
                }
                let pins = args[1..].to_vec();
                let (min, max) = kind.arity();
                // Degenerate 1-input AND/OR/… collapse to buffers in the
                // builder, matching the `.bench` frontend's convention.
                let collapsible = min == 2 && pins.len() == 1;
                if pins.len() > max || (pins.len() < min && !collapsible) {
                    return Err(parse_err(
                        line,
                        format!("`{word}` given {} inputs", pins.len()),
                    ));
                }
                body.push((line, Stmt::Gate { kind, net: args[0], pins }));
            }
            other => {
                return Err(parse_err(
                    line,
                    format!("expected a statement, found {}", show(other)),
                ));
            }
        }
    }

    if let Some((line, tok)) = p.peek() {
        let msg = if tok == Tok::Id("module") {
            "only one module per file is supported".to_owned()
        } else {
            format!("content after `endmodule`: {}", show(tok))
        };
        return Err(parse_err(line, msg));
    }

    // Header/declaration consistency: every header port is declared
    // `input` or `output` exactly once, and port declarations name
    // header ports. Wires are optional — undeclared internal nets are
    // implicit, as in real Verilog.
    let header_set: HashMap<&str, usize> = header.iter().copied().collect();
    for (port, hline) in &header {
        match decls.get(port) {
            Some((Decl::Input | Decl::Output, _)) => {}
            Some((Decl::Wire, wline)) => {
                return Err(parse_err(
                    *wline,
                    format!("port `{port}` declared `wire`; expected `input` or `output`"),
                ));
            }
            None => {
                return Err(parse_err(
                    *hline,
                    format!("port `{port}` is never declared `input` or `output`"),
                ));
            }
        }
    }
    for (name, (decl, dline)) in &decls {
        if matches!(decl, Decl::Input | Decl::Output) && !header_set.contains_key(name) {
            return Err(parse_err(
                *dline,
                format!("`{name}` is declared a port but missing from the module header"),
            ));
        }
    }

    // Assemble in lowering order: inputs (header order), body, outputs
    // (header order). Output ports observe their own net, as in
    // `.bench`.
    let mut stmts: Vec<(usize, Stmt<'_>)> = Vec::with_capacity(header.len() + body.len());
    for (port, hline) in &header {
        if matches!(decls[port], (Decl::Input, _)) {
            stmts.push((*hline, Stmt::Input { name: port }));
        }
    }
    stmts.append(&mut body);
    for (port, hline) in &header {
        if matches!(decls[port], (Decl::Output, _)) {
            stmts.push((*hline, Stmt::Output { name: port, net: port }));
        }
    }

    lower(module_name.to_owned(), &stmts)
}

/// Parses `[instance_name] ( arg {, arg} ) ;` and returns the args.
fn instance_args<'a>(p: &mut Parser<'a>) -> Result<Vec<&'a str>, NetlistError> {
    // Optional instance name before the pin list.
    if matches!(p.peek(), Some((_, Tok::Id(id))) if !is_keyword(id)) {
        p.pos += 1;
    }
    p.expect_sym('(')?;
    let mut args = Vec::new();
    if !p.eat_sym(')') {
        loop {
            match p.peek() {
                Some((line, Tok::Lit(_))) => {
                    return Err(parse_err(
                        line,
                        "literals are not allowed as pins; drive a net with `assign`",
                    ));
                }
                _ => {
                    let (id, _) = p.ident()?;
                    args.push(id);
                }
            }
            if p.eat_sym(',') {
                continue;
            }
            p.expect_sym(')')?;
            break;
        }
    }
    p.expect_sym(';')?;
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    /// The s27 netlist, translated to the Verilog subset.
    const S27_V: &str = "\
// s27, structural Verilog translation
module s27 (G0, G1, G2, G3, G17);
  input G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;
  dff q5 (G5, G10);
  dff q6 (G6, G11);
  dff q7 (G7, G13);
  not u14 (G14, G0);
  not u17 (G17, G11);
  and u8 (G8, G14, G6);
  or u15 (G15, G12, G8);
  or u16 (G16, G3, G8);
  nand u9 (G9, G16, G15);
  nor u10 (G10, G14, G11);
  nor u11 (G11, G5, G9);
  nor u12 (G12, G1, G7);
  nor u13 (G13, G2, G12);
endmodule
";

    #[test]
    fn parses_s27() {
        let n = parse(S27_V).unwrap();
        assert_eq!(n.name(), "s27");
        assert_eq!(n.num_inputs(), 4);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_ffs(), 3);
        assert_eq!(n.num_gates(), 10);
        assert_eq!(n.input_names(), &["G0", "G1", "G2", "G3"]);
    }

    #[test]
    fn agrees_with_the_bench_twin() {
        let bench = "\
INPUT(G0)\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\nOUTPUT(G17)
G5 = DFF(G10)\nG6 = DFF(G11)\nG7 = DFF(G13)
G14 = NOT(G0)\nG17 = NOT(G11)\nG8 = AND(G14, G6)
G15 = OR(G12, G8)\nG16 = OR(G3, G8)\nG9 = NAND(G16, G15)
G10 = NOR(G14, G11)\nG11 = NOR(G5, G9)\nG12 = NOR(G1, G7)\nG13 = NOR(G2, G12)
";
        let v = parse(S27_V).unwrap();
        let b = crate::bench::parse(bench).unwrap();
        testutil::assert_agree(&v, &b, 0x5EED, 32);
    }

    #[test]
    fn init_attribute_and_assign() {
        let src = "\
module t (a, y, z);
  input a;
  output y, z;
  wire nx;
  (* init = 1'b1 *) dff (y, nx);
  xor (nx, a, y);
  assign k1 = 1'b1;
  and (z, y, k1);
endmodule
";
        let n = parse(src).unwrap();
        assert_eq!(n.ff_init_values(), vec![true]);
        // `(* init = 1 *)` plain-digit form also accepted.
        let n = parse(&src.replace("1'b1 *)", "1 *)")).unwrap();
        assert_eq!(n.ff_init_values(), vec![true]);
    }

    #[test]
    fn assign_alias_is_swept_on_import() {
        let src = "\
module t (a, y);
  input a;
  output y;
  wire n1;
  not (n1, a);
  assign y = n1;
endmodule
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_outputs(), 1);
        let imp = crate::import::import_str(src, crate::import::SourceFormat::Verilog).unwrap();
        assert_eq!(imp.stats.swept_buffers, 1);
    }

    #[test]
    fn block_comments_track_lines() {
        let src = "module t (a, y);\n/* multi\nline\ncomment */\n  input a;\n  output y;\n  frob (y, a);\nendmodule\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line(), Some(7), "{err}");
        assert!(err.to_string().contains("frob"));
    }

    #[test]
    fn header_and_declaration_mismatches_are_located() {
        // Port never declared.
        let err = parse("module t (a, y);\n  input a;\n  buf (y, a);\nendmodule\n").unwrap_err();
        assert_eq!(err.line(), Some(1));
        assert!(err.to_string().contains("never declared"), "{err}");
        // Declaration missing from header.
        let err =
            parse("module t (a);\n  input a;\n  output y;\n  buf (y, a);\nendmodule\n").unwrap_err();
        assert_eq!(err.line(), Some(3));
        assert!(err.to_string().contains("missing from the module header"), "{err}");
        // Port declared wire.
        let err = parse("module t (a, y);\n  input a;\n  wire y;\n  buf (y, a);\nendmodule\n")
            .unwrap_err();
        assert_eq!(err.line(), Some(3));
        // Duplicate declaration.
        let err = parse("module t (a, y);\n  input a;\n  input a;\n  output y;\n  buf (y, a);\nendmodule\n")
            .unwrap_err();
        assert_eq!(err.line(), Some(3));
        assert!(err.to_string().contains("declared twice"), "{err}");
    }

    #[test]
    fn malformed_sources_rejected_with_lines() {
        for (src, needle) in [
            ("wire w;\n", "expected `module`"),
            ("module t (a, y);\n  input a;\n  output y;\n  buf (y, a);\n", "missing `endmodule`"),
            ("module t;\nendmodule\nmodule u;\nendmodule\n", "one module"),
            ("module t;\nendmodule\nwire w;\n", "content after"),
            ("module t (y);\n  output y;\n  assign y = 2'b01;\nendmodule\n", "1-bit"),
            ("module t (y);\n  output y;\n  assign y = 5;\nendmodule\n", "literal"),
            ("module t (a, y);\n  input a;\n  output y;\n  dff (y, a, a);\nendmodule\n", "dff takes"),
            ("module t (a, y);\n  input a;\n  output y;\n  (* init = 1 *) not (y, a);\nendmodule\n", "precede a dff"),
            ("module t (a, y);\n  input a;\n  output y;\n  (* frob = 1 *) dff (y, a);\nendmodule\n", "unknown attribute"),
            ("module t (a, y);\n  input a;\n  output y;\n  not (y, 1'b0);\nendmodule\n", "literals are not allowed"),
            ("module t (a, y);\n  input a;\n  output y;\n  mux (y, a);\nendmodule\n", "given"),
            ("module t (a, y);\n  input a;\n  output y;\n  not (y, a)\nendmodule\n", "expected `;`"),
            ("module t (wire);\nendmodule\n", "keyword"),
            ("module t; /* open\n", "unterminated"),
            ("module t;\n  @\nendmodule\n", "unexpected character"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{src}` → `{err}` (wanted `{needle}`)"
            );
            let max_line = src.lines().count() + 1;
            let line = err.line().unwrap_or(1);
            assert!(line >= 1 && line <= max_line, "line {line} out of range for `{src}`");
        }
    }

    #[test]
    fn emit_round_trips_functionally() {
        let n = parse(S27_V).unwrap();
        let text = emit(&n);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.num_inputs(), n.num_inputs());
        assert_eq!(back.num_ffs(), n.num_ffs());
        // Output port names survive the Verilog round-trip.
        assert_eq!(back.outputs()[0].0, "G17");
        testutil::assert_agree(&n, &back, 0xBEEF, 32);
    }

    #[test]
    fn emit_escapes_keyword_and_hostile_names() {
        let mut b = crate::NetlistBuilder::new("mod ule");
        let m = b.input("module");
        let s = b.input("a b");
        let g = b.and2(m, s);
        b.output("assign", g);
        b.output("y$ok", g);
        let n = b.finish().unwrap();
        let text = emit(&n);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_outputs(), 2);
        assert_eq!(back.input_names(), &["esc_module", "a_b"]);
    }

    #[test]
    fn constants_and_mux_round_trip() {
        let mut b = crate::NetlistBuilder::new("t");
        let s = b.input("s");
        let k0 = b.constant(false);
        let k1 = b.constant(true);
        let m = b.mux(s, k0, k1);
        let q = b.dff(true);
        b.connect_dff(q, m).unwrap();
        b.output("q", q);
        let n = b.finish().unwrap();
        let text = emit(&n);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.ff_init_values(), vec![true]);
        testutil::assert_agree(&n, &back, 7, 8);
    }
}
