//! Typed identifiers used throughout the netlist IR.

use std::fmt;

/// Identifier of a signal, i.e. the output net of the cell that drives it.
///
/// Every cell in a [`Netlist`](crate::Netlist) has exactly one output, so
/// cells and signals share the same identifier space: `SigId(n)` names both
/// the `n`-th cell and the net driven by it.
///
/// `SigId` is `Copy` and cheap to pass around; it is only meaningful
/// relative to the netlist that produced it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SigId(u32);

impl SigId {
    /// Sentinel for a not-yet-connected pin (used internally by the builder
    /// for flip-flop data inputs before [`connect_dff`] is called).
    ///
    /// [`connect_dff`]: crate::NetlistBuilder::connect_dff
    pub(crate) const INVALID: SigId = SigId(u32::MAX);

    /// Creates an id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (netlists are limited to
    /// 2³²−1 cells).
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index < u32::MAX as usize, "netlist cell index overflow");
        SigId(index as u32)
    }

    /// Returns the raw index of this signal (usable for `Vec` indexing).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Debug for SigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::INVALID {
            write!(f, "SigId(<unconnected>)")
        } else {
            write!(f, "SigId({})", self.0)
        }
    }
}

impl fmt::Display for SigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a flip-flop within a netlist's ordered flip-flop list.
///
/// The fault model of the whole toolkit is defined over `FfIndex` ×
/// test-bench cycle, so this ordering is part of a netlist's observable
/// contract: it is the order in which [`NetlistBuilder::dff`] was called
/// and is preserved by serialization.
///
/// [`NetlistBuilder::dff`]: crate::NetlistBuilder::dff
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FfIndex(u32);

impl FfIndex {
    /// Creates a flip-flop index from a raw position.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index < u32::MAX as usize, "flip-flop index overflow");
        FfIndex(index as u32)
    }

    /// Returns the raw position of this flip-flop.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FfIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FfIndex({})", self.0)
    }
}

impl fmt::Display for FfIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ff{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigid_roundtrip() {
        let id = SigId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
        assert!(id.is_valid());
    }

    #[test]
    fn sigid_invalid_is_not_valid() {
        assert!(!SigId::INVALID.is_valid());
        assert_eq!(format!("{:?}", SigId::INVALID), "SigId(<unconnected>)");
    }

    #[test]
    fn ffindex_roundtrip() {
        let ff = FfIndex::new(7);
        assert_eq!(ff.index(), 7);
        assert_eq!(ff.to_string(), "ff7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(SigId::new(1) < SigId::new(2));
        assert!(FfIndex::new(0) < FfIndex::new(1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn sigid_overflow_panics() {
        let _ = SigId::new(u32::MAX as usize);
    }
}
