//! Topological levelization of the combinational network.

use crate::{CellKind, Netlist, NetlistError, SigId};

/// Result of levelizing a netlist: a topological order of the combinational
/// cells plus per-cell logic levels.
///
/// Sources (primary inputs, constants and flip-flop outputs) sit at level
/// 0; every gate sits one level above its deepest pin. The order is the
/// evaluation schedule used by the compiled simulator.
#[derive(Clone, Debug)]
pub struct Levelization {
    order: Vec<SigId>,
    level: Vec<u32>,
    depth: u32,
}

impl Levelization {
    /// Combinational cells in evaluation (topological) order.
    #[must_use]
    pub fn order(&self) -> &[SigId] {
        &self.order
    }

    /// Logic level of a cell (0 for sources).
    ///
    /// # Panics
    ///
    /// Panics if `sig` is out of range for the levelized netlist.
    #[must_use]
    pub fn level(&self, sig: SigId) -> u32 {
        self.level[sig.index()]
    }

    /// Maximum logic level in the netlist (the combinational depth).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

/// Levelized fanout adjacency: for every signal, the gates that consume
/// it, identified by their **position** in a [`Levelization::order`]
/// (compressed sparse rows).
///
/// Positions, not [`SigId`]s, because the consumers of a levelized
/// program are evaluation engines: a position indexes straight into the
/// compiled tape, and ascending positions are already topological — a
/// worklist that pops positions in increasing order evaluates every
/// gate after all of its cone predecessors. This is the traversal
/// structure behind the differential (dirty-frontier) fault kernel.
#[derive(Clone, Debug)]
pub struct FanoutAdjacency {
    /// CSR row starts, one per signal plus a terminator.
    start: Vec<u32>,
    /// Consumer gate positions, ascending within each row.
    targets: Vec<u32>,
}

impl FanoutAdjacency {
    /// Order positions of the gates reading `sig`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is out of range for the levelized netlist.
    #[must_use]
    pub fn consumers(&self, sig: SigId) -> &[u32] {
        let i = sig.index();
        &self.targets[self.start[i] as usize..self.start[i + 1] as usize]
    }

    /// Consumer positions of a raw signal slot (same rows as
    /// [`consumers`](Self::consumers), index form).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn consumers_of_slot(&self, slot: usize) -> &[u32] {
        &self.targets[self.start[slot] as usize..self.start[slot + 1] as usize]
    }

    /// Total number of (signal → gate) edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

impl Netlist {
    /// Builds the [`FanoutAdjacency`] of a levelization of this netlist:
    /// for each signal, the order-positions of the gates consuming it.
    ///
    /// `lv` must be a levelization of this same netlist (the compiled
    /// simulator guarantees this by construction).
    ///
    /// # Panics
    ///
    /// Panics if `lv` orders a different cell count than this netlist
    /// has gates.
    #[must_use]
    pub fn levelized_fanout(&self, lv: &Levelization) -> FanoutAdjacency {
        assert_eq!(lv.order().len(), self.num_gates(), "levelization mismatch");
        let n = self.cells.len();
        let mut counts = vec![0u32; n + 1];
        for &id in lv.order() {
            for p in self.cell(id).pins() {
                counts[p.index() + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let start = counts;
        let mut cursor = start.clone();
        let mut targets = vec![0u32; start[n] as usize];
        // Walking positions in ascending order fills each row ascending,
        // which is what keeps frontier traversals topological.
        for (pos, &id) in lv.order().iter().enumerate() {
            for p in self.cell(id).pins() {
                let c = &mut cursor[p.index()];
                targets[*c as usize] = pos as u32;
                *c += 1;
            }
        }
        FanoutAdjacency { start, targets }
    }

    /// Computes a topological order of the combinational cells.
    ///
    /// Flip-flop outputs, constants and inputs are treated as sources, so
    /// sequential loops through flip-flops are fine; loops through gates
    /// are reported as errors.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] listing the cells that
    /// could not be scheduled (all of them lie on, or are fed by, a cycle).
    pub fn levelize(&self) -> Result<Levelization, NetlistError> {
        let n = self.cells.len();
        let mut remaining_pins = vec![0u32; n];
        let mut level = vec![0u32; n];
        let mut ready: Vec<SigId> = Vec::new();

        // A cell "waits" on a pin only if the pin is driven by a
        // combinational cell (gates). Dffs/inputs/constants are sources.
        for (id, cell) in self.iter_cells() {
            if !matches!(cell.kind(), CellKind::Gate(_)) {
                continue;
            }
            let waits = cell
                .pins()
                .iter()
                .filter(|p| matches!(self.cell(**p).kind(), CellKind::Gate(_)))
                .count() as u32;
            remaining_pins[id.index()] = waits;
            if waits == 0 {
                ready.push(id);
            }
        }

        let fanout = self.fanout_map();
        let total_gates = self.num_gates();
        let mut order = Vec::with_capacity(total_gates);
        let mut depth = 0u32;

        while let Some(id) = ready.pop() {
            let lvl = self
                .cell(id)
                .pins()
                .iter()
                .map(|p| level[p.index()])
                .max()
                .unwrap_or(0)
                + 1;
            level[id.index()] = lvl;
            depth = depth.max(lvl);
            order.push(id);
            for &succ in &fanout[id.index()] {
                if matches!(self.cell(succ).kind(), CellKind::Gate(_)) {
                    let r = &mut remaining_pins[succ.index()];
                    *r -= 1;
                    if *r == 0 {
                        ready.push(succ);
                    }
                }
            }
        }

        if order.len() != total_gates {
            let mut cells: Vec<SigId> = self
                .iter_cells()
                .filter(|(id, c)| {
                    matches!(c.kind(), CellKind::Gate(_)) && remaining_pins[id.index()] > 0
                })
                .map(|(id, _)| id)
                .collect();
            cells.sort();
            return Err(NetlistError::CombinationalLoop { cells });
        }

        Ok(Levelization { order, level, depth })
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, NetlistBuilder};
    use super::*;

    #[test]
    fn linear_chain_levels() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.not(a);
        let g2 = b.not(g1);
        let g3 = b.not(g2);
        b.output("y", g3);
        let n = b.finish().unwrap();
        let lv = n.levelize().unwrap();
        assert_eq!(lv.depth(), 3);
        assert_eq!(lv.level(g1), 1);
        assert_eq!(lv.level(g2), 2);
        assert_eq!(lv.level(g3), 3);
        assert_eq!(lv.order().len(), 3);
        // Topological: g1 before g2 before g3.
        let pos = |s| lv.order().iter().position(|&x| x == s).unwrap();
        assert!(pos(g1) < pos(g2));
        assert!(pos(g2) < pos(g3));
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut b = NetlistBuilder::new("loop_ok");
        let q = b.dff(false);
        let inv = b.not(q);
        b.connect_dff(q, inv).unwrap();
        b.output("q", q);
        let n = b.finish().unwrap();
        let lv = n.levelize().unwrap();
        assert_eq!(lv.depth(), 1);
        assert_eq!(lv.level(q), 0);
    }

    #[test]
    fn diamond_depth() {
        let mut b = NetlistBuilder::new("diamond");
        let a = b.input("a");
        let l = b.not(a);
        let r = b.buf(a);
        let j = b.and2(l, r);
        b.output("y", j);
        let n = b.finish().unwrap();
        let lv = n.levelize().unwrap();
        assert_eq!(lv.depth(), 2);
        assert_eq!(lv.level(j), 2);
    }

    #[test]
    fn combinational_loop_detected_via_text() {
        // The builder API cannot express gate loops, but the text parser
        // can; ensure levelize rejects them.
        let src = "\
model bad
input a
gate and g1 a g2
gate and g2 a g1
output y g1
end
";
        let err = crate::text::parse(src).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { cells } if cells.len() == 2));
    }

    #[test]
    fn constants_are_sources() {
        let mut b = NetlistBuilder::new("c");
        let c = b.constant(true);
        let g = b.not(c);
        b.output("y", g);
        let n = b.finish().unwrap();
        let lv = n.levelize().unwrap();
        assert_eq!(lv.level(g), 1);
    }

    #[test]
    fn fanout_adjacency_rows_are_topological() {
        let mut b = NetlistBuilder::new("fan");
        let a = b.input("a");
        let q = b.dff(false);
        let inv = b.not(a);
        let g1 = b.and2(inv, q);
        let g2 = b.or2(a, g1);
        b.connect_dff(q, g2).unwrap();
        b.output("y", g2);
        let n = b.finish().unwrap();
        let lv = n.levelize().unwrap();
        let fan = n.levelized_fanout(&lv);
        assert_eq!(fan.num_edges(), 5, "one edge per gate pin");
        let pos = |s: SigId| lv.order().iter().position(|&x| x == s).unwrap() as u32;
        // `a` feeds the inverter and the or gate.
        let mut expect = vec![pos(inv), pos(g2)];
        expect.sort_unstable();
        assert_eq!(fan.consumers(a), &expect[..]);
        // The flip-flop output feeds only the and gate.
        assert_eq!(fan.consumers(q), &[pos(g1)]);
        // Rows are ascending (topological worklist invariant).
        for (id, _) in n.iter_cells() {
            let row = fan.consumers(id);
            assert!(row.windows(2).all(|w| w[0] <= w[1]), "row sorted");
        }
        // Every consumer position is after the producer's own position.
        for &id in lv.order() {
            for &c in fan.consumers(id) {
                assert!(c > pos(id), "consumer scheduled after producer");
            }
        }
    }

    #[test]
    fn wide_netlist_orders_all_gates() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.input("a");
        let mut sigs = vec![a];
        for i in 0..50 {
            let prev = sigs[i / 2];
            let s = b.gate(GateKind::Xor, &[prev, sigs[sigs.len() - 1]]);
            sigs.push(s);
        }
        b.output("y", *sigs.last().unwrap());
        let n = b.finish().unwrap();
        let lv = n.levelize().unwrap();
        assert_eq!(lv.order().len(), n.num_gates());
    }
}
