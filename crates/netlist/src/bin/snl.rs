//! `snl` — inspect seugrade netlist (SNL) files.
//!
//! ```text
//! snl stats  circuit.snl     # cell inventory, depth, ports
//! snl check  circuit.snl     # validate (parse + structural checks)
//! snl dot    circuit.snl     # Graphviz to stdout
//! snl prune  circuit.snl     # dead-logic report + pruned SNL to stdout
//! ```

use std::process::ExitCode;

use seugrade_netlist::{text, Netlist};

fn load(path: &str) -> Result<Netlist, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    text::parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: snl <stats|check|dot|prune> <file.snl>");
            return ExitCode::from(2);
        }
    };
    let netlist = match load(path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "stats" => {
            println!("{netlist}");
            print!("{}", netlist.stats());
            println!("inputs:");
            for name in netlist.input_names() {
                println!("  {name}");
            }
            println!("outputs:");
            for (name, sig) in netlist.outputs() {
                println!("  {name} <- {}", netlist.signal_label(*sig));
            }
        }
        "check" => {
            // Parsing already validated structure; report and exit 0.
            println!(
                "{}: ok ({} cells, {} FFs, depth {})",
                netlist.name(),
                netlist.num_cells(),
                netlist.num_ffs(),
                netlist.stats().comb_depth()
            );
        }
        "dot" => print!("{}", netlist.to_dot()),
        "prune" => {
            let pruned = netlist.pruned();
            eprintln!(
                "{}: removed {} dead cells ({} -> {})",
                netlist.name(),
                pruned.removed_cells(),
                netlist.num_cells(),
                pruned.netlist().num_cells()
            );
            print!("{}", text::emit(pruned.netlist()));
        }
        other => {
            eprintln!("unknown command `{other}`; expected stats|check|dot|prune");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
