//! Netlist ingestion: shared lowering, format detection, buffer
//! sweeping and import statistics.
//!
//! This module is the common back half of every textual frontend in the
//! crate — the native [SNL format](crate::text), the ISCAS'85/'89
//! [`.bench` format](crate::bench), the [structural BLIF
//! subset](crate::blif), the [structural Verilog subset](crate::vlog)
//! and the [ITC'99-style VHDL subset](crate::vhdl). Each frontend
//! tokenizes its own surface syntax
//! into the shared statement IR (`Stmt`, crate-internal) and hands it
//! to the one lowering path, which:
//!
//! 1. rejects duplicate net definitions and duplicate output ports with
//!    source line numbers;
//! 2. declares inputs, constants and flip-flops so forward references
//!    resolve;
//! 3. materializes gates to a fixpoint (any statement order is accepted)
//!    and reports never-defined nets as [`NetlistError::UnknownNet`];
//! 4. closes sequential loops and validates the result through
//!    [`NetlistBuilder::finish`] (dangling signals, levelization /
//!    combinational-cycle check, flip-flop connectivity).
//!
//! The user-facing entry points are [`import_str`] and [`import_path`],
//! which add [format detection](SourceFormat), an optional buffer sweep
//! and an [`ImportStats`] report on top of the raw parsers. The on-disk
//! grammars themselves are specified in `docs/FORMATS.md` at the
//! repository root.
//!
//! # Example
//!
//! ```
//! use seugrade_netlist::import::{import_str, SourceFormat};
//!
//! let src = "\
//! INPUT(a)
//! OUTPUT(y)
//! q = DFF(nx)
//! nx = XOR(a, q)
//! y = BUF(q)
//! ";
//! let imported = import_str(src, SourceFormat::Bench)?;
//! assert_eq!(imported.netlist.num_ffs(), 1);
//! assert_eq!(imported.stats.swept_buffers, 1); // the BUF was swept
//! # Ok::<(), seugrade_netlist::NetlistError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::Path;

use crate::{Cell, CellKind, GateKind, Netlist, NetlistBuilder, NetlistError, SigId};

/// One frontend-independent netlist statement, tagged with its 1-based
/// source line for error reporting.
///
/// Net references are plain tokens; resolution (including forward
/// references) happens in [`lower`].
#[derive(Clone, Debug)]
pub(crate) enum Stmt<'a> {
    /// A primary input declaration.
    Input {
        /// Port (and net) name.
        name: &'a str,
    },
    /// A constant driver.
    Const {
        /// Net name.
        net: &'a str,
        /// Driven value.
        value: bool,
    },
    /// A combinational gate.
    Gate {
        /// Gate function.
        kind: GateKind,
        /// Output net name.
        net: &'a str,
        /// Input net names, in pin order.
        pins: Vec<&'a str>,
    },
    /// A D flip-flop.
    Dff {
        /// Output net name.
        net: &'a str,
        /// Cycle-0 value.
        init: bool,
        /// Data-input net name (forward references allowed).
        d: &'a str,
    },
    /// A primary output declaration.
    Output {
        /// Port name.
        name: &'a str,
        /// Driven-by net name.
        net: &'a str,
    },
}

/// Lowers a frontend's statement list into a validated [`Netlist`].
///
/// This is the shared import layer: every textual frontend funnels
/// through here, so duplicate/undefined-net diagnostics, gate fixpoint
/// ordering and final validation behave identically across formats.
pub(crate) fn lower(
    model_name: String,
    stmts: &[(usize, Stmt<'_>)],
) -> Result<Netlist, NetlistError> {
    // Duplicate net definitions and duplicate output ports, with lines.
    {
        let mut defined: HashMap<&str, usize> = HashMap::new();
        let mut out_ports: HashMap<&str, usize> = HashMap::new();
        for (line, stmt) in stmts {
            match stmt {
                Stmt::Input { name } => {
                    if defined.insert(name, *line).is_some() {
                        return Err(NetlistError::Parse {
                            line: *line,
                            msg: format!("net `{name}` defined twice"),
                        });
                    }
                }
                Stmt::Const { net, .. } | Stmt::Dff { net, .. } | Stmt::Gate { net, .. } => {
                    if defined.insert(net, *line).is_some() {
                        return Err(NetlistError::Parse {
                            line: *line,
                            msg: format!("net `{net}` defined twice"),
                        });
                    }
                }
                Stmt::Output { name, .. } => {
                    if out_ports.insert(name, *line).is_some() {
                        return Err(NetlistError::Parse {
                            line: *line,
                            msg: format!("output `{name}` declared twice"),
                        });
                    }
                }
            }
        }
    }

    let mut b = NetlistBuilder::new(model_name);
    let mut nets: HashMap<&str, SigId> = HashMap::new();

    // Inputs, constants and flip-flops first: they can be referenced
    // freely (flip-flop outputs are the sequential feedback points).
    for (_, stmt) in stmts {
        match stmt {
            Stmt::Input { name } => {
                let id = b.input(*name);
                nets.insert(name, id);
            }
            Stmt::Const { net, value } => {
                // Constants are deduplicated by the builder: several
                // const nets of the same value alias one cell.
                let id = b.constant(*value);
                nets.insert(net, id);
            }
            Stmt::Dff { net, init, .. } => {
                let id = b.dff(*init);
                nets.insert(net, id);
            }
            _ => {}
        }
    }

    // Gates to a fixpoint: statement order is usually already
    // topological, so this loop normally completes in one sweep. Gates
    // whose pins are not all resolved yet are retried next round.
    let mut pending: Vec<(usize, &Stmt<'_>)> = stmts
        .iter()
        .filter(|(_, s)| matches!(s, Stmt::Gate { .. }))
        .map(|(l, s)| (*l, s))
        .collect();
    loop {
        let before = pending.len();
        pending.retain(|(_, stmt)| {
            let Stmt::Gate { kind, net, pins } = stmt else { unreachable!() };
            let resolved: Option<Vec<SigId>> =
                pins.iter().map(|p| nets.get(p).copied()).collect();
            match resolved {
                Some(pin_ids) => {
                    let id = b.gate(*kind, &pin_ids);
                    nets.insert(net, id);
                    false
                }
                None => true,
            }
        });
        if pending.is_empty() || pending.len() == before {
            break;
        }
    }
    if !pending.is_empty() {
        // Either a reference to a never-defined net, or a combinational
        // loop among gates; distinguish by checking whether every pin
        // name is defined *somewhere* in the file.
        let all_defined: std::collections::HashSet<&str> = stmts
            .iter()
            .filter_map(|(_, s)| match s {
                Stmt::Input { name } => Some(*name),
                Stmt::Const { net, .. } | Stmt::Dff { net, .. } | Stmt::Gate { net, .. } => {
                    Some(*net)
                }
                Stmt::Output { .. } => None,
            })
            .collect();
        for (line, stmt) in &pending {
            let Stmt::Gate { pins, .. } = stmt else { unreachable!() };
            for p in pins {
                if !all_defined.contains(p) {
                    return Err(NetlistError::UnknownNet {
                        line: *line,
                        name: (*p).to_owned(),
                    });
                }
            }
        }
        // All names exist but the gates never became ready: a cycle.
        // The cells were never created, so report placeholder ids in
        // file order.
        let cells: Vec<SigId> = (0..pending.len()).map(SigId::new).collect();
        return Err(NetlistError::CombinationalLoop { cells });
    }

    // Close sequential loops and declare outputs.
    for (line, stmt) in stmts {
        match stmt {
            Stmt::Dff { net, d, .. } => {
                let ff = nets[net];
                let d_id = *nets.get(d).ok_or_else(|| NetlistError::UnknownNet {
                    line: *line,
                    name: (*d).to_owned(),
                })?;
                b.connect_dff(ff, d_id)?;
            }
            Stmt::Output { name, net } => {
                let sig = *nets.get(net).ok_or_else(|| NetlistError::UnknownNet {
                    line: *line,
                    name: (*net).to_owned(),
                })?;
                b.output(*name, sig);
            }
            _ => {}
        }
    }

    b.finish()
}

/// The on-disk netlist formats the import layer understands.
///
/// Grammars for all five are specified in `docs/FORMATS.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SourceFormat {
    /// The crate's native line-based format ([`crate::text`]).
    Snl,
    /// ISCAS'85/'89 `.bench` ([`crate::bench`]).
    Bench,
    /// Structural BLIF subset ([`crate::blif`]).
    Blif,
    /// Structural Verilog subset ([`crate::vlog`]).
    Verilog,
    /// ITC'99-style VHDL subset ([`crate::vhdl`], import only).
    Vhdl,
}

impl SourceFormat {
    /// Guesses the format from a file extension (`snl`, `bench`, `blif`,
    /// `v`/`vlog`, `vhd`/`vhdl`; case-insensitive). Returns `None` for
    /// anything else.
    #[must_use]
    pub fn from_extension(path: &Path) -> Option<Self> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "snl" => Some(SourceFormat::Snl),
            "bench" => Some(SourceFormat::Bench),
            "blif" => Some(SourceFormat::Blif),
            "v" | "vlog" => Some(SourceFormat::Verilog),
            "vhd" | "vhdl" => Some(SourceFormat::Vhdl),
            _ => None,
        }
    }

    /// Guesses the format from file contents.
    ///
    /// The first non-blank, non-`#`-comment line decides: a `//` or
    /// `/*` comment or a leading `module` keyword means Verilog; a `--`
    /// comment or a leading `entity`/`library`/`use`/`architecture`
    /// keyword (case-insensitive) means VHDL; a `.` keyword means BLIF;
    /// `INPUT(`/`OUTPUT(`/`=` assignments mean `.bench`; everything
    /// else is assumed to be SNL.
    #[must_use]
    pub fn sniff(src: &str) -> Self {
        for raw in src.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with("//") || line.starts_with("/*") {
                return SourceFormat::Verilog;
            }
            if line.starts_with("--") {
                return SourceFormat::Vhdl;
            }
            if line.starts_with('.') {
                return SourceFormat::Blif;
            }
            let first = line.split_whitespace().next().unwrap_or("");
            if first == "module" {
                return SourceFormat::Verilog;
            }
            if ["entity", "library", "use", "architecture"]
                .iter()
                .any(|kw| first.eq_ignore_ascii_case(kw))
            {
                return SourceFormat::Vhdl;
            }
            if line.contains('=')
                || line.to_ascii_uppercase().starts_with("INPUT(")
                || line.to_ascii_uppercase().starts_with("OUTPUT(")
            {
                return SourceFormat::Bench;
            }
            return SourceFormat::Snl;
        }
        SourceFormat::Snl
    }

    /// Lower-case label (`snl`, `bench`, `blif`, `verilog`, `vhdl`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SourceFormat::Snl => "snl",
            SourceFormat::Bench => "bench",
            SourceFormat::Blif => "blif",
            SourceFormat::Verilog => "verilog",
            SourceFormat::Vhdl => "vhdl",
        }
    }

    /// Parses a label produced by [`label`](Self::label); the file
    /// extensions (`v`, `vlog`, `vhd`) are accepted as aliases.
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "snl" => Some(SourceFormat::Snl),
            "bench" => Some(SourceFormat::Bench),
            "blif" => Some(SourceFormat::Blif),
            "verilog" | "v" | "vlog" => Some(SourceFormat::Verilog),
            "vhdl" | "vhd" => Some(SourceFormat::Vhdl),
            _ => None,
        }
    }
}

impl fmt::Display for SourceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Knobs for [`import_str_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImportOptions {
    /// Remove identity buffers by rewiring their consumers (default
    /// `true`). Mapped benchmark netlists are full of `BUF`s that would
    /// otherwise waste simulator cells.
    pub sweep_buffers: bool,
}

impl Default for ImportOptions {
    fn default() -> Self {
        ImportOptions { sweep_buffers: true }
    }
}

/// What an import did, for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportStats {
    /// The frontend that parsed the source.
    pub format: SourceFormat,
    /// Cells produced by the parser, before sweeping.
    pub parsed_cells: usize,
    /// Identity buffers removed by the sweep (0 when disabled).
    pub swept_buffers: usize,
    /// Primary inputs of the imported netlist.
    pub inputs: usize,
    /// Primary outputs of the imported netlist.
    pub outputs: usize,
    /// Flip-flops of the imported netlist.
    pub ffs: usize,
    /// Combinational gates after sweeping.
    pub gates: usize,
}

impl fmt::Display for ImportStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} import: {} in, {} out, {} FF, {} gates ({} parsed cells, {} buffers swept)",
            self.format, self.inputs, self.outputs, self.ffs, self.gates,
            self.parsed_cells, self.swept_buffers
        )
    }
}

/// A successfully imported netlist plus its [`ImportStats`].
#[derive(Clone, Debug)]
pub struct Imported {
    /// The validated (and, by default, buffer-swept) netlist.
    pub netlist: Netlist,
    /// What the import did.
    pub stats: ImportStats,
}

/// Imports netlist text in the given format with default options
/// (buffer sweeping on).
///
/// # Errors
///
/// Propagates the frontend's parse errors and the shared validation
/// errors; see the [error contract](crate::NetlistError).
pub fn import_str(src: &str, format: SourceFormat) -> Result<Imported, NetlistError> {
    import_str_with(src, format, ImportOptions::default())
}

/// Imports netlist text with explicit [`ImportOptions`].
///
/// # Errors
///
/// Propagates the frontend's parse errors and the shared validation
/// errors; see the [error contract](crate::NetlistError).
pub fn import_str_with(
    src: &str,
    format: SourceFormat,
    options: ImportOptions,
) -> Result<Imported, NetlistError> {
    let parsed = match format {
        SourceFormat::Snl => crate::text::parse(src)?,
        SourceFormat::Bench => crate::bench::parse(src)?,
        SourceFormat::Blif => crate::blif::parse(src)?,
        SourceFormat::Verilog => crate::vlog::parse(src)?,
        SourceFormat::Vhdl => crate::vhdl::parse(src)?,
    };
    let parsed_cells = parsed.num_cells();
    let (netlist, swept_buffers) = if options.sweep_buffers {
        sweep_buffers(&parsed)
    } else {
        (parsed, 0)
    };
    let stats = ImportStats {
        format,
        parsed_cells,
        swept_buffers,
        inputs: netlist.num_inputs(),
        outputs: netlist.num_outputs(),
        ffs: netlist.num_ffs(),
        gates: netlist.num_gates(),
    };
    Ok(Imported { netlist, stats })
}

/// Error type of [`import_path`]: either the file could not be read, or
/// its contents failed to import.
#[derive(Clone, Debug)]
pub enum ImportError {
    /// Reading the file failed.
    Io {
        /// The path that failed.
        path: String,
        /// The I/O error message.
        msg: String,
    },
    /// The contents failed to parse or validate.
    Netlist {
        /// The path being imported.
        path: String,
        /// The underlying error (carries a line number where available).
        source: NetlistError,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Io { path, msg } => write!(f, "cannot read {path}: {msg}"),
            ImportError::Netlist { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl Error for ImportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImportError::Io { .. } => None,
            ImportError::Netlist { source, .. } => Some(source),
        }
    }
}

/// Reads and imports a netlist file, detecting the format from the
/// extension (falling back to [`SourceFormat::sniff`] on the contents).
///
/// # Errors
///
/// Returns [`ImportError::Io`] when the file cannot be read and
/// [`ImportError::Netlist`] when its contents fail to import.
pub fn import_path(path: impl AsRef<Path>) -> Result<Imported, ImportError> {
    import_path_with(path, None, ImportOptions::default())
}

/// [`import_path`] with an explicit format override and options.
///
/// # Errors
///
/// Returns [`ImportError::Io`] when the file cannot be read and
/// [`ImportError::Netlist`] when its contents fail to import.
pub fn import_path_with(
    path: impl AsRef<Path>,
    format: Option<SourceFormat>,
    options: ImportOptions,
) -> Result<Imported, ImportError> {
    let path = path.as_ref();
    let display = path.display().to_string();
    let src = std::fs::read_to_string(path).map_err(|e| ImportError::Io {
        path: display.clone(),
        msg: e.to_string(),
    })?;
    let format = format
        .or_else(|| SourceFormat::from_extension(path))
        .unwrap_or_else(|| SourceFormat::sniff(&src));
    let mut imported = import_str_with(&src, format, options)
        .map_err(|source| ImportError::Netlist { path: display, source })?;
    // `.bench` has no name directive and `.model`/`model` lines are
    // optional elsewhere; when the source left the default in place,
    // the file stem is the better label.
    let is_default = matches!(imported.netlist.name(), "bench" | "blif" | "unnamed");
    if is_default {
        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
            imported.netlist.name = stem.to_owned();
        }
    }
    Ok(imported)
}

/// Removes identity buffers by rewiring every consumer (gate pins, DFF
/// data inputs and primary outputs) to the buffer's driver, then
/// compacting cell ids. Returns the swept netlist and the number of
/// buffers removed.
///
/// The circuit function, port interface and flip-flop order are
/// preserved; only `Buf` cells (including chains of them) disappear.
/// Debug names attached to swept buffers are dropped.
#[must_use]
pub fn sweep_buffers(netlist: &Netlist) -> (Netlist, usize) {
    let n = netlist.num_cells();

    // Resolve each signal through any chain of buffers to its root
    // driver. Cells are in topological-creation order only for DAG
    // edges, not necessarily for ids, so resolve iteratively per cell.
    let mut root: Vec<SigId> = (0..n).map(SigId::new).collect();
    for i in 0..n {
        let mut cur = SigId::new(i);
        // Follow the chain; buffer chains are acyclic because the
        // combinational part of a validated netlist is acyclic.
        while let CellKind::Gate(GateKind::Buf) = netlist.cell(cur).kind() {
            cur = netlist.cell(cur).pins()[0];
        }
        root[i] = cur;
    }

    let is_buf =
        |id: SigId| matches!(netlist.cell(id).kind(), CellKind::Gate(GateKind::Buf));
    let removed = (0..n).map(SigId::new).filter(|&id| is_buf(id)).count();
    if removed == 0 {
        return (netlist.clone(), 0);
    }

    // Compact: survivors keep their relative order.
    let mut new_id: HashMap<SigId, SigId> = HashMap::new();
    let mut cells: Vec<Cell> = Vec::new();
    for (id, cell) in netlist.iter_cells() {
        if is_buf(id) {
            continue;
        }
        let nid = SigId::new(cells.len());
        new_id.insert(id, nid);
        cells.push(cell.clone());
    }
    let map = |sig: SigId| -> SigId { new_id[&root[sig.index()]] };
    for cell in &mut cells {
        for pin in cell.pins_mut() {
            *pin = new_id[&root[pin.index()]];
        }
    }

    let inputs: Vec<SigId> = netlist.inputs.iter().map(|&i| map(i)).collect();
    let outputs: Vec<(String, SigId)> = netlist
        .outputs
        .iter()
        .map(|(name, s)| (name.clone(), map(*s)))
        .collect();
    let ffs: Vec<SigId> = netlist.ffs.iter().map(|&f| map(f)).collect();
    let cell_names = netlist
        .cell_names
        .iter()
        .filter_map(|(old, name)| new_id.get(old).map(|&nid| (nid, name.clone())))
        .collect();

    let swept = Netlist {
        name: netlist.name.clone(),
        cells,
        inputs,
        input_names: netlist.input_names.clone(),
        outputs,
        ffs,
        cell_names,
    };
    debug_assert!(swept.levelize().is_ok(), "sweep broke the netlist");
    (swept, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_removes_buffer_chains() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let b1 = b.buf(a);
        let b2 = b.buf(b1);
        let g = b.not(b2);
        b.output("y", g);
        b.output("z", b2);
        let n = b.finish().unwrap();
        let (swept, removed) = sweep_buffers(&n);
        assert_eq!(removed, 2);
        assert_eq!(swept.num_gates(), 1);
        // The output that pointed at a buffer now points at the input.
        assert_eq!(swept.outputs()[1].1, swept.inputs()[0]);
    }

    #[test]
    fn sweep_rewires_dff_data_pins() {
        let mut b = NetlistBuilder::new("dffbuf");
        let q = b.dff(true);
        let inv = b.not(q);
        let buffered = b.buf(inv);
        b.connect_dff(q, buffered).unwrap();
        b.output("q", q);
        let n = b.finish().unwrap();
        let (swept, removed) = sweep_buffers(&n);
        assert_eq!(removed, 1);
        assert_eq!(swept.num_ffs(), 1);
        assert_eq!(swept.ff_init_values(), vec![true]);
        // The DFF's data pin now points directly at the inverter.
        let ff = swept.ff_signal(crate::FfIndex::new(0));
        let d = swept.cell(ff).pins()[0];
        assert!(matches!(swept.cell(d).kind(), CellKind::Gate(GateKind::Not)));
    }

    #[test]
    fn sweep_is_identity_without_buffers() {
        let mut b = NetlistBuilder::new("plain");
        let a = b.input("a");
        let g = b.not(a);
        b.output("y", g);
        let n = b.finish().unwrap();
        let (swept, removed) = sweep_buffers(&n);
        assert_eq!(removed, 0);
        assert_eq!(swept, n);
    }

    #[test]
    fn format_detection() {
        assert_eq!(
            SourceFormat::from_extension(Path::new("a/b/s27.bench")),
            Some(SourceFormat::Bench)
        );
        assert_eq!(
            SourceFormat::from_extension(Path::new("x.BLIF")),
            Some(SourceFormat::Blif)
        );
        assert_eq!(
            SourceFormat::from_extension(Path::new("x.snl")),
            Some(SourceFormat::Snl)
        );
        assert_eq!(
            SourceFormat::from_extension(Path::new("x.v")),
            Some(SourceFormat::Verilog)
        );
        assert_eq!(
            SourceFormat::from_extension(Path::new("x.VHD")),
            Some(SourceFormat::Vhdl)
        );
        assert_eq!(SourceFormat::from_extension(Path::new("x.edif")), None);
        assert_eq!(SourceFormat::sniff(".model m\n.end\n"), SourceFormat::Blif);
        assert_eq!(SourceFormat::sniff("# c\nINPUT(a)\n"), SourceFormat::Bench);
        assert_eq!(SourceFormat::sniff("g = AND(a, b)\n"), SourceFormat::Bench);
        assert_eq!(SourceFormat::sniff("model m\nend\n"), SourceFormat::Snl);
        assert_eq!(SourceFormat::sniff(""), SourceFormat::Snl);
        assert_eq!(SourceFormat::sniff("// hdl\nmodule m;\n"), SourceFormat::Verilog);
        assert_eq!(SourceFormat::sniff("module m (a);\n"), SourceFormat::Verilog);
        assert_eq!(SourceFormat::sniff("-- hdl\nentity e is\n"), SourceFormat::Vhdl);
        assert_eq!(SourceFormat::sniff("LIBRARY ieee;\n"), SourceFormat::Vhdl);
        assert_eq!(SourceFormat::sniff("entity e is\n"), SourceFormat::Vhdl);
        assert_eq!(SourceFormat::from_label("blif"), Some(SourceFormat::Blif));
        assert_eq!(SourceFormat::from_label("vhdl"), Some(SourceFormat::Vhdl));
        assert_eq!(SourceFormat::from_label("v"), Some(SourceFormat::Verilog));
        assert_eq!(SourceFormat::from_label("edif"), None);
    }

    #[test]
    fn import_str_reports_stats() {
        let src = "\
model t
input a
gate buf b1 a
gate not g b1
output y g
end
";
        let imp = import_str(src, SourceFormat::Snl).unwrap();
        assert_eq!(imp.stats.swept_buffers, 1);
        assert_eq!(imp.stats.parsed_cells, 3);
        assert_eq!(imp.stats.gates, 1);
        assert_eq!(imp.stats.inputs, 1);
        let text = imp.stats.to_string();
        assert!(text.contains("snl import"), "{text}");
        assert!(text.contains("1 buffers swept"), "{text}");
    }

    #[test]
    fn sweep_can_be_disabled() {
        let src = "model t\ninput a\ngate buf b1 a\noutput y b1\nend\n";
        let opts = ImportOptions { sweep_buffers: false };
        let imp = import_str_with(src, SourceFormat::Snl, opts).unwrap();
        assert_eq!(imp.stats.swept_buffers, 0);
        assert_eq!(imp.netlist.num_gates(), 1);
    }

    #[test]
    fn import_path_reports_io_errors() {
        let err = import_path("/definitely/not/a/real/file.bench").unwrap_err();
        assert!(matches!(err, ImportError::Io { .. }));
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn import_errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ImportError>();
    }
}
