//! Netlist size and shape metrics.

use std::fmt;

use crate::{CellKind, GateKind, Netlist};

/// Aggregate statistics of a [`Netlist`].
///
/// Produced by [`Netlist::stats`]; used throughout the benchmark harness
/// to report circuit inventories (the paper's Table 1 relies on gate and
/// flip-flop counts before and after instrumentation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetlistStats {
    name: String,
    inputs: usize,
    outputs: usize,
    ffs: usize,
    constants: usize,
    gate_counts: [usize; GateKind::ALL.len()],
    comb_depth: u32,
    literals: usize,
}

impl NetlistStats {
    /// Name of the measured netlist.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.ffs
    }

    /// Number of constant cells.
    #[must_use]
    pub fn num_constants(&self) -> usize {
        self.constants
    }

    /// Number of gates of a specific kind.
    #[must_use]
    pub fn gate_count(&self, kind: GateKind) -> usize {
        let idx = GateKind::ALL.iter().position(|&k| k == kind).unwrap();
        self.gate_counts[idx]
    }

    /// Total number of combinational gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gate_counts.iter().sum()
    }

    /// Longest combinational path, in gate levels.
    #[must_use]
    pub fn comb_depth(&self) -> u32 {
        self.comb_depth
    }

    /// Total number of gate input pins ("literals"), a classic synthesis
    /// size proxy.
    #[must_use]
    pub fn num_literals(&self) -> usize {
        self.literals
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} in, {} out, {} FF, {} gates ({} literals), depth {}",
            self.name,
            self.inputs,
            self.outputs,
            self.ffs,
            self.num_gates(),
            self.literals,
            self.comb_depth
        )?;
        for (kind, &count) in GateKind::ALL.iter().zip(&self.gate_counts) {
            if count > 0 {
                writeln!(f, "  {:<5} {count}", kind.mnemonic())?;
            }
        }
        Ok(())
    }
}

impl Netlist {
    /// Computes aggregate statistics.
    ///
    /// # Panics
    ///
    /// Never panics on a netlist produced by
    /// [`NetlistBuilder::finish`](crate::NetlistBuilder::finish) (which
    /// guarantees acyclicity).
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut gate_counts = [0usize; GateKind::ALL.len()];
        let mut constants = 0;
        let mut literals = 0;
        for (_, cell) in self.iter_cells() {
            match cell.kind() {
                CellKind::Gate(kind) => {
                    let idx = GateKind::ALL.iter().position(|&k| k == kind).unwrap();
                    gate_counts[idx] += 1;
                    literals += cell.pins().len();
                }
                CellKind::Const(_) => constants += 1,
                _ => {}
            }
        }
        let depth = self
            .levelize()
            .expect("stats on validated netlist")
            .depth();
        NetlistStats {
            name: self.name.clone(),
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            ffs: self.ffs.len(),
            constants,
            gate_counts,
            comb_depth: depth,
            literals,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;

    #[test]
    fn counts_by_kind() {
        let mut b = NetlistBuilder::new("s");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.and2(a, c);
        let g2 = b.xor2(g1, a);
        let g3 = b.not(g2);
        let q = b.dff(false);
        b.connect_dff(q, g3).unwrap();
        b.output("y", q);
        let n = b.finish().unwrap();
        let s = n.stats();
        assert_eq!(s.num_inputs(), 2);
        assert_eq!(s.num_outputs(), 1);
        assert_eq!(s.num_ffs(), 1);
        assert_eq!(s.gate_count(crate::GateKind::And), 1);
        assert_eq!(s.gate_count(crate::GateKind::Xor), 1);
        assert_eq!(s.gate_count(crate::GateKind::Not), 1);
        assert_eq!(s.num_gates(), 3);
        assert_eq!(s.num_literals(), 2 + 2 + 1);
        assert_eq!(s.comb_depth(), 3);
    }

    #[test]
    fn display_contains_inventory() {
        let mut b = NetlistBuilder::new("disp");
        let a = b.input("a");
        let g = b.not(a);
        b.output("y", g);
        let n = b.finish().unwrap();
        let text = n.stats().to_string();
        assert!(text.contains("disp"));
        assert!(text.contains("not"));
    }

    #[test]
    fn empty_netlist_stats() {
        let b = NetlistBuilder::new("empty");
        let n = b.finish().unwrap();
        let s = n.stats();
        assert_eq!(s.num_gates(), 0);
        assert_eq!(s.comb_depth(), 0);
        assert_eq!(s.num_constants(), 0);
    }
}
