//! Cell and gate definitions.

use std::fmt;

use crate::SigId;

/// The combinational gate functions supported by the IR.
///
/// Gates other than [`Not`](GateKind::Not), [`Buf`](GateKind::Buf) and
/// [`Mux`](GateKind::Mux) are *n*-ary with at least two inputs; wide gates
/// are decomposed into bounded-fanin trees by the technology mapper, not by
/// the IR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Identity. Exactly one input.
    Buf,
    /// Inversion. Exactly one input.
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// N-ary exclusive-or (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
    /// 2:1 multiplexer; pins are ordered `[sel, d0, d1]` and the output is
    /// `d1` when `sel` is true, `d0` otherwise.
    Mux,
}

impl GateKind {
    /// All gate kinds, in a stable order (used by statistics tables).
    pub const ALL: [GateKind; 9] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux,
    ];

    /// Lower-case mnemonic used by the text format.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
        }
    }

    /// Parses a mnemonic produced by [`mnemonic`](Self::mnemonic).
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|k| k.mnemonic() == s)
    }

    /// Inclusive range of pin counts accepted by this gate.
    #[must_use]
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Buf | GateKind::Not => (1, 1),
            GateKind::Mux => (3, 3),
            _ => (2, usize::MAX),
        }
    }

    /// Evaluates the gate over 64 parallel boolean lanes.
    ///
    /// Every bit position of the `u64` words is an independent simulation
    /// context; this is the primitive on which both the scalar and the
    /// bit-parallel fault simulators are built.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `pins` violates [`arity`](Self::arity).
    #[must_use]
    pub fn eval_u64(self, pins: &[u64]) -> u64 {
        debug_assert!(
            pins.len() >= self.arity().0 && pins.len() <= self.arity().1,
            "gate {self:?} evaluated with {} pins",
            pins.len()
        );
        match self {
            GateKind::Buf => pins[0],
            GateKind::Not => !pins[0],
            GateKind::And => pins.iter().fold(!0u64, |acc, &p| acc & p),
            GateKind::Or => pins.iter().fold(0u64, |acc, &p| acc | p),
            GateKind::Nand => !pins.iter().fold(!0u64, |acc, &p| acc & p),
            GateKind::Nor => !pins.iter().fold(0u64, |acc, &p| acc | p),
            GateKind::Xor => pins.iter().fold(0u64, |acc, &p| acc ^ p),
            GateKind::Xnor => !pins.iter().fold(0u64, |acc, &p| acc ^ p),
            GateKind::Mux => {
                let (sel, d0, d1) = (pins[0], pins[1], pins[2]);
                (sel & d1) | (!sel & d0)
            }
        }
    }

    /// Evaluates the gate over plain booleans.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `pins` violates [`arity`](Self::arity).
    #[must_use]
    pub fn eval_bool(self, pins: &[bool]) -> bool {
        let words: Vec<u64> = pins.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_u64(&words) & 1 == 1
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// What a [`Cell`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Primary input. No pins; its name lives in
    /// [`Netlist::input_names`](crate::Netlist::input_names).
    Input,
    /// Constant driver. No pins.
    Const(bool),
    /// Combinational gate.
    Gate(GateKind),
    /// D flip-flop with the given power-on/reset value. One pin (`d`).
    ///
    /// All flip-flops share one implicit clock (the test-bench cycle); this
    /// matches the single-clock synchronous circuits used for SEU emulation
    /// in the reproduced paper.
    Dff {
        /// Value the flip-flop holds at cycle 0.
        init: bool,
    },
}

impl CellKind {
    /// True for cells whose output is a pure function of their pins within
    /// one cycle (gates and constants); false for inputs and flip-flops.
    #[must_use]
    pub fn is_combinational(self) -> bool {
        matches!(self, CellKind::Gate(_) | CellKind::Const(_))
    }

    /// True for flip-flops.
    #[must_use]
    pub fn is_ff(self) -> bool {
        matches!(self, CellKind::Dff { .. })
    }
}

/// A single-output netlist node.
///
/// Obtained from [`Netlist::cell`](crate::Netlist::cell); constructed only
/// through [`NetlistBuilder`](crate::NetlistBuilder).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    kind: CellKind,
    pins: Vec<SigId>,
}

impl Cell {
    pub(crate) fn new(kind: CellKind, pins: Vec<SigId>) -> Self {
        Cell { kind, pins }
    }

    /// The cell's kind.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input pins, in positional order (see [`GateKind::Mux`] for the mux
    /// pin convention; a flip-flop's single pin is its `d` input).
    #[must_use]
    pub fn pins(&self) -> &[SigId] {
        &self.pins
    }

    pub(crate) fn pins_mut(&mut self) -> &mut Vec<SigId> {
        &mut self.pins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(GateKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn eval_basic_gates() {
        assert!(GateKind::And.eval_bool(&[true, true]));
        assert!(!GateKind::And.eval_bool(&[true, false]));
        assert!(GateKind::Or.eval_bool(&[false, true]));
        assert!(GateKind::Nand.eval_bool(&[true, false]));
        assert!(!GateKind::Nor.eval_bool(&[false, true]));
        assert!(GateKind::Xor.eval_bool(&[true, false, false]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, false, false]));
        assert!(GateKind::Xnor.eval_bool(&[true, true]));
        assert!(GateKind::Not.eval_bool(&[false]));
        assert!(GateKind::Buf.eval_bool(&[true]));
    }

    #[test]
    fn mux_selects_d1_when_sel_high() {
        // pins = [sel, d0, d1]
        assert!(!GateKind::Mux.eval_bool(&[true, true, false]));
        assert!(GateKind::Mux.eval_bool(&[true, false, true]));
        assert!(GateKind::Mux.eval_bool(&[false, true, false]));
        assert!(!GateKind::Mux.eval_bool(&[false, false, true]));
    }

    #[test]
    fn eval_u64_is_lanewise() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval_u64(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval_u64(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Xor.eval_u64(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Nand.eval_u64(&[a, b]) & 0xF, 0b0111);
    }

    #[test]
    fn wide_gates() {
        assert!(GateKind::And.eval_bool(&[true; 8]));
        assert!(!GateKind::And.eval_bool(&[true, true, false, true]));
        assert_eq!(GateKind::Xor.eval_u64(&[1, 1, 1]) & 1, 1);
    }

    #[test]
    fn kind_predicates() {
        assert!(CellKind::Gate(GateKind::And).is_combinational());
        assert!(CellKind::Const(true).is_combinational());
        assert!(!CellKind::Input.is_combinational());
        assert!(!CellKind::Dff { init: false }.is_combinational());
        assert!(CellKind::Dff { init: true }.is_ff());
        assert!(!CellKind::Input.is_ff());
    }

    #[test]
    fn arity_bounds() {
        assert_eq!(GateKind::Not.arity(), (1, 1));
        assert_eq!(GateKind::Mux.arity(), (3, 3));
        assert_eq!(GateKind::And.arity().0, 2);
    }
}
