//! Test-only 64-lane reference simulator shared by the frontend and
//! emitter unit tests. The real engine lives in `seugrade-sim`; this
//! tiny interpreter exists so netlist-level round-trip tests can check
//! functional agreement without a dependency cycle.

use crate::{CellKind, Netlist};

/// Simulates `cycles` cycles, driving every input with fresh
/// xorshift-derived 64-lane patterns each cycle, and returns the output
/// words observed per cycle (before the clock edge).
pub(crate) fn sim64(n: &Netlist, seed: u64, cycles: usize) -> Vec<Vec<u64>> {
    let order = n.levelize().expect("valid netlist").order().to_vec();
    let mut rng = seed | 1;
    let mut next_word = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut values = vec![0u64; n.num_cells()];
    for (&ff, init) in n.ffs().iter().zip(n.ff_init_values()) {
        values[ff.index()] = if init { !0u64 } else { 0 };
    }
    let mut observed = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        for &sig in n.inputs() {
            values[sig.index()] = next_word();
        }
        for &sig in &order {
            let cell = n.cell(sig);
            match cell.kind() {
                CellKind::Const(v) => values[sig.index()] = if v { !0u64 } else { 0 },
                CellKind::Gate(kind) => {
                    let pins: Vec<u64> =
                        cell.pins().iter().map(|p| values[p.index()]).collect();
                    values[sig.index()] = kind.eval_u64(&pins);
                }
                CellKind::Input | CellKind::Dff { .. } => {}
            }
        }
        observed.push(
            n.outputs().iter().map(|(_, s)| values[s.index()]).collect::<Vec<u64>>(),
        );
        let next_state: Vec<u64> = n
            .ffs()
            .iter()
            .map(|&ff| values[n.cell(ff).pins()[0].index()])
            .collect();
        for (&ff, v) in n.ffs().iter().zip(next_state) {
            values[ff.index()] = v;
        }
    }
    observed
}

/// Asserts cycle-accurate output agreement of two netlists under the
/// same random stimulus. Both must share the input/output interface
/// (the inputs are driven positionally).
pub(crate) fn assert_agree(a: &Netlist, b: &Netlist, seed: u64, cycles: usize) {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input count differs");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output count differs");
    assert_eq!(
        sim64(a, seed, cycles),
        sim64(b, seed, cycles),
        "outputs diverge between `{}` and `{}`",
        a.name(),
        b.name()
    );
}
