//! Graphviz DOT export.

use std::fmt::Write as _;

use crate::{CellKind, Netlist};

impl Netlist {
    /// Renders the netlist as a Graphviz `digraph`.
    ///
    /// Inputs are drawn as triangles, flip-flops as boxes, gates as
    /// ellipses labelled with their mnemonic. Intended for small circuits
    /// and debugging; the output is deterministic so it can be used in
    /// golden-file tests.
    ///
    /// # Example
    ///
    /// ```
    /// # use seugrade_netlist::NetlistBuilder;
    /// # fn main() -> Result<(), seugrade_netlist::NetlistError> {
    /// let mut b = NetlistBuilder::new("dotty");
    /// let a = b.input("a");
    /// let g = b.not(a);
    /// b.output("y", g);
    /// let n = b.finish()?;
    /// let dot = n.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        writeln!(out, "digraph \"{}\" {{", self.name()).unwrap();
        writeln!(out, "  rankdir=LR;").unwrap();
        for (id, cell) in self.iter_cells() {
            let label = self.signal_label(id);
            let (shape, text) = match cell.kind() {
                CellKind::Input => ("triangle", label),
                CellKind::Const(v) => ("plaintext", format!("{}", u8::from(v))),
                CellKind::Gate(kind) => ("ellipse", format!("{}\\n{label}", kind.mnemonic())),
                CellKind::Dff { init } => ("box", format!("DFF({})\\n{label}", u8::from(init))),
            };
            writeln!(out, "  {id} [shape={shape}, label=\"{text}\"];").unwrap();
        }
        for (id, cell) in self.iter_cells() {
            for &pin in cell.pins() {
                writeln!(out, "  {pin} -> {id};").unwrap();
            }
        }
        for (name, sig) in self.outputs() {
            writeln!(out, "  out_{name} [shape=doublecircle, label=\"{name}\"];").unwrap();
            writeln!(out, "  {sig} -> out_{name};").unwrap();
        }
        writeln!(out, "}}").unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;

    #[test]
    fn dot_contains_all_cells_and_edges() {
        let mut b = NetlistBuilder::new("d");
        let a = b.input("a");
        let q = b.dff(false);
        let g = b.xor2(a, q);
        b.connect_dff(q, g).unwrap();
        b.output("y", g);
        let n = b.finish().unwrap();
        let dot = n.to_dot();
        assert!(dot.contains("digraph \"d\""));
        assert!(dot.contains("triangle")); // input
        assert!(dot.contains("DFF(0)"));
        assert!(dot.contains("xor"));
        assert!(dot.contains("out_y"));
        // edge from xor gate into the dff and into the output
        assert!(dot.matches(" -> ").count() >= 4);
    }

    #[test]
    fn dot_is_deterministic() {
        let build = || {
            let mut b = NetlistBuilder::new("d");
            let a = b.input("a");
            let g = b.not(a);
            b.output("y", g);
            b.finish().unwrap()
        };
        assert_eq!(build().to_dot(), build().to_dot());
    }
}
