//! The [`Netlist`] container.

use std::collections::HashMap;
use std::fmt;

use crate::{Cell, CellKind, FfIndex, SigId};

/// A flat, validated, single-clock gate-level netlist.
///
/// Construct with [`NetlistBuilder`](crate::NetlistBuilder) (or parse the
/// [text format](crate::text)); a value of this type is guaranteed to be
/// well-formed: all pins resolve, all flip-flops are driven, and the
/// combinational part is acyclic.
///
/// The netlist fixes three orderings that the rest of the toolkit relies
/// on:
///
/// - **input order** — the order inputs were declared; test-bench vectors
///   are indexed by it;
/// - **output order** — the order outputs were declared; golden/faulty
///   output comparison is performed position-wise;
/// - **flip-flop order** ([`FfIndex`]) — the order flip-flops were created;
///   the SEU fault space is `FfIndex × cycle`.
#[derive(Clone, PartialEq, Eq)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) cells: Vec<Cell>,
    pub(crate) inputs: Vec<SigId>,
    pub(crate) input_names: Vec<String>,
    pub(crate) outputs: Vec<(String, SigId)>,
    pub(crate) ffs: Vec<SigId>,
    pub(crate) cell_names: HashMap<SigId, String>,
}

impl Netlist {
    /// The netlist's (module) name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the same netlist relabelled as `name` (useful for
    /// imported formats like `.bench` that carry no module name).
    #[must_use]
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Total number of cells, including inputs, constants and flip-flops.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics if `sig` did not come from this netlist.
    #[must_use]
    pub fn cell(&self, sig: SigId) -> &Cell {
        &self.cells[sig.index()]
    }

    /// Iterates over all `(SigId, &Cell)` pairs in id order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (SigId, &Cell)> + '_ {
        self.cells.iter().enumerate().map(|(i, c)| (SigId::new(i), c))
    }

    /// Primary input signals, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[SigId] {
        &self.inputs
    }

    /// Primary input names, parallel to [`inputs`](Self::inputs).
    #[must_use]
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// `(name, signal)` pairs of the primary outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, SigId)] {
        &self.outputs
    }

    /// Flip-flop cells, in [`FfIndex`] order.
    #[must_use]
    pub fn ffs(&self) -> &[SigId] {
        &self.ffs
    }

    /// The signal driven by the flip-flop with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[must_use]
    pub fn ff_signal(&self, ff: FfIndex) -> SigId {
        self.ffs[ff.index()]
    }

    /// The flip-flop index of `sig`, if `sig` is a flip-flop.
    #[must_use]
    pub fn ff_index(&self, sig: SigId) -> Option<FfIndex> {
        if !self.cell(sig).kind().is_ff() {
            return None;
        }
        self.ffs
            .iter()
            .position(|&f| f == sig)
            .map(FfIndex::new)
    }

    /// Initial (cycle-0) values of all flip-flops, in [`FfIndex`] order.
    #[must_use]
    pub fn ff_init_values(&self) -> Vec<bool> {
        self.ffs
            .iter()
            .map(|&f| match self.cell(f).kind() {
                CellKind::Dff { init } => init,
                _ => unreachable!("ff list contains non-dff"),
            })
            .collect()
    }

    /// The debug name attached to a cell, if any.
    #[must_use]
    pub fn cell_name(&self, sig: SigId) -> Option<&str> {
        self.cell_names.get(&sig).map(String::as_str)
    }

    /// A printable name for a signal: its debug name, its input name, or
    /// `n<id>` as a fallback.
    #[must_use]
    pub fn signal_label(&self, sig: SigId) -> String {
        if let Some(n) = self.cell_name(sig) {
            return n.to_owned();
        }
        if let Some(pos) = self.inputs.iter().position(|&i| i == sig) {
            return self.input_names[pos].clone();
        }
        sig.to_string()
    }

    /// Builds the fan-out adjacency: for every signal, the list of cells
    /// that consume it. Output positions are not included.
    #[must_use]
    pub fn fanout_map(&self) -> Vec<Vec<SigId>> {
        let mut fanout = vec![Vec::new(); self.cells.len()];
        for (id, cell) in self.iter_cells() {
            for &pin in cell.pins() {
                fanout[pin.index()].push(id);
            }
        }
        fanout
    }

    /// Number of combinational gate cells (excludes inputs, constants and
    /// flip-flops).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind(), CellKind::Gate(_)))
            .count()
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Netlist")
            .field("name", &self.name)
            .field("cells", &self.cells.len())
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .field("ffs", &self.ffs.len())
            .finish()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cells ({} gates, {} FFs), {} inputs, {} outputs",
            self.name,
            self.num_cells(),
            self.num_gates(),
            self.num_ffs(),
            self.num_inputs(),
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;
    use super::*;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("b");
        let q = b.dff(true);
        let g = b.and2(a, c);
        let n = b.xor2(g, q);
        b.connect_dff(q, n).unwrap();
        b.output("y", n);
        b.name_signal(g, "g_and");
        b.finish().unwrap()
    }

    #[test]
    fn netlist_is_send_sync() {
        // Netlists are shared read-only across campaign worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Netlist>();
    }

    #[test]
    fn accessors() {
        let n = tiny();
        assert_eq!(n.name(), "tiny");
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_ffs(), 1);
        assert_eq!(n.num_gates(), 2);
        assert_eq!(n.input_names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(n.outputs()[0].0, "y");
    }

    #[test]
    fn ff_index_mapping() {
        let n = tiny();
        let ff_sig = n.ff_signal(FfIndex::new(0));
        assert_eq!(n.ff_index(ff_sig), Some(FfIndex::new(0)));
        assert_eq!(n.ff_index(n.inputs()[0]), None);
        assert_eq!(n.ff_init_values(), vec![true]);
    }

    #[test]
    fn signal_labels() {
        let n = tiny();
        assert_eq!(n.signal_label(n.inputs()[0]), "a");
        let and_sig = n
            .iter_cells()
            .find(|(_, c)| matches!(c.kind(), CellKind::Gate(crate::GateKind::And)))
            .unwrap()
            .0;
        assert_eq!(n.signal_label(and_sig), "g_and");
    }

    #[test]
    fn fanout_map_contains_consumers() {
        let n = tiny();
        let fan = n.fanout_map();
        let a = n.inputs()[0];
        assert_eq!(fan[a.index()].len(), 1);
    }

    #[test]
    fn display_summarizes() {
        let n = tiny();
        let s = n.to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("1 FFs"));
    }
}
