//! Line-based textual netlist format ("SNL").
//!
//! The format is deliberately close to structural BLIF so that netlists can
//! be diffed, checked into test fixtures and inspected by hand:
//!
//! ```text
//! model <name>
//! input <port>                # one per line, in order
//! const <net> <0|1>
//! gate <kind> <net> <in>...   # kind: buf not and or nand nor xor xnor mux
//! dff <net> <0|1> <d-net>     # init value, then data input
//! output <port> <net>
//! end
//! ```
//!
//! Net names may be any whitespace-free token. Forward references are
//! allowed (a `dff` may name a `d-net` defined later), which is how
//! sequential feedback loops are expressed. `#` starts a comment.
//!
//! # Example
//!
//! ```
//! let src = "\
//! model t
//! input a
//! dff q 0 nx
//! gate xor nx a q
//! output y q
//! end
//! ";
//! let n = seugrade_netlist::text::parse(src)?;
//! assert_eq!(n.num_ffs(), 1);
//! let emitted = seugrade_netlist::text::emit(&n);
//! let n2 = seugrade_netlist::text::parse(&emitted)?;
//! assert_eq!(n2.num_cells(), n.num_cells());
//! # Ok::<(), seugrade_netlist::NetlistError>(())
//! ```

use std::fmt::Write as _;

use crate::ident::EmitNames;
use crate::import::{lower, Stmt};
use crate::{CellKind, GateKind, Netlist, NetlistError, SigId};

/// Serializes a netlist to the SNL text format.
///
/// The emitted text parses back ([`parse`]) to a netlist with identical
/// structure: same cell/flip-flop/port ordering, same initial values.
/// Debug names are emitted as the net tokens when present.
#[must_use]
pub fn emit(netlist: &Netlist) -> String {
    let mut out = String::new();
    // Inputs are referenced by their port name (that is the net the
    // parser declares); all other nets use stable `n<i>` ids, with
    // debug names kept as trailing comments for readability. Tokens go
    // through the shared legalization pass (crate::ident) so names with
    // whitespace or `#` cannot corrupt the emitted grammar.
    let names = EmitNames::new(netlist, crate::ident::snl_legal);
    let token = |sig: SigId| -> String { names.token(sig).to_owned() };
    writeln!(out, "model {}", crate::ident::legalize(netlist.name(), crate::ident::snl_legal))
        .unwrap();
    for &sig in netlist.inputs() {
        writeln!(out, "input {}", token(sig)).unwrap();
    }
    for (id, cell) in netlist.iter_cells() {
        let comment = netlist
            .cell_name(id)
            .map(|n| format!("  # {n}"))
            .unwrap_or_default();
        match cell.kind() {
            CellKind::Input => {}
            CellKind::Const(v) => {
                writeln!(out, "const {} {}{comment}", token(id), u8::from(v)).unwrap();
            }
            CellKind::Gate(kind) => {
                let pins: Vec<String> = cell.pins().iter().map(|&p| token(p)).collect();
                writeln!(
                    out,
                    "gate {} {} {}{comment}",
                    kind.mnemonic(),
                    token(id),
                    pins.join(" ")
                )
                .unwrap();
            }
            CellKind::Dff { init } => {
                writeln!(
                    out,
                    "dff {} {} {}{comment}",
                    token(id),
                    u8::from(init),
                    token(cell.pins()[0])
                )
                .unwrap();
            }
        }
    }
    for (name, sig) in netlist.outputs() {
        // Port names live in their own namespace; legalize without
        // renaming away legitimate overlaps with net tokens.
        let port = crate::ident::legalize(name, crate::ident::snl_legal);
        writeln!(out, "output {port} {}", token(*sig)).unwrap();
    }
    writeln!(out, "end").unwrap();
    out
}

/// Parses SNL text into a validated [`Netlist`].
///
/// Statements may reference nets defined later in the file (two-pass
/// resolution), so any topological order — including none — is accepted.
/// Lowering and validation are shared with the `.bench` and BLIF
/// frontends through [`crate::import`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::UnknownNet`] for references to nets never defined, and
/// any validation error from
/// [`NetlistBuilder::finish`](crate::NetlistBuilder::finish) (e.g.
/// combinational loops). Parse-layer errors carry 1-based line numbers;
/// see the [error contract](crate::NetlistError).
pub fn parse(src: &str) -> Result<Netlist, NetlistError> {
    let mut model_name = String::from("unnamed");
    let mut stmts: Vec<(usize, Stmt<'_>)> = Vec::new();
    let mut saw_end = false;

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if saw_end {
            return Err(NetlistError::Parse {
                line,
                msg: "content after `end`".into(),
            });
        }
        let mut toks = text.split_whitespace();
        let head = toks.next().unwrap();
        let rest: Vec<&str> = toks.collect();
        let parse_bit = |s: &str| -> Result<bool, NetlistError> {
            match s {
                "0" => Ok(false),
                "1" => Ok(true),
                other => Err(NetlistError::Parse {
                    line,
                    msg: format!("expected 0 or 1, found `{other}`"),
                }),
            }
        };
        match head {
            "model" => {
                if rest.len() != 1 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: "model takes exactly one name".into(),
                    });
                }
                model_name = rest[0].to_owned();
            }
            "input" => {
                if rest.len() != 1 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: "input takes exactly one name".into(),
                    });
                }
                stmts.push((line, Stmt::Input { name: rest[0] }));
            }
            "const" => {
                if rest.len() != 2 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: "const takes <net> <0|1>".into(),
                    });
                }
                stmts.push((line, Stmt::Const { net: rest[0], value: parse_bit(rest[1])? }));
            }
            "gate" => {
                if rest.len() < 3 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: "gate takes <kind> <net> <in>...".into(),
                    });
                }
                let kind = GateKind::from_mnemonic(rest[0]).ok_or_else(|| NetlistError::Parse {
                    line,
                    msg: format!("unknown gate kind `{}`", rest[0]),
                })?;
                stmts.push((
                    line,
                    Stmt::Gate { kind, net: rest[1], pins: rest[2..].to_vec() },
                ));
            }
            "dff" => {
                if rest.len() != 3 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: "dff takes <net> <init> <d-net>".into(),
                    });
                }
                stmts.push((
                    line,
                    Stmt::Dff { net: rest[0], init: parse_bit(rest[1])?, d: rest[2] },
                ));
            }
            "output" => {
                if rest.len() != 2 {
                    return Err(NetlistError::Parse {
                        line,
                        msg: "output takes <port> <net>".into(),
                    });
                }
                stmts.push((line, Stmt::Output { name: rest[0], net: rest[1] }));
            }
            "end" => {
                if !rest.is_empty() {
                    return Err(NetlistError::Parse {
                        line,
                        msg: "end takes no arguments".into(),
                    });
                }
                saw_end = true;
            }
            other => {
                return Err(NetlistError::Parse {
                    line,
                    msg: format!("unknown statement `{other}`"),
                });
            }
        }
    }

    lower(model_name, &stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        let a = b.input("a");
        let c = b.input("b");
        let q = b.dff(true);
        let g1 = b.and2(a, c);
        let g2 = b.xor2(g1, q);
        let m = b.mux(a, g2, q);
        b.connect_dff(q, m).unwrap();
        b.output("y", g2);
        b.output("z", q);
        b.finish().unwrap()
    }

    #[test]
    fn emit_parse_roundtrip_preserves_structure() {
        let n = sample();
        let text = emit(&n);
        let n2 = parse(&text).unwrap();
        assert_eq!(n2.name(), n.name());
        assert_eq!(n2.num_cells(), n.num_cells());
        assert_eq!(n2.num_ffs(), n.num_ffs());
        assert_eq!(n2.num_inputs(), n.num_inputs());
        assert_eq!(n2.num_outputs(), n.num_outputs());
        assert_eq!(n2.ff_init_values(), n.ff_init_values());
        // Cell-by-cell equality of kinds.
        for ((_, c1), (_, c2)) in n.iter_cells().zip(n2.iter_cells()) {
            assert_eq!(c1.kind(), c2.kind());
        }
    }

    #[test]
    fn forward_reference_dff() {
        let src = "\
model fwd
input a
dff q 1 nx
gate xor nx a q
output y q
end
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_ffs(), 1);
        assert_eq!(n.ff_init_values(), vec![true]);
    }

    #[test]
    fn out_of_order_gates() {
        let src = "\
model ooo
input a
gate not g2 g1
gate not g1 a
output y g2
end
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_gates(), 2);
    }

    #[test]
    fn unknown_net_reported() {
        let src = "\
model bad
input a
gate and g a missing
output y g
end
";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNet { name, .. } if name == "missing"));
    }

    #[test]
    fn unknown_statement_reported() {
        let err = parse("bogus x y\nend\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_net_rejected() {
        let src = "\
model dup
input a
input a2
gate not a2dup a
gate not a2dup a2
output y a2dup
end
";
        // second definition of `a2dup`
        let err = parse(src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. } | NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# a comment\nmodel c   # trailing\ninput a\noutput y a\n\nend\n";
        let n = parse(src).unwrap();
        assert_eq!(n.name(), "c");
    }

    #[test]
    fn const_nets() {
        let src = "\
model k
const one 1
const zero 0
gate or both one zero
output y both
end
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_outputs(), 1);
    }

    #[test]
    fn content_after_end_rejected() {
        let err = parse("model m\nend\ninput a\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn bad_init_bit_rejected() {
        let err = parse("model m\ninput a\ndff q 2 a\nend\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }
}
