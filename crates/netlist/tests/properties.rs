//! Property-based structural invariants of the netlist IR.

use proptest::prelude::*;
use seugrade_netlist::{CellKind, GateKind, Netlist, NetlistBuilder, SigId};

/// A recipe for a random but always-valid netlist (gates reference only
/// earlier signals; flip-flops close their loops at the end).
#[derive(Clone, Debug)]
struct Recipe {
    num_inputs: usize,
    ff_inits: Vec<bool>,
    gates: Vec<(u8, Vec<usize>)>,
    outputs: Vec<usize>,
    ff_d: Vec<usize>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (1usize..5, proptest::collection::vec(any::<bool>(), 1..6), 1usize..40).prop_flat_map(
        |(num_inputs, ff_inits, num_gates)| {
            let base = num_inputs + ff_inits.len();
            let gates = proptest::collection::vec(
                (0u8..9, proptest::collection::vec(0usize..1000, 1..4)),
                num_gates..=num_gates,
            );
            let outputs = proptest::collection::vec(0usize..1000, 1..5);
            let ff_d = proptest::collection::vec(0usize..1000, ff_inits.len()..=ff_inits.len());
            (
                Just(num_inputs),
                Just(ff_inits),
                gates,
                outputs,
                ff_d,
                Just(base),
            )
                .prop_map(|(num_inputs, ff_inits, gates, outputs, ff_d, _)| Recipe {
                    num_inputs,
                    ff_inits,
                    gates,
                    outputs,
                    ff_d,
                })
        },
    )
}

fn build(recipe: &Recipe) -> Netlist {
    let mut b = NetlistBuilder::new("prop");
    let mut sigs: Vec<SigId> = Vec::new();
    for i in 0..recipe.num_inputs {
        sigs.push(b.input(format!("i{i}")));
    }
    let mut ffs = Vec::new();
    for &init in &recipe.ff_inits {
        let q = b.dff(init);
        ffs.push(q);
        sigs.push(q);
    }
    for (kind_idx, pins) in &recipe.gates {
        use GateKind::*;
        let kind = [Buf, Not, And, Or, Nand, Nor, Xor, Xnor, Mux][*kind_idx as usize];
        let pick = |i: usize| sigs[i % sigs.len()];
        let g = match kind {
            Buf | Not => b.gate(kind, &[pick(pins[0])]),
            Mux => {
                let s = pick(pins[0]);
                let d0 = pick(*pins.get(1).unwrap_or(&0));
                let d1 = pick(*pins.get(2).unwrap_or(&1));
                b.mux(s, d0, d1)
            }
            _ => {
                let x = pick(pins[0]);
                let y = pick(*pins.get(1).unwrap_or(&0));
                b.gate(kind, &[x, y])
            }
        };
        sigs.push(g);
    }
    for (i, &o) in recipe.outputs.iter().enumerate() {
        b.output(format!("o{i}"), sigs[o % sigs.len()]);
    }
    for (q, &d) in ffs.iter().zip(&recipe.ff_d) {
        b.connect_dff(*q, sigs[d % sigs.len()]).expect("connects");
    }
    b.finish().expect("recipe builds a valid netlist")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Levelization is a valid topological order over the gates.
    #[test]
    fn levelize_is_topological(recipe in arb_recipe()) {
        let n = build(&recipe);
        let lv = n.levelize().expect("acyclic by construction");
        let mut pos = vec![usize::MAX; n.num_cells()];
        for (i, &sig) in lv.order().iter().enumerate() {
            pos[sig.index()] = i;
        }
        for &sig in lv.order() {
            for &pin in n.cell(sig).pins() {
                if matches!(n.cell(pin).kind(), CellKind::Gate(_)) {
                    prop_assert!(pos[pin.index()] < pos[sig.index()]);
                    prop_assert!(lv.level(pin) < lv.level(sig));
                }
            }
        }
        prop_assert_eq!(lv.order().len(), n.num_gates());
    }

    /// Text round-trips reach a fixpoint after one emit/parse cycle.
    #[test]
    fn emit_parse_emit_fixpoint(recipe in arb_recipe()) {
        let n = build(&recipe);
        let text1 = seugrade_netlist::text::emit(&n);
        let back = seugrade_netlist::text::parse(&text1).expect("own output parses");
        let text2 = seugrade_netlist::text::emit(&back);
        prop_assert_eq!(&text1, &text2, "emit is stable after one roundtrip");
        prop_assert_eq!(back.num_cells(), n.num_cells());
        prop_assert_eq!(back.num_ffs(), n.num_ffs());
        prop_assert_eq!(back.ff_init_values(), n.ff_init_values());
    }

    /// Pruning keeps the interface, only ever shrinks, and is idempotent.
    #[test]
    fn prune_is_sound_and_idempotent(recipe in arb_recipe()) {
        let n = build(&recipe);
        let p1 = n.pruned();
        prop_assert_eq!(p1.netlist().num_inputs(), n.num_inputs());
        prop_assert_eq!(p1.netlist().num_outputs(), n.num_outputs());
        prop_assert!(p1.netlist().num_cells() <= n.num_cells());
        prop_assert!(p1.netlist().levelize().is_ok());
        let p2 = p1.netlist().pruned();
        prop_assert_eq!(p2.removed_cells(), 0, "second prune finds nothing");
    }

    /// Stats are internally consistent.
    #[test]
    fn stats_are_consistent(recipe in arb_recipe()) {
        let n = build(&recipe);
        let s = n.stats();
        prop_assert_eq!(s.num_gates(), n.num_gates());
        prop_assert_eq!(s.num_ffs(), n.num_ffs());
        prop_assert_eq!(s.num_inputs(), n.num_inputs());
        // literals >= gates (every gate has at least one pin).
        prop_assert!(s.num_literals() >= s.num_gates());
        // depth is 0 iff there are no gates on any observable path; it
        // never exceeds the gate count.
        prop_assert!(s.comb_depth() as usize <= s.num_gates());
    }

    /// Fanout map is the exact inverse of the pin relation.
    #[test]
    fn fanout_inverts_pins(recipe in arb_recipe()) {
        let n = build(&recipe);
        let fan = n.fanout_map();
        for (sig, cell) in n.iter_cells() {
            for &pin in cell.pins() {
                prop_assert!(fan[pin.index()].contains(&sig));
            }
        }
        let total_pins: usize = (0..n.num_cells())
            .map(|i| n.cell(SigId::new(i)).pins().len())
            .sum();
        let total_fanout: usize = fan.iter().map(Vec::len).sum();
        prop_assert_eq!(total_pins, total_fanout);
    }
}
