//! Gate-level campaign execution — the ground truth for the
//! instrumentation transforms.
//!
//! These runners drive the **instrumented netlists** cycle by cycle with
//! exactly the control schedules the autonomous controller would apply
//! (the same schedules the [`controller`](crate::controller) timing
//! models count), observing only what real hardware could observe:
//! primary outputs, the `state_diff` flag and the scan chains. The test
//! suites then require the verdicts to match the software oracle
//! ([`Grader`](seugrade_faultsim::Grader)) fault for fault — detection
//! cycles included — which is the evidence that the three transforms
//! implement the paper's semantics.
//!
//! Two deliberate modelling notes:
//!
//! - circuit reset between mask-scan replays uses the FPGA's global
//!   set/reset (GSR); the runner pokes the circuit flip-flops back to
//!   their initial values, which is what GSR does without consuming
//!   emulation cycles;
//! - mask-scan injection at cycle 0 corrupts the *initial* state, which
//!   real hardware does by configuring a flipped reset value; the runner
//!   models it as a poke after reset.

use seugrade_faultsim::{FaultClass, FaultOutcome};
use seugrade_netlist::Netlist;
use seugrade_sim::{broadcast, CompiledSim, SimState, Testbench};

use crate::instrument::{mask_scan, state_scan, time_mux, InstrumentedCircuit, PortMap};

/// Shared driver state for one instrumented circuit.
struct Rig {
    sim: CompiledSim,
    st: SimState,
    ports: PortMap,
    inputs: Vec<bool>,
    num_orig_outputs: usize,
}

impl Rig {
    fn new(inst: &InstrumentedCircuit) -> Self {
        let sim = CompiledSim::new(inst.netlist());
        let st = sim.new_state();
        Rig {
            inputs: vec![false; inst.netlist().num_inputs()],
            num_orig_outputs: inst.ports().num_orig_outputs,
            ports: inst.ports().clone(),
            sim,
            st,
        }
    }

    fn clear_controls(&mut self) {
        for i in self.ports.num_orig_inputs..self.inputs.len() {
            self.inputs[i] = false;
        }
    }

    fn set(&mut self, idx: Option<usize>, v: bool) {
        self.inputs[idx.expect("port exists for this technique")] = v;
    }

    fn set_functional(&mut self, vector: &[bool]) {
        self.inputs[..vector.len()].copy_from_slice(vector);
    }

    /// eval + read outputs + step.
    fn clock(&mut self) -> Vec<bool> {
        let v = self.inputs.clone();
        self.sim.set_inputs(&mut self.st, &v);
        self.sim.eval(&mut self.st);
        let out = self.sim.outputs_lane(&self.st, 0);
        self.sim.step(&mut self.st);
        out
    }

    /// eval + read outputs, no step.
    fn peek(&mut self) -> Vec<bool> {
        let v = self.inputs.clone();
        self.sim.set_inputs(&mut self.st, &v);
        self.sim.eval(&mut self.st);
        self.sim.outputs_lane(&self.st, 0)
    }

    fn orig_outputs<'o>(&self, out: &'o [bool]) -> &'o [bool] {
        &out[..self.num_orig_outputs]
    }
}

/// Gate-level verdict of one fault, as observable in hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateVerdict {
    /// Output mismatch first seen at this cycle.
    Failure(u32),
    /// No mismatch; end state differed from the golden end state.
    Latent,
    /// No mismatch; time-mux variant records the convergence cycle,
    /// state-scan only knows convergence happened (`None`).
    Silent(Option<u32>),
}

impl GateVerdict {
    /// The corresponding grading class.
    #[must_use]
    pub fn class(self) -> FaultClass {
        match self {
            GateVerdict::Failure(_) => FaultClass::Failure,
            GateVerdict::Latent => FaultClass::Latent,
            GateVerdict::Silent(_) => FaultClass::Silent,
        }
    }

    /// Checks agreement with an oracle outcome. Mask-scan verdicts carry
    /// only failure information, so `classes` restricts the comparison.
    #[must_use]
    pub fn agrees_with(self, oracle: &FaultOutcome) -> bool {
        match self {
            GateVerdict::Failure(u) => {
                oracle.class == FaultClass::Failure && oracle.detect_cycle == Some(u)
            }
            GateVerdict::Latent => oracle.class == FaultClass::Latent,
            GateVerdict::Silent(None) => oracle.class == FaultClass::Silent,
            GateVerdict::Silent(Some(u)) => {
                oracle.class == FaultClass::Silent && oracle.converge_cycle == Some(u)
            }
        }
    }
}

fn original_ff_inits(circuit: &Netlist) -> Vec<bool> {
    circuit.ff_init_values()
}

/// Runs the **mask-scan** campaign at gate level.
///
/// Returns, per fault in cycle-major exhaustive order, `Some(u)` when an
/// output mismatch was detected at cycle `u` and `None` otherwise
/// (mask-scan natively distinguishes only failure / no-failure).
#[must_use]
pub fn run_mask_scan(circuit: &Netlist, tb: &Testbench) -> Vec<Option<u32>> {
    let inst = mask_scan::instrument(circuit);
    let golden = CompiledSim::new(circuit).run_golden(tb);
    let inits = original_ff_inits(circuit);
    let n_ff = circuit.num_ffs();
    let n_cycles = tb.num_cycles();
    let mut rig = Rig::new(&inst);
    let mut results = vec![None; n_ff * n_cycles];

    for i in 0..n_ff {
        // Position the mask: insert a 1 for ff 0, shift it along after.
        rig.clear_controls();
        rig.set(rig.ports.scan_en, true);
        rig.set(rig.ports.scan_in, i == 0);
        rig.clock();
        rig.clear_controls();

        for t in 0..n_cycles {
            // GSR: restore the functional flip-flops to reset values.
            for (k, &init) in inits.iter().enumerate() {
                let ff = rig.ports.circuit_ffs[k];
                rig.sim.set_ff_raw(&mut rig.st, ff, broadcast(init));
            }
            if t == 0 {
                // Injection into the initial state (flipped reset value).
                rig.sim.flip_ff_lane(&mut rig.st, rig.ports.circuit_ffs[i], 0);
            }
            for u in 0..n_cycles {
                rig.set_functional(tb.cycle(u));
                // inject during cycle t-1 corrupts the state at cycle t.
                rig.set(rig.ports.inject, t > 0 && u + 1 == t);
                let out = rig.clock();
                if rig.orig_outputs(&out) != golden.output_at(u) {
                    results[u_idx(t, i, n_ff)] = Some(u as u32);
                    break;
                }
            }
            rig.clear_controls();
        }
    }
    results
}

fn u_idx(t: usize, ff: usize, n_ff: usize) -> usize {
    t * n_ff + ff
}

/// Runs the **state-scan** campaign at gate level.
///
/// Returns verdicts in cycle-major exhaustive order; silent faults carry
/// no convergence cycle (the technique only compares end states).
#[must_use]
pub fn run_state_scan(circuit: &Netlist, tb: &Testbench) -> Vec<GateVerdict> {
    let inst = state_scan::instrument(circuit);
    let golden = CompiledSim::new(circuit).run_golden(tb);
    let n_ff = circuit.num_ffs();
    let n_cycles = tb.num_cycles();
    let mut rig = Rig::new(&inst);
    let mut results = vec![GateVerdict::Latent; n_ff * n_cycles];

    for t in 0..n_cycles {
        for i in 0..n_ff {
            // Faulty state to insert: golden S_t with bit i flipped.
            let mut target = golden.state_at(t).to_vec();
            target[i] = !target[i];
            // Scan in MSB-first (chain tail holds the last flip-flop).
            rig.clear_controls();
            rig.set(rig.ports.scan_en, true);
            for k in (0..n_ff).rev() {
                rig.set(rig.ports.scan_in, target[k]);
                rig.clock();
            }
            rig.clear_controls();
            // Transfer into the circuit flip-flops.
            rig.set(rig.ports.load_state, true);
            rig.clock();
            rig.clear_controls();
            // Run from the injection cycle.
            let mut verdict = None;
            for u in t..n_cycles {
                rig.set_functional(tb.cycle(u));
                let out = rig.clock();
                if rig.orig_outputs(&out) != golden.output_at(u) {
                    verdict = Some(GateVerdict::Failure(u as u32));
                    break;
                }
            }
            let verdict = verdict.unwrap_or_else(|| {
                // Capture the end state and scan it out for comparison.
                rig.set(rig.ports.capture, true);
                rig.clock();
                rig.clear_controls();
                rig.set(rig.ports.scan_en, true);
                let mut end_state = vec![false; n_ff];
                for k in (0..n_ff).rev() {
                    let out = rig.peek();
                    end_state[k] = out[rig.ports.scan_out.expect("scan_out")];
                    rig.clock();
                }
                rig.clear_controls();
                if end_state == golden.final_state() {
                    GateVerdict::Silent(None)
                } else {
                    GateVerdict::Latent
                }
            });
            results[u_idx(t, i, n_ff)] = verdict;
        }
    }
    results
}

/// Runs the **time-multiplexed** campaign at gate level.
///
/// Returns full verdicts (with detection *and* convergence cycles) in
/// cycle-major exhaustive order — the only technique that observes both
/// in hardware, which is why it can terminate every non-latent fault
/// early.
#[must_use]
pub fn run_time_mux(circuit: &Netlist, tb: &Testbench) -> Vec<GateVerdict> {
    let inst = time_mux::instrument(circuit);
    let n_ff = circuit.num_ffs();
    let n_cycles = tb.num_cycles();
    let mut rig = Rig::new(&inst);
    let mut results = vec![GateVerdict::Latent; n_ff * n_cycles];
    let state_diff_port = inst.ports().state_diff.expect("time-mux state_diff");

    for t in 0..n_cycles {
        // Invariant at this point: golden = S_t, checkpoint = S_t.
        for i in 0..n_ff {
            // Mask positioning: one shift per fault (insert a fresh 1 for
            // ff 0; the stale 1 from the previous sweep falls off the
            // chain tail).
            rig.clear_controls();
            rig.set(rig.ports.scan_en, true);
            rig.set(rig.ports.scan_in, i == 0);
            rig.clock();
            rig.clear_controls();
            // Inject: faulty := golden ^ mask (single cycle).
            rig.set(rig.ports.inject, true);
            rig.clock();
            rig.clear_controls();
            // Alternating emulation from cycle t.
            let mut verdict = None;
            for u in t..n_cycles {
                // Golden half-cycle: capture reference outputs.
                rig.set_functional(tb.cycle(u));
                rig.set(rig.ports.sel_faulty, false);
                rig.set(rig.ports.ena_golden, true);
                rig.set(rig.ports.ena_faulty, false);
                let golden_out = rig.clock();
                // Faulty half-cycle: compare.
                rig.set(rig.ports.sel_faulty, true);
                rig.set(rig.ports.ena_golden, false);
                rig.set(rig.ports.ena_faulty, true);
                let faulty_out = rig.clock();
                if rig.orig_outputs(&faulty_out) != rig.orig_outputs(&golden_out) {
                    verdict = Some(GateVerdict::Failure(u as u32));
                    break;
                }
                // Convergence check: combinational state_diff flag.
                rig.clear_controls();
                let flags = rig.peek();
                if !flags[state_diff_port] {
                    verdict = Some(GateVerdict::Silent(Some(u as u32)));
                    break;
                }
            }
            results[u_idx(t, i, n_ff)] = verdict.unwrap_or(GateVerdict::Latent);
            // Restore golden from the checkpoint.
            rig.clear_controls();
            rig.set(rig.ports.load_state, true);
            rig.clock();
            rig.clear_controls();
        }
        // Advance the golden machine to S_{t+1} and re-checkpoint.
        rig.set_functional(tb.cycle(t));
        rig.set(rig.ports.sel_faulty, false);
        rig.set(rig.ports.ena_golden, true);
        rig.clock();
        rig.clear_controls();
        rig.set(rig.ports.save_state, true);
        rig.clock();
        rig.clear_controls();
    }
    results
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::{registry, generators};
    use seugrade_faultsim::{FaultList, Grader};
    use seugrade_sim::Testbench;

    use super::*;

    fn oracle(circuit: &Netlist, tb: &Testbench) -> Vec<FaultOutcome> {
        let g = Grader::new(circuit, tb);
        let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
        g.run_parallel(faults.as_slice())
    }

    #[test]
    fn mask_scan_matches_oracle_failures() {
        for name in ["b01s", "b02s"] {
            let circuit = registry::build(name).unwrap();
            let tb = Testbench::random(circuit.num_inputs(), 16, 5);
            let oracle = oracle(&circuit, &tb);
            let hw = run_mask_scan(&circuit, &tb);
            assert_eq!(hw.len(), oracle.len());
            for (k, (h, o)) in hw.iter().zip(&oracle).enumerate() {
                assert_eq!(
                    *h,
                    o.detect_cycle,
                    "{name} fault #{k}: hw {h:?} vs oracle {o:?}"
                );
            }
        }
    }

    #[test]
    fn state_scan_matches_oracle_classes() {
        for name in ["b01s", "b02s"] {
            let circuit = registry::build(name).unwrap();
            let tb = Testbench::random(circuit.num_inputs(), 14, 7);
            let oracle = oracle(&circuit, &tb);
            let hw = run_state_scan(&circuit, &tb);
            for (k, (h, o)) in hw.iter().zip(&oracle).enumerate() {
                assert!(
                    h.agrees_with(o),
                    "{name} fault #{k}: hw {h:?} vs oracle {o:?}"
                );
            }
        }
    }

    #[test]
    fn time_mux_matches_oracle_exactly() {
        for name in ["b01s", "b02s", "b06s"] {
            let circuit = registry::build(name).unwrap();
            let tb = Testbench::random(circuit.num_inputs(), 12, 9);
            let oracle = oracle(&circuit, &tb);
            let hw = run_time_mux(&circuit, &tb);
            for (k, (h, o)) in hw.iter().zip(&oracle).enumerate() {
                assert!(
                    h.agrees_with(o),
                    "{name} fault #{k}: hw {h:?} vs oracle {o:?}"
                );
            }
        }
    }

    #[test]
    fn time_mux_on_shift_register_detection_cycles() {
        let circuit = generators::shift_register(4);
        let tb = Testbench::random(1, 10, 11);
        let oracle = oracle(&circuit, &tb);
        let hw = run_time_mux(&circuit, &tb);
        for (h, o) in hw.iter().zip(&oracle) {
            assert!(h.agrees_with(o), "hw {h:?} vs oracle {o:?}");
        }
    }

    #[test]
    fn verdict_class_mapping() {
        assert_eq!(GateVerdict::Failure(3).class(), FaultClass::Failure);
        assert_eq!(GateVerdict::Latent.class(), FaultClass::Latent);
        assert_eq!(GateVerdict::Silent(None).class(), FaultClass::Silent);
    }
}
